"""Shared driver for the Figs. 11-13 analytics benchmarks.

Protocol (paper Sec. V.B): edges are loaded in batches; after each batch
the engine runs the algorithm on the current graph.  Four configurations
per dataset: GraphTinker with the hybrid engine in FP / IP / hybrid
policies, and STINGER (FP, its natural mode).  The figure reports
processing throughput (edges processed per unit time) per dataset.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_after_each_batch, make_store
from repro.bench.reporting import Table
from repro.core.config import EngineConfig
from repro.core.stats import AccessStats
from repro.workloads.streams import highest_degree_roots, symmetrize

from _common import emit, stream_for

#: Datasets used by the analytics figures (a representative subset keeps
#: the bench under a minute; set REPRO_BENCH_EDGES higher for more).
ANALYTICS_DATASETS = ["rmat_1m_10m", "rmat_500k_8m", "hollywood_like"]

CONFIGS = [
    ("GT-hybrid", "graphtinker", "hybrid"),
    ("GT-FP", "graphtinker", "full"),
    ("GT-IP", "graphtinker", "incremental"),
    ("STINGER-FP", "stinger", "full"),
]


def run_figure(program_factory: Callable, needs_roots: bool, undirected: bool,
               weighted: bool = False):
    """Run the four configurations over the figure's datasets.

    Throughput is TEPS-style: the numerator aggregates the live graph
    size at each analytics pass (the paper's Medges/s y-axis), the
    denominator the modeled access cost — so redundant re-streaming by
    full mode shows up as cost, not as credit.

    Returns {(dataset, label): modeled_throughput}.
    """
    import numpy as np

    out = {}
    for dataset in ANALYTICS_DATASETS:
        base_stream = stream_for(dataset, n_batches=4)
        edges = base_stream.edges
        if undirected:
            edges = symmetrize(edges)
        weights = (
            np.random.default_rng(7).uniform(0.1, 2.0, edges.shape[0])
            if weighted else None
        )
        roots = (
            highest_degree_roots(edges, 1).tolist() if needs_roots else None
        )
        # Calibrate the hybrid threshold to the cost model's IP/FP
        # break-even (the paper calibrated its 0.02 with hardware
        # experiments; see CostModel.hybrid_threshold).
        engine_cfg = EngineConfig(threshold=MODEL.hybrid_threshold())
        for label, kind, policy in CONFIGS:
            from repro.workloads.streams import EdgeStream

            stream = EdgeStream(edges, max(1, edges.shape[0] // 4))
            store = make_store(kind)
            measurements = analytics_after_each_batch(
                store, stream, program_factory, policy, roots=roots,
                weights=weights, engine_kwargs={"config": engine_cfg},
            )
            merged = AccessStats()
            work = 0
            for m in measurements:
                merged.merge(m.stats_delta)
                work += m.graph_edges
            out[(dataset, label)] = MODEL.throughput(work, merged)
    return out


def report_and_check(results: dict, figure: str, algo: str) -> None:
    table = Table(
        f"{figure}: {algo} processing throughput per dataset",
        ["dataset"] + [label for label, *_ in CONFIGS] + ["GT-FP/STINGER", "hybrid/best-fixed"],
    )
    for dataset in ANALYTICS_DATASETS:
        row = [results[(dataset, label)] for label, *_ in CONFIGS]
        gt_fp = results[(dataset, "GT-FP")]
        stinger = results[(dataset, "STINGER-FP")]
        hybrid = results[(dataset, "GT-hybrid")]
        best_fixed = max(results[(dataset, "GT-FP")], results[(dataset, "GT-IP")])
        table.add_row([dataset] + row + [gt_fp / stinger, hybrid / best_fixed])
    emit(table)

    for dataset in ANALYTICS_DATASETS:
        gt_fp = results[(dataset, "GT-FP")]
        stinger = results[(dataset, "STINGER-FP")]
        hybrid = results[(dataset, "GT-hybrid")]
        gt_ip = results[(dataset, "GT-IP")]
        # Paper shape: GraphTinker's FP (CAL streaming) beats STINGER's
        # chain-sweep FP on every dataset.
        assert gt_fp > stinger, (dataset, gt_fp, stinger)
        # The hybrid engine is never (materially) worse than either fixed
        # mode; small tolerance covers its one-iteration misprediction tail.
        assert hybrid >= 0.9 * max(gt_fp, gt_ip), dataset
