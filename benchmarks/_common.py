"""Shared helpers for the per-figure benchmark files.

Every bench prints the same rows/series its paper counterpart reports.
Tables are written through :func:`emit`, which bypasses pytest's capture
so the rows appear in ``bench_output.txt`` even for passing benches.

Budgets: the paper loads full datasets (up to 182M edges) in 1M-edge
batches; pure-Python updates run at ~10^4-10^5 edges/s, so each bench
takes a *prefix* of the scaled dataset, split into the same number of
batches a figure needs to show its trend.  ``REPRO_BENCH_EDGES`` scales
all prefixes (default 48000 edges per run).
"""

from __future__ import annotations

import os
import sys

from repro.bench.reporting import Table
from repro.workloads import load_dataset
from repro.workloads.streams import EdgeStream


def edge_budget(default: int = 48_000) -> int:
    """Edges per experiment run (env ``REPRO_BENCH_EDGES``)."""
    raw = os.environ.get("REPRO_BENCH_EDGES", "")
    return int(raw) if raw else default


#: Rendered result tables, flushed to the terminal by the conftest's
#: ``pytest_terminal_summary`` hook (immune to pytest's output capture).
REPORTS: list[str] = []


def emit(table: Table) -> None:
    """Queue a result table for the end-of-run report (and echo live)."""
    text = table.render()
    REPORTS.append(text)
    print()
    print(text)
    sys.stdout.flush()


def emit_line(text: str) -> None:
    REPORTS.append(text)
    print(text)
    sys.stdout.flush()


def stream_for(dataset: str, n_edges: int | None = None, n_batches: int = 6) -> EdgeStream:
    """A batched stream over a prefix of a Table 1 dataset."""
    _, edges = load_dataset(dataset)
    budget = min(n_edges or edge_budget(), edges.shape[0])
    prefix = edges[:budget]
    batch = max(1, budget // n_batches)
    return EdgeStream(prefix, batch)


def record_bench(bench: str, *, config: dict | None = None, **measurements) -> None:
    """Emit one standardized ``BENCH_<bench>.json`` perf record.

    Thin wrapper over :func:`repro.bench.records.make_bench_record` /
    ``write_bench_record``: the record lands in ``REPRO_BENCH_RECORD_DIR``
    (default: the working directory) so CI can collect it and
    ``python -m repro report`` can diff it against a baseline.
    ``measurements`` passes through (``wall_s=``, ``latency_ms=``,
    ``metrics={...}``, ...).
    """
    from repro.bench.records import make_bench_record, write_bench_record

    path = write_bench_record(make_bench_record(bench, config=config,
                                                **measurements))
    emit_line(f"wrote bench record {path}")


