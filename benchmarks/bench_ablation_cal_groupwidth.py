"""Extension bench — CAL group-width trade-off (Sec. III.B).

The Coarse Adjacency List partitions source vertices into groups of a
configurable width ("if every group consists of 1024 vertices, then
source vertex ids from 0 to 1023 all belong to group 0").  The knob's
trade-off:

* *narrow* groups approach a per-vertex adjacency list — many tails,
  many partially-filled blocks, worse streaming density;
* *wide* groups pack many sources per block (best density), at the cost
  of coarser locality if a consumer only wants some sources' edges.

This ablation sweeps the group width and reports streaming density and
full-load analytics throughput; the paper's insight — coarse grouping
compacts the stream — shows as monotone-improving density toward wide
groups, saturating once tails amortise.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.engine.algorithms import BFS
from repro.workloads.streams import highest_degree_roots

from _common import emit, stream_for

WIDTHS = [1, 16, 256, 4096]


def run_all():
    out = {}
    stream = stream_for("rmat_1m_10m", n_batches=1)
    root = int(highest_degree_roots(stream.edges, 1)[0])
    for width in WIDTHS:
        store = make_store("graphtinker", GTConfig(cal_group_width=width))
        store.insert_batch(stream.edges)
        fill = store.cal.fill_fraction()
        blocks = store.cal.n_blocks
        store.stats.reset()
        m = analytics_once(store, BFS, "full", roots=[root])
        out[width] = (fill, blocks, m.modeled_throughput(MODEL))
    return out


@pytest.mark.benchmark(group="ablation-cal-groupwidth")
def test_ablation_cal_group_width(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "CAL group-width ablation (rmat_1m_10m, FP BFS)",
        ["group width", "fill fraction", "CAL blocks", "modeled throughput"],
    )
    for width in WIDTHS:
        fill, blocks, tp = results[width]
        table.add_row([width, fill, blocks, tp])
    emit(table)

    # Coarser grouping -> denser stream -> fewer blocks, better analytics.
    fills = [results[w][0] for w in WIDTHS]
    blocks = [results[w][1] for w in WIDTHS]
    tps = [results[w][2] for w in WIDTHS]
    assert fills[-1] > fills[0]
    assert blocks[-1] < blocks[0]
    assert tps[-1] > tps[0]
    # Width-1 groups are the degenerate per-vertex adjacency list the
    # paper improves on; the paper's default (1024-class widths) sits at
    # the saturated end.
    assert tps[-1] / tps[0] > 1.2
