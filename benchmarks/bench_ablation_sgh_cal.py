"""E14 — Sec. V.B ablation: contribution of SGH and CAL to analytics.

The paper: with CAL and SGH disabled, GraphTinker's full-processing
analytics drop to only ~1.5x STINGER; the two features together account
for >91% of GraphTinker's analytics advantage.

Protocol: load the same stream into four GraphTinker configurations
(full / no-CAL / no-SGH / neither) and STINGER; run BFS in FP mode on
each and compare modeled throughputs.  The no-SGH configurations are
meaningful because the RMAT vertex-id space is sparse: without the dense
renaming, the main region carries rows (and full-sweep costs) for every
id up to the maximum ever seen.

A cost-coefficient sensitivity row is printed as well: the conclusions
must not hinge on the default coefficients.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.workloads.streams import highest_degree_roots
from repro.engine.algorithms import BFS

from _common import emit, emit_line, stream_for

CONFIGS = ["graphtinker", "gt_nocal", "gt_nosgh", "gt_plain", "stinger"]
LABEL = {
    "graphtinker": "GT (SGH+CAL)",
    "gt_nocal": "GT no-CAL",
    "gt_nosgh": "GT no-SGH",
    "gt_plain": "GT neither",
    "stinger": "STINGER",
}


def run_all(model: CostModel = DEFAULT_COST_MODEL):
    stream = stream_for("rmat_1m_10m", n_batches=1)
    root = int(highest_degree_roots(stream.edges, 1)[0])
    out = {}
    for kind in CONFIGS:
        store = make_store(kind)
        store.insert_batch(stream.edges)
        store.stats.reset()
        m = analytics_once(store, BFS, "full", roots=[root])
        out[kind] = model.throughput(m.graph_edges, m.stats_delta)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_sgh_cal_contribution(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Ablation (Sec. V.B): SGH/CAL contribution to FP analytics",
        ["configuration", "modeled throughput", "vs STINGER"],
    )
    for kind in CONFIGS:
        table.add_row([LABEL[kind], results[kind], results[kind] / results["stinger"]])
    emit(table)

    full = results["graphtinker"]
    plain = results["gt_plain"]
    stinger = results["stinger"]
    # Paper: GT-with-neither-feature lands near STINGER (~1.5x)...
    assert plain / stinger < 3.0
    # ...while the full configuration is far ahead,
    assert full / stinger > 5.0
    # ...and SGH+CAL account for the overwhelming share (>91% in the
    # paper) of the advantage over the featureless configuration.
    contribution = (full - plain) / full
    emit_line(f"   combined SGH+CAL contribution: {contribution:.1%} (paper: >91%)")
    assert contribution > 0.5
    # Each feature alone helps.
    assert results["gt_nocal"] < full
    assert results["gt_nosgh"] < full

    # Sensitivity: the orderings survive coefficient perturbation.
    for rnd in (0.5, 2.0):
        alt = run_all(CostModel(random_block=rnd))
        assert alt["graphtinker"] > alt["gt_plain"]
        assert alt["graphtinker"] > alt["stinger"]
