"""Extension bench — Workblock-size trade-off (Sec. III.B).

The paper exposes the Workblock size as the user-tunable DRAM-retrieval
granularity: "having too large Workblock sizes would increase the
probability of a successful completion of the RHH process in that
retrieval, but at the same time would increase the number of edges
retrieved from DRAM".  This ablation sweeps the Workblock size at the
paper's PAGEWIDTH/Subblock geometry and reports both sides of the
trade-off: Workblock *fetch counts* fall as Workblocks widen, while
*cells transferred* rise.
"""

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.harness import insertion_run, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig

from _common import emit, stream_for

WORKBLOCKS = [1, 2, 4, 8]


def run_all():
    out = {}
    for wb in WORKBLOCKS:
        stream = stream_for("hollywood_like", n_batches=2)
        store = make_store("graphtinker", GTConfig(workblock=wb))
        measurements = insertion_run(store, stream)
        fetches = sum(m.stats_delta.workblock_fetches for m in measurements)
        # DRAM transfer: a Workblock fetch moves `wb` cells regardless of
        # how many the RHH process ends up inspecting.
        transferred = fetches * wb
        out[wb] = (stream.n_edges, fetches, transferred)
    return out


@pytest.mark.benchmark(group="ablation-workblock")
def test_ablation_workblock_size(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Workblock-size ablation: fetches vs data transferred (inserts)",
        ["workblock", "edges", "workblock fetches", "fetches/edge",
         "cells transferred", "cells/edge"],
    )
    for wb in WORKBLOCKS:
        n, fetches, transferred = results[wb]
        table.add_row([wb, n, fetches, fetches / n, transferred, transferred / n])
    emit(table)

    # The trade-off the paper describes: wider Workblocks need fewer
    # retrievals per update...
    f = {wb: results[wb][1] for wb in WORKBLOCKS}
    assert f[8] < f[1]
    assert all(f[b] >= f[c] for b, c in zip(WORKBLOCKS, WORKBLOCKS[1:]))
    # ...but transfer more data per update.
    t = {wb: results[wb][2] for wb in WORKBLOCKS}
    assert t[8] > t[1]
    # With per-cell transfer cost weighted up (the "more edges retrieved
    # from DRAM" side) the optimum is interior — the user-tunable
    # optimum point the paper describes.
    heavy_cells = CostModel(cell_op=0.2)
    costs = {
        wb: heavy_cells.workblock * results[wb][1]
        + heavy_cells.cell_op * results[wb][2]
        for wb in WORKBLOCKS
    }
    assert min(costs, key=costs.get) not in (WORKBLOCKS[0], WORKBLOCKS[-1])
