"""Extension bench — deletion mechanisms under steady-state churn.

The paper's deletion experiment (Fig. 14) drains a fully loaded graph;
production dynamic graphs instead *churn*: a sliding window inserts new
edges while expiring old ones, holding the live size constant.  This
bench runs both GraphTinker deletion mechanisms and STINGER through a
sustained sliding-window stream and reports equilibrium throughput and
footprint.

Expected shapes:

* delete-and-compact reaches a bounded footprint (freed blocks are
  reused), while delete-only's overflow region and CAL fragmentation
  grow monotonically with churn — tombstones never come back;
* consequently compact's *analytics* at equilibrium beat delete-only's;
* both GraphTinker variants sustain higher churn throughput than STINGER.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.core.stats import AccessStats
from repro.engine.algorithms import BFS
from repro.workloads.churn import sliding_window
from repro.workloads.streams import highest_degree_roots

from _common import emit, stream_for

MECHANISMS = [
    ("delete-only", "graphtinker", GTConfig()),
    ("delete-and-compact", "graphtinker", GTConfig(compact_on_delete=True)),
    ("STINGER", "stinger", None),
]


def run_mechanism(label, kind, cfg, edges, window, step):
    store = make_store(kind, gt_config=cfg)
    churn_stats = AccessStats()
    ops = 0
    for churn_step in sliding_window(edges, window, step):
        before = store.stats.snapshot()
        if churn_step.n_inserts:
            store.insert_batch(churn_step.inserts)
        if churn_step.n_deletes:
            store.delete_batch(churn_step.deletes)
        churn_stats.merge(store.stats.delta(before))
        ops += churn_step.n_inserts + churn_step.n_deletes
    churn_tp = MODEL.throughput(ops, churn_stats)

    root = int(highest_degree_roots(edges, 1)[0])
    m = analytics_once(store, BFS, "full", roots=[root])
    analytics_tp = m.modeled_throughput(MODEL)

    if kind == "graphtinker":
        footprint = store.eba.main.n_used + store.eba.overflow.n_used + store.cal.n_blocks
    else:
        footprint = store.pool.n_used
    return churn_tp, analytics_tp, footprint, store.n_edges


def run_all():
    stream = stream_for("rmat_1m_10m", n_batches=1)
    edges = stream.edges
    window = max(1, edges.shape[0] // 4)
    step = max(1, window // 4)
    return {
        label: run_mechanism(label, kind, cfg, edges, window, step)
        for label, kind, cfg in MECHANISMS
    }


@pytest.mark.benchmark(group="churn")
def test_steady_state_churn(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Steady-state sliding-window churn (live size held constant)",
        ["mechanism", "churn throughput", "equilibrium analytics",
         "blocks in use", "live edges"],
    )
    for label, *_ in MECHANISMS:
        churn_tp, analytics_tp, footprint, live = results[label]
        table.add_row([label, churn_tp, analytics_tp, footprint, live])
    emit(table)

    do = results["delete-only"]
    dc = results["delete-and-compact"]
    st = results["STINGER"]
    # compact bounds the footprint; delete-only's keeps the high-water mark
    assert dc[2] < do[2]
    # equilibrium analytics favour the compacting mechanism
    assert dc[1] > do[1]
    # both GraphTinker variants out-churn STINGER
    assert do[0] > st[0] and dc[0] > st[0]
    # live edge counts agree across mechanisms (same logical stream)
    assert do[3] == dc[3] == st[3]
