"""E2 + E16 — Fig. 8: insertion throughput vs input size (hollywood).

Protocol: single instance, hollywood-like dataset, batched inserts; three
systems — GraphTinker with CAL, GraphTinker without CAL, STINGER.  The
bench prints the per-batch modeled-throughput series (the figure's
curves) plus the load-stability summary the paper quotes in Sec. V.B
(GT ~34% degradation vs STINGER ~72%).

Expected shape: GT-noCAL > GT+CAL > STINGER everywhere, with the gap
widening as load grows; STINGER degrades far faster.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import insertion_run, make_store
from repro.bench.metrics import load_stability
from repro.bench.reporting import Table

from _common import emit, emit_line, stream_for

SYSTEMS = ["graphtinker", "gt_nocal", "stinger"]
LABEL = {"graphtinker": "GT+CAL", "gt_nocal": "GT-noCAL", "stinger": "STINGER"}


def run_all():
    results = {}
    for kind in SYSTEMS:
        stream = stream_for("hollywood_like", n_batches=8)
        store = make_store(kind)
        results[kind] = insertion_run(store, stream)
    return results


@pytest.mark.benchmark(group="fig08")
def test_fig08_insertion_throughput_vs_load(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n_batches = len(results["graphtinker"])
    table = Table(
        "Fig. 8: insertion throughput vs input size (hollywood_like, 1 thread)",
        ["system"] + [f"batch{i}" for i in range(n_batches)] + ["stability-degradation"],
    )
    series = {}
    for kind in SYSTEMS:
        tp = [m.modeled_throughput(MODEL) for m in results[kind]]
        series[kind] = tp
        table.add_row([LABEL[kind]] + tp + [load_stability(tp)])
    emit(table)
    emit_line(
        "   (modeled throughput = edges per access-cycle; paper reports Medges/s — "
        "ratios and shapes are the comparable quantities)"
    )

    gt, nocal, st = series["graphtinker"], series["gt_nocal"], series["stinger"]
    # Paper shapes: GT beats STINGER in every batch; no-CAL beats with-CAL
    # (CAL maintenance costs updates); gaps widen with load.
    assert all(a > b for a, b in zip(gt, st))
    assert all(a > b for a, b in zip(nocal, gt))
    assert nocal[-1] / st[-1] > nocal[0] / st[0]
    # Load stability: STINGER degrades much faster than GraphTinker.
    assert load_stability(st) > 1.5 * load_stability(gt)
