"""E3 — Fig. 9: insertion throughput across datasets.

Protocol: each Table 1 dataset is loaded in batches into GraphTinker and
STINGER; the figure reports overall insertion throughput per dataset.
Expected shape: GraphTinker wins on every dataset, and its advantage
grows with dataset size/density (STINGER's chain traversals grow with
degree; GraphTinker's descent is logarithmic).
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import insertion_run, make_store
from repro.bench.reporting import Table
from repro.core.stats import AccessStats
from repro.workloads.datasets import DATASET_ORDER

from _common import edge_budget, emit, stream_for


def run_all():
    out = {}
    for dataset in DATASET_ORDER:
        for kind in ("graphtinker", "stinger"):
            stream = stream_for(dataset, n_batches=4)
            store = make_store(kind)
            measurements = insertion_run(store, stream)
            merged = AccessStats()
            for m in measurements:
                merged.merge(m.stats_delta)
            out[(dataset, kind)] = (stream.n_edges, merged)
    return out


@pytest.mark.benchmark(group="fig09")
def test_fig09_insertion_throughput_across_datasets(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 9: insertion throughput per dataset (batched load)",
        ["dataset", "GraphTinker", "STINGER", "GT/STINGER"],
    )
    ratios = {}
    for dataset in DATASET_ORDER:
        n_gt, s_gt = results[(dataset, "graphtinker")]
        n_st, s_st = results[(dataset, "stinger")]
        tp_gt = MODEL.throughput(n_gt, s_gt)
        tp_st = MODEL.throughput(n_st, s_st)
        ratios[dataset] = tp_gt / tp_st
        table.add_row([dataset, tp_gt, tp_st, ratios[dataset]])
    emit(table)

    # Paper shape: GraphTinker wins on all datasets...
    assert all(r > 1.0 for r in ratios.values())
    # ...and the advantage is largest on the big dense (real-world-like)
    # graphs, exceeding the advantage on the smallest RMAT.
    dense_best = max(ratios["hollywood_like"], ratios["kron_like"])
    assert dense_best > ratios["rmat_500k_8m"]
