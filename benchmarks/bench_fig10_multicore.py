"""E4 — Fig. 10: multicore insertion throughput (1-8 cores).

Protocol: hollywood-like stream, interval-partitioned GraphTinker and
STINGER instances (Sec. III.D); per-batch parallel time is the makespan
(max over partitions) of the modeled per-partition cost — the critical
path of the paper's shared-nothing parallelisation.

Modeled vs. measured
--------------------
The table reports the two families of numbers in separate columns and
never mixes them:

* ``modeled-*`` — throughput under the memory-access cost model with the
  max-over-partitions makespan.  This is the paper's multicore claim and
  every assertion below is on these numbers only.
* ``wall-Medges/s`` — measured wall-clock throughput of the run that
  produced the deltas.  ``PartitionedStore`` applies partitions
  *serially* (its thread path is deprecated — GIL-serialized, no
  speedup), so this column does **not** grow with the core count; it is
  printed to keep the distinction honest, not to support a claim.  For
  measured process-parallel ingest speedup see
  ``benchmarks/bench_sharded_ingest.py`` (``ShardedStore``, which
  reproduces these same per-partition deltas bit-for-bit).

Expected shapes: modeled throughput rises with core count for both
systems; GraphTinker beats STINGER at every core count; STINGER's
per-run degradation (first batch -> last batch) stays far worse than
GraphTinker's at every core count (the paper's 3.4 -> 1 Medges/s
example at 8 cores).
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import parallel_insertion_run
from repro.bench.reporting import Table
from repro.core.parallel import PartitionedGraphTinker, PartitionedStinger

from _common import emit, stream_for

CORES = [1, 2, 4, 8]


def run_all():
    out = {}
    for cores in CORES:
        for kind, cls in (("graphtinker", PartitionedGraphTinker),
                          ("stinger", PartitionedStinger)):
            stream = stream_for("hollywood_like", n_batches=6)
            store = cls(cores)
            ms = parallel_insertion_run(store, stream)
            out[(kind, cores)] = {
                "modeled": [m.modeled_throughput(MODEL) for m in ms],
                "wall": [m.wall_throughput for m in ms],
            }
    return out


@pytest.mark.benchmark(group="fig10")
def test_fig10_multicore_update_throughput(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 10: update throughput vs core count (hollywood_like) — "
        "modeled makespan vs measured (serial) wall-clock",
        ["system", "cores", "modeled-first", "modeled-last", "modeled-mean",
         "modeled-degradation", "wall-Medges/s"],
    )
    means = {}
    for kind in ("graphtinker", "stinger"):
        for cores in CORES:
            series = results[(kind, cores)]["modeled"]
            wall = results[(kind, cores)]["wall"]
            mean = sum(series) / len(series)
            means[(kind, cores)] = mean
            degradation = (series[0] - series[-1]) / series[0]
            wall_mean = sum(wall) / len(wall) / 1e6
            table.add_row([kind, cores, series[0], series[-1], mean,
                           degradation, wall_mean])
    emit(table)

    for cores in CORES:
        # GraphTinker wins at every core count (modeled).
        assert means[("graphtinker", cores)] > means[("stinger", cores)]
    for kind in ("graphtinker", "stinger"):
        # More cores -> more modeled throughput (monotone in this
        # shared-nothing model).  Wall-clock is deliberately NOT asserted
        # on: PartitionedStore executes partitions serially.
        assert means[(kind, 8)] > means[(kind, 1)]
    # STINGER deteriorates across batches much faster than GraphTinker at 8 cores.
    st8 = results[("stinger", 8)]["modeled"]
    gt8 = results[("graphtinker", 8)]["modeled"]
    st_deg = (st8[0] - st8[-1]) / st8[0]
    gt_deg = (gt8[0] - gt8[-1]) / gt8[0]
    assert st_deg > gt_deg
