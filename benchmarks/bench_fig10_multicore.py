"""E4 — Fig. 10: multicore insertion throughput (1-8 cores).

Protocol: hollywood-like stream, interval-partitioned GraphTinker and
STINGER instances (Sec. III.D); per-batch parallel time is the makespan
(max over partitions) of the modeled per-partition cost — the critical
path of the paper's shared-nothing parallelisation.

Expected shapes: throughput rises with core count for both systems;
GraphTinker beats STINGER at every core count; STINGER's per-run
degradation (first batch -> last batch) stays far worse than
GraphTinker's at every core count (the paper's 3.4 -> 1 Medges/s
example at 8 cores).
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import parallel_insertion_run
from repro.bench.reporting import Table
from repro.core.parallel import PartitionedGraphTinker, PartitionedStinger

from _common import emit, stream_for

CORES = [1, 2, 4, 8]


def run_all():
    out = {}
    for cores in CORES:
        for kind, cls in (("graphtinker", PartitionedGraphTinker),
                          ("stinger", PartitionedStinger)):
            stream = stream_for("hollywood_like", n_batches=6)
            store = cls(cores)
            ms = parallel_insertion_run(store, stream)
            series = [m.modeled_throughput(MODEL) for m in ms]
            out[(kind, cores)] = series
    return out


@pytest.mark.benchmark(group="fig10")
def test_fig10_multicore_update_throughput(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 10: update throughput vs core count (hollywood_like)",
        ["system", "cores", "first-batch", "last-batch", "mean", "degradation"],
    )
    means = {}
    for kind in ("graphtinker", "stinger"):
        for cores in CORES:
            series = results[(kind, cores)]
            mean = sum(series) / len(series)
            means[(kind, cores)] = mean
            degradation = (series[0] - series[-1]) / series[0]
            table.add_row([kind, cores, series[0], series[-1], mean, degradation])
    emit(table)

    for cores in CORES:
        # GraphTinker wins at every core count.
        assert means[("graphtinker", cores)] > means[("stinger", cores)]
    for kind in ("graphtinker", "stinger"):
        # More cores -> more throughput (monotone in this shared-nothing model).
        assert means[(kind, 8)] > means[(kind, 1)]
    # STINGER deteriorates across batches much faster than GraphTinker at 8 cores.
    st8 = results[("stinger", 8)]
    gt8 = results[("graphtinker", 8)]
    st_deg = (st8[0] - st8[-1]) / st8[0]
    gt_deg = (gt8[0] - gt8[-1]) / gt8[0]
    assert st_deg > gt_deg
