"""E5 — Fig. 11: BFS throughput, GraphTinker vs STINGER vs engine modes."""

import pytest

from repro.engine.algorithms import BFS

from _analytics import report_and_check, run_figure


@pytest.mark.benchmark(group="fig11")
def test_fig11_bfs_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: run_figure(BFS, needs_roots=True, undirected=False),
        rounds=1, iterations=1,
    )
    report_and_check(results, "Fig. 11", "BFS")
