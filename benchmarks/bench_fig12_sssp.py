"""E6 — Fig. 12: SSSP throughput, GraphTinker vs STINGER vs engine modes."""

import pytest

from repro.engine.algorithms import SSSP

from _analytics import report_and_check, run_figure


@pytest.mark.benchmark(group="fig12")
def test_fig12_sssp_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: run_figure(SSSP, needs_roots=True, undirected=False, weighted=True),
        rounds=1, iterations=1,
    )
    report_and_check(results, "Fig. 12", "SSSP")
