"""E7 — Fig. 13: CC throughput, GraphTinker vs STINGER vs engine modes.

Connected components runs on the symmetrised stream (weak-connectivity
ingestion convention; see repro.engine.algorithms.cc).
"""

import pytest

from repro.engine.algorithms import ConnectedComponents

from _analytics import report_and_check, run_figure


@pytest.mark.benchmark(group="fig13")
def test_fig13_cc_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: run_figure(ConnectedComponents, needs_roots=False, undirected=True),
        rounds=1, iterations=1,
    )
    report_and_check(results, "Fig. 13", "CC")
