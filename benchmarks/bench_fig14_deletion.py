"""E8 — Fig. 14: edge-deletion throughput (rmat_2m_32m).

Protocol: load the graph fully, then delete in batches until empty.
Three mechanisms: GraphTinker delete-only (tombstones, RHH on),
GraphTinker delete-and-compact (tree shrinks, RHH off), STINGER.

Expected shapes (paper Sec. V.B): delete-only starts ~2x faster than
delete-and-compact and the gap narrows to ~1.2x by the last batch;
delete-only's throughput degrades across batches while
delete-and-compact stays stable (the structure shrinks under it); both
beat STINGER.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import deletion_run, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig

from _common import emit, stream_for

SYSTEMS = [
    ("delete-only", "graphtinker", GTConfig()),
    ("delete-and-compact", "graphtinker", GTConfig(compact_on_delete=True)),
    ("STINGER", "stinger", None),
]


def run_all():
    out = {}
    for label, kind, cfg in SYSTEMS:
        stream = stream_for("rmat_2m_32m", n_batches=8)
        store = make_store(kind, gt_config=cfg)
        store.insert_batch(stream.edges)
        store.stats.reset()
        measurements = deletion_run(store, stream, seed=3)
        assert store.n_edges == 0
        out[label] = [m.modeled_throughput(MODEL) for m in measurements]
    return out


@pytest.mark.benchmark(group="fig14")
def test_fig14_deletion_throughput(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n = len(results["STINGER"])
    table = Table(
        "Fig. 14: deletion throughput vs edges deleted (rmat_2m_32m)",
        ["mechanism"] + [f"batch{i}" for i in range(n)] + ["first/last"],
    )
    for label, *_ in SYSTEMS:
        series = results[label]
        table.add_row([label] + series + [series[0] / series[-1]])
    emit(table)

    do = results["delete-only"]
    dc = results["delete-and-compact"]
    st = results["STINGER"]
    # delete-only is faster early; the advantage shrinks as the database
    # empties (the paper: ~2x on the first batch, ~1.2x on the last).
    assert do[0] > dc[0]
    assert do[0] / dc[0] > do[-1] / dc[-1]
    # delete-and-compact's throughput trends *up* as the structure
    # shrinks while delete-only's does not (the structure it probes never
    # shrinks).  NB: the paper additionally sees delete-only *degrade* in
    # absolute terms — a cache-pollution effect of accumulated tombstones
    # that block-granularity access counting cannot express; the relative
    # trend (compact gains on delete-only) is the reproducible shape.
    assert dc[-1] / dc[0] > 1.2
    assert do[-1] / do[0] < dc[-1] / dc[0]
    # Both GraphTinker mechanisms beat STINGER throughout.
    assert all(a > c for a, c in zip(do, st))
    assert all(b > c for b, c in zip(dc, st))
