"""E9 — Fig. 15: BFS throughput as edges are deleted (rmat_2m_32m).

Protocol: load fully; delete in batches; after every deletion batch run
BFS (full-processing mode) on the surviving graph.  Compares the effect
of the two GraphTinker deletion mechanisms — and STINGER — on the
*analytics* side.

Expected shapes: delete-and-compact yields better analytics throughput
than delete-only, with the gap growing as more edges are deleted
(the paper: ~1.2x at half deleted, up to ~4x near empty); delete-only's
analytics throughput degrades because tombstoned cells still occupy the
retrieval path while the live edge count shrinks; both beat STINGER.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.engine.algorithms import BFS
from repro.workloads.streams import highest_degree_roots

from _common import emit, stream_for

SYSTEMS = [
    ("delete-only", "graphtinker", GTConfig()),
    ("delete-and-compact", "graphtinker", GTConfig(compact_on_delete=True)),
    ("STINGER", "stinger", None),
]
N_BATCHES = 6


def run_all():
    out = {}
    for label, kind, cfg in SYSTEMS:
        stream = stream_for("rmat_2m_32m", n_batches=N_BATCHES)
        root = int(highest_degree_roots(stream.edges, 1)[0])
        store = make_store(kind, gt_config=cfg)
        store.insert_batch(stream.edges)
        series = []
        for batch in stream.delete_batches(seed=3):
            store.delete_batch(batch)
            if store.n_edges == 0:
                break
            m = analytics_once(store, BFS, "full", roots=[root])
            series.append(m.modeled_throughput(MODEL))
        out[label] = series
    return out


@pytest.mark.benchmark(group="fig15")
def test_fig15_bfs_throughput_after_deletions(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n = min(len(s) for s in results.values())
    table = Table(
        "Fig. 15: BFS (FP) throughput vs edges deleted (rmat_2m_32m)",
        ["mechanism"] + [f"after-del{i}" for i in range(n)],
    )
    for label, *_ in SYSTEMS:
        table.add_row([label] + results[label][:n])
    emit(table)

    do = results["delete-only"][:n]
    dc = results["delete-and-compact"][:n]
    st = results["STINGER"][:n]
    # compact beats delete-only for analytics, increasingly so.
    assert dc[-1] > do[-1]
    assert dc[-1] / do[-1] > dc[0] / do[0]
    # delete-only analytics degrade as deletions accumulate.
    assert do[-1] < do[0]
    # both GraphTinker mechanisms beat STINGER.
    assert all(a > c for a, c in zip(dc, st))
