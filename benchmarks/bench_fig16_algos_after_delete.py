"""E10 — Fig. 16: average BFS/SSSP/CC throughput under deletions.

Protocol: as Fig. 15 but for all three algorithms, reporting the
*average* analytics throughput across the deletion sequence for each
deletion mechanism.  Expected shape: delete-and-compact's average beats
delete-only's for every algorithm; both beat STINGER.
"""

import numpy as np
import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.engine.algorithms import BFS, SSSP, ConnectedComponents
from repro.workloads.streams import EdgeStream, highest_degree_roots, symmetrize

from _common import emit, stream_for

MECHANISMS = [
    ("delete-only", "graphtinker", GTConfig()),
    ("delete-and-compact", "graphtinker", GTConfig(compact_on_delete=True)),
    ("STINGER", "stinger", None),
]
ALGOS = [("BFS", BFS, False), ("SSSP", SSSP, False), ("CC", ConnectedComponents, True)]


def run_all():
    base = stream_for("rmat_2m_32m", n_batches=4)
    out = {}
    for algo_name, program, undirected in ALGOS:
        edges = symmetrize(base.edges) if undirected else base.edges
        stream = EdgeStream(edges, max(1, edges.shape[0] // 4))
        roots = None if undirected else [int(highest_degree_roots(edges, 1)[0])]
        weights = (
            np.random.default_rng(5).uniform(0.1, 2.0, edges.shape[0])
            if algo_name == "SSSP" else None
        )
        for label, kind, cfg in MECHANISMS:
            store = make_store(kind, gt_config=cfg)
            store.insert_batch(stream.edges, weights)
            series = []
            for batch in stream.delete_batches(seed=3):
                store.delete_batch(batch)
                if store.n_edges == 0:
                    break
                m = analytics_once(store, program, "full", roots=roots)
                series.append(m.modeled_throughput(MODEL))
            out[(algo_name, label)] = float(np.mean(series))
    return out


@pytest.mark.benchmark(group="fig16")
def test_fig16_average_analytics_under_deletions(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 16: average analytics throughput under deletions (rmat_2m_32m)",
        ["algorithm"] + [label for label, *_ in MECHANISMS] + ["compact/delete-only"],
    )
    for algo_name, *_ in ALGOS:
        row = [results[(algo_name, label)] for label, *_ in MECHANISMS]
        table.add_row([algo_name] + row + [row[1] / row[0]])
    emit(table)

    for algo_name, *_ in ALGOS:
        do = results[(algo_name, "delete-only")]
        dc = results[(algo_name, "delete-and-compact")]
        st = results[(algo_name, "STINGER")]
        assert dc > do, algo_name     # compact wins on average
        assert do > st or dc > st, algo_name
