"""E11 — Fig. 17: effect of PAGEWIDTH on insertion throughput.

Protocol: load the hollywood-like stream into GraphTinker configured
with PAGEWIDTH in {16, 32, 64, 128, 256} (Subblock/Workblock at the
paper's 8/4) and report the per-batch insertion throughput series.

Expected shapes: larger PAGEWIDTH -> higher insertion throughput (a
wider hash range reduces Robin-Hood collisions and branch-outs), and
larger PAGEWIDTH -> better throughput stability across batches, with
PW=256 the most stable.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import insertion_run, make_store
from repro.bench.metrics import load_stability
from repro.bench.reporting import Table
from repro.core.config import GTConfig

from _common import emit, stream_for

PAGEWIDTHS = [16, 32, 64, 128, 256]


def run_all():
    out = {}
    for pw in PAGEWIDTHS:
        stream = stream_for("hollywood_like", n_batches=6)
        store = make_store("graphtinker", GTConfig(pagewidth=pw))
        ms = insertion_run(store, stream)
        out[pw] = [m.modeled_throughput(MODEL) for m in ms]
    return out


@pytest.mark.benchmark(group="fig17")
def test_fig17_pagewidth_insertion_throughput(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n = len(results[PAGEWIDTHS[0]])
    table = Table(
        "Fig. 17: insertion throughput vs PAGEWIDTH (hollywood_like)",
        ["PAGEWIDTH"] + [f"batch{i}" for i in range(n)] + ["mean", "degradation"],
    )
    means = {}
    for pw in PAGEWIDTHS:
        series = results[pw]
        means[pw] = sum(series) / len(series)
        table.add_row([pw] + series + [means[pw], load_stability(series)])
    emit(table)

    # Larger PAGEWIDTH -> higher mean insertion throughput (monotone).
    ordered = [means[pw] for pw in PAGEWIDTHS]
    assert all(a < b for a, b in zip(ordered, ordered[1:])), ordered
    # PW=256 is the most load-stable; PW=16 the least.
    assert load_stability(results[256]) < load_stability(results[16])
