"""E12 — Fig. 18: effect of PAGEWIDTH on analytics (BFS, IP mode).

Protocol: for each PAGEWIDTH, load the hollywood-like graph and run BFS
with the engine pinned to incremental processing — the mode that reads
the EdgeblockArray itself, whose layout PAGEWIDTH controls (full mode
reads the CAL and would mask the effect; the paper selects IP for the
same reason).

Expected shape: the ordering reverses relative to Fig. 17 — smaller
PAGEWIDTH gives a more compact EdgeblockArray and therefore *better*
analytics throughput.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.engine.algorithms import BFS
from repro.workloads.streams import highest_degree_roots

from _common import emit, stream_for

PAGEWIDTHS = [16, 32, 64, 128, 256]


def run_all():
    out = {}
    stream = stream_for("hollywood_like", n_batches=1)
    root = int(highest_degree_roots(stream.edges, 1)[0])
    for pw in PAGEWIDTHS:
        store = make_store("graphtinker", GTConfig(pagewidth=pw))
        store.insert_batch(stream.edges)
        store.stats.reset()
        m = analytics_once(store, BFS, "incremental", roots=[root])
        out[pw] = m.modeled_throughput(MODEL)
    return out


@pytest.mark.benchmark(group="fig18")
def test_fig18_pagewidth_bfs_ip_throughput(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 18: BFS (IP mode) throughput vs PAGEWIDTH (hollywood_like)",
        ["PAGEWIDTH", "modeled throughput"],
    )
    for pw in PAGEWIDTHS:
        table.add_row([pw, results[pw]])
    emit(table)

    # Smaller PAGEWIDTH -> better IP analytics (denser EdgeblockArray).
    assert results[16] > results[256]
    assert results[32] > results[128]
