"""E13 — Fig. 19: choice of optimal PAGEWIDTH (update/analytics mix).

Protocol (paper Sec. V.B): for each dataset x PAGEWIDTH x
updates:analytics ratio, edges are inserted in batches; the insertion
process is intercepted `updates` times, each interception running
`analytics` BFS passes, each from a different one of the 20 pre-collected
highest-degree roots.  The figure reports total elapsed time averaged
across the ratios, per dataset and PAGEWIDTH.

The paper runs 360 experiments (6 datasets x 6 PAGEWIDTHs x 10 ratios);
this bench runs a reduced but structurally identical grid by default
(3 datasets x 4 PAGEWIDTHs x 3 ratios = 36 runs) — set
``REPRO_FIG19_FULL=1`` for the paper's full ratio spread.

Expected shape: mid PAGEWIDTH (64) has the lowest (best) average
combined time; the extremes lose — small PAGEWIDTH on update cost,
large PAGEWIDTH on analytics cost — most visibly on larger datasets.
"""

import os

import numpy as np
import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.workloads.streams import highest_degree_roots, interleaved_schedule
from repro.engine.algorithms import BFS

from _common import emit, stream_for

DATASETS = ["rmat_1m_10m", "rmat_2m_32m", "hollywood_like"]
PAGEWIDTHS = [8, 32, 64, 256]


def ratios():
    if os.environ.get("REPRO_FIG19_FULL"):
        return [(1, 10), (1, 7), (1, 4), (1, 1), (2, 2), (4, 7),
                (4, 1), (7, 1), (10, 1), (10, 10)]
    return [(1, 4), (2, 2), (4, 1)]


def run_experiment(dataset: str, pagewidth: int, updates: int, analytics: int) -> float:
    """Total modeled time of one update/analytics-mix experiment."""
    stream = stream_for(dataset, n_batches=6)
    roots = highest_degree_roots(stream.edges, 20)
    store = make_store("graphtinker", GTConfig(pagewidth=pagewidth))
    schedule = dict(interleaved_schedule(stream.n_batches, updates, analytics))
    total_cost = 0.0
    root_cycle = 0
    before = store.stats.snapshot()
    for i, batch in enumerate(stream.insert_batches()):
        store.insert_batch(batch)
        for _ in range(schedule.get(i, 0)):
            root = int(roots[root_cycle % len(roots)])
            root_cycle += 1
            analytics_once(store, BFS, "incremental", roots=[root])
    total_cost = MODEL.cost(store.stats.delta(before))
    return total_cost


def run_all():
    out = {}
    for dataset in DATASETS:
        for pw in PAGEWIDTHS:
            costs = [run_experiment(dataset, pw, u, a) for u, a in ratios()]
            out[(dataset, pw)] = float(np.mean(costs))
    return out


@pytest.mark.benchmark(group="fig19")
def test_fig19_optimal_pagewidth(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Fig. 19: avg combined update+analytics time vs PAGEWIDTH "
        "(lower is better; averaged over update:analytics ratios)",
        ["dataset"] + [f"PW={pw}" for pw in PAGEWIDTHS] + ["best PW"],
    )
    best = {}
    for dataset in DATASETS:
        row = [results[(dataset, pw)] for pw in PAGEWIDTHS]
        best[dataset] = PAGEWIDTHS[int(np.argmin(row))]
        table.add_row([dataset] + row + [best[dataset]])
    emit(table)

    # The paper's conclusion: PAGEWIDTH 64 is the best overall balance.
    # Per dataset, 64 must be within 15% of that dataset's optimum, and
    # the narrow extreme (8) must lose badly everywhere (its update cost
    # explodes — the paper: "very low edge-update performance").
    for dataset in DATASETS:
        row = {pw: results[(dataset, pw)] for pw in PAGEWIDTHS}
        optimum = min(row.values())
        assert row[64] <= 1.15 * optimum, (dataset, row)
        assert row[8] > 2 * row[64], (dataset, row)
    # Averaged across datasets, 64 is the single best choice.
    avg = {pw: np.mean([results[(d, pw)] for d in DATASETS]) for pw in PAGEWIDTHS}
    assert min(avg, key=avg.get) == 64, avg
