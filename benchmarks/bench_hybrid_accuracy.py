"""E15 — Sec. V.B hybrid-engine claims: speedups and prediction accuracy.

Three claims from the paper:
  (1) hybrid improves up to ~2x over incremental processing,
  (2) hybrid improves up to ~3x over full processing,
  (3) the inference box's per-iteration predictions are ~97% correct.

Protocol: the Figs. 11-13 loop (batched load, analytics after every
batch) in all three policies; prediction correctness is judged against
a cost-model oracle — for every hybrid iteration, both modes' costs on
that iteration's frontier are estimated and the chosen mode is correct
iff it matches the cheaper one.
"""

import numpy as np
import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.core.config import EngineConfig
from repro.core.stats import AccessStats
from repro.engine import HybridEngine
from repro.engine.algorithms import BFS, ConnectedComponents
from repro.engine.modes import FULL, INCREMENTAL
from repro.workloads.streams import highest_degree_roots, symmetrize

from _common import emit, emit_line, stream_for


def estimate_costs(store, n_active: int, frontier_degree_sum: int,
                   n_edges: int) -> tuple[float, float]:
    """Cost-model estimates of one FP vs one IP iteration."""
    cfg = store.config
    cal_blocks = max(1, n_edges // cfg.cal_block_size)
    fp = MODEL.seq_block * cal_blocks + MODEL.cell_op * cal_blocks * cfg.cal_block_size
    blocks_per_vertex = 1.2
    ip = n_active * blocks_per_vertex * (
        MODEL.random_block + MODEL.cell_op * cfg.pagewidth
    )
    return fp, ip


def run_policy(policy: str, program_cls, undirected: bool):
    stream = stream_for("rmat_1m_10m", n_batches=4)
    edges = symmetrize(stream.edges) if undirected else stream.edges
    from repro.workloads.streams import EdgeStream

    stream = EdgeStream(edges, max(1, edges.shape[0] // 4))
    roots = None if undirected else [int(highest_degree_roots(edges, 1)[0])]
    store = make_store("graphtinker")
    cfg = EngineConfig(threshold=MODEL.hybrid_threshold())
    merged = AccessStats()
    work = 0
    correct = total = 0
    for batch in stream.insert_batches():
        store.insert_batch(batch)
        engine = HybridEngine(store, program_cls(), config=cfg, policy=policy)
        engine.reset(roots=np.asarray(roots or [], dtype=np.int64))
        engine.mark_inconsistent(batch)
        before = store.stats.snapshot()
        result = engine.compute()
        merged.merge(store.stats.delta(before))
        work += store.n_edges
        if policy == "hybrid":
            for rec in result.iterations:
                fp, ip = estimate_costs(store, rec.n_active, 0, store.n_edges)
                oracle = FULL if fp < ip else INCREMENTAL
                total += 1
                correct += rec.mode == oracle
    throughput = MODEL.throughput(work, merged)
    accuracy = correct / total if total else float("nan")
    return throughput, accuracy


@pytest.mark.benchmark(group="hybrid-accuracy")
def test_hybrid_speedups_and_prediction_accuracy(benchmark):
    def run_all():
        out = {}
        for algo_name, cls, undirected in (
            ("BFS", BFS, False), ("CC", ConnectedComponents, True)
        ):
            for policy in ("hybrid", "full", "incremental"):
                out[(algo_name, policy)] = run_policy(policy, cls, undirected)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Hybrid engine: speedups over fixed modes + prediction accuracy",
        ["algorithm", "hybrid", "FP", "IP", "hybrid/FP", "hybrid/IP", "pred-accuracy"],
    )
    for algo_name in ("BFS", "CC"):
        hy, acc = results[(algo_name, "hybrid")]
        fp, _ = results[(algo_name, "full")]
        ip, _ = results[(algo_name, "incremental")]
        table.add_row([algo_name, hy, fp, ip, hy / fp, hy / ip, acc])
    emit(table)
    emit_line("   (paper: up to 2x over IP, up to 3x over FP, ~97% correct predictions)")

    for algo_name in ("BFS", "CC"):
        hy, acc = results[(algo_name, "hybrid")]
        fp, _ = results[(algo_name, "full")]
        ip, _ = results[(algo_name, "incremental")]
        # hybrid is never materially worse than either fixed mode,
        assert hy >= 0.95 * fp, algo_name
        assert hy >= 0.95 * ip, algo_name
        # and beats at least one of them clearly.
        assert hy > 1.2 * min(fp, ip), algo_name
        # predictions track the cost-model oracle (paper: ~97%).
        assert acc > 0.85, (algo_name, acc)
