"""Kernel bench — vectorized vs scalar batch-ingest wall-clock.

The vector kernel (``repro.core.kernels``) must be *behaviourally
invisible*: bit-identical store state and bit-identical ``AccessStats``
versus the scalar reference for any input stream.  Its only licensed
effect is wall-clock speed.  This bench pins both halves of that
contract on the acceptance workload — a 100k-edge RMAT stream inserted
batch-by-batch:

* **speed**: the vector kernel must beat the scalar kernel by at least
  ``SPEEDUP_FLOOR`` (3x by default; override with
  ``REPRO_KERNEL_SPEEDUP_FLOOR`` for noisy shared runners);
* **equivalence**: final edge sets and the full stats dict must be
  equal — a slow correct kernel fails the first assert, a fast wrong
  one fails the second.
"""

import gc
import os
import time

import pytest

from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.workloads import rmat_edges
from repro.workloads.streams import EdgeStream

from _common import emit, record_bench

N_EDGES = 100_000
SCALE = 16
N_BATCHES = 4
SPEEDUP_FLOOR = float(os.environ.get("REPRO_KERNEL_SPEEDUP_FLOOR", "3.0"))


def _ingest(kernel: str):
    edges = rmat_edges(SCALE, N_EDGES, seed=7)
    stream = EdgeStream(edges, max(1, N_EDGES // N_BATCHES))
    store = make_store("graphtinker", kernel=kernel)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for batch in stream.insert_batches():
            store.insert_batch(batch)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return store, elapsed


def run_all():
    # Warm both code paths (allocator pools, lazy imports, branch caches)
    # on a small prefix so the timed runs compare kernels, not cold starts.
    for kernel in ("scalar", "vector"):
        warm = make_store("graphtinker", kernel=kernel)
        warm.insert_batch(rmat_edges(SCALE, 5_000, seed=3))
    scalar, t_scalar = _ingest("scalar")
    vector, t_vector = _ingest("vector")
    return {
        "t_scalar": t_scalar,
        "t_vector": t_vector,
        "scalar_stats": scalar.stats.as_dict(),
        "vector_stats": vector.stats.as_dict(),
        "scalar_edges": sorted(zip(*(a.tolist() for a in scalar.edge_arrays()))),
        "vector_edges": sorted(zip(*(a.tolist() for a in vector.edge_arrays()))),
    }


@pytest.mark.benchmark(group="kernels")
def test_vector_kernel_speedup_and_equivalence(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = results["t_scalar"] / results["t_vector"]

    table = Table(
        f"batch-ingest kernels ({N_EDGES} RMAT edges, {N_BATCHES} batches)",
        ["kernel", "wall seconds", "edges/s", "speedup"],
    )
    table.add_row(["scalar", results["t_scalar"],
                   N_EDGES / results["t_scalar"], 1.0])
    table.add_row(["vector", results["t_vector"],
                   N_EDGES / results["t_vector"], speedup])
    emit(table)
    record_bench(
        "kernels",
        config={"n_edges": N_EDGES, "scale": SCALE, "n_batches": N_BATCHES},
        wall_s=results["t_vector"],
        throughput_edges_per_s=N_EDGES / results["t_vector"],
        metrics={"scalar_wall_s": results["t_scalar"], "speedup": speedup},
    )

    # Equivalence first: a fast-but-wrong kernel must not pass.
    assert results["vector_stats"] == results["scalar_stats"]
    assert results["vector_edges"] == results["scalar_edges"]
    # Then the acceptance speedup on the interpreter clock.
    assert speedup >= SPEEDUP_FLOOR, (
        f"vector kernel speedup {speedup:.2f}x below floor {SPEEDUP_FLOOR}x"
    )
