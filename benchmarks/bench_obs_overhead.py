"""Observability overhead bench — enabled vs disabled ingest wall-clock.

The telemetry layer's contract (docs/observability.md) has two halves:

* **disabled**: bit-identical behaviour — one flag check per batch, so
  the cost-model numbers cannot move.  (The differential tests pin
  that.)
* **enabled at default sampling**: close enough to free that leaving it
  on in a soak run is reasonable.  This bench pins that half: ingesting
  a 100k-edge RMAT stream with the full metric/sketch/recorder pipeline
  enabled must stay within ``OVERHEAD_MAX`` (10% by default; override
  with ``REPRO_OBS_OVERHEAD_MAX`` for noisy shared runners) of the
  disabled run.

Each mode is timed best-of-``N_ROUNDS`` to damp scheduler noise; both
modes ingest identical streams through identical fresh stores.
"""

import gc
import os
import time

import pytest

import repro.obs as obs
from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.workloads import rmat_edges
from repro.workloads.streams import EdgeStream

from _common import emit, record_bench

N_EDGES = int(os.environ.get("REPRO_OBS_BENCH_EDGES", "100000"))
SCALE = 16
N_BATCHES = 32
N_ROUNDS = 3
OVERHEAD_MAX = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "0.10"))


def _ingest_once(enabled: bool) -> float:
    edges = rmat_edges(SCALE, N_EDGES, seed=7)
    stream = EdgeStream(edges, max(1, N_EDGES // N_BATCHES))
    store = make_store("graphtinker")
    gc.collect()
    gc.disable()
    try:
        with obs.enabled_scope(enabled):
            t0 = time.perf_counter()
            for batch in stream.insert_batches():
                store.insert_batch(batch)
            return time.perf_counter() - t0
    finally:
        gc.enable()


def run_all():
    # Warm the path (allocator pools, lazy obs imports) before timing.
    warm = make_store("graphtinker")
    with obs.enabled_scope(True):
        warm.insert_batch(rmat_edges(SCALE, 5_000, seed=3))
    obs.get_registry().reset()
    # Interleave the modes so drift (thermal, page cache) hits both.
    t_off = min(_ingest_once(False) for _ in range(N_ROUNDS))
    t_on = min(_ingest_once(True) for _ in range(N_ROUNDS))
    return {"t_off": t_off, "t_on": t_on}


@pytest.mark.benchmark(group="obs")
def test_obs_overhead_within_budget(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    overhead = results["t_on"] / results["t_off"] - 1.0

    table = Table(
        f"observability overhead ({N_EDGES} RMAT edges, {N_BATCHES} batches)",
        ["obs", "wall seconds", "edges/s", "overhead"],
    )
    table.add_row(["disabled", results["t_off"],
                   N_EDGES / results["t_off"], "-"])
    table.add_row(["enabled", results["t_on"],
                   N_EDGES / results["t_on"], f"{overhead:+.1%}"])
    emit(table)
    record_bench(
        "obs_overhead",
        config={"n_edges": N_EDGES, "scale": SCALE, "n_batches": N_BATCHES},
        wall_s=results["t_on"],
        throughput_edges_per_s=N_EDGES / results["t_on"],
        metrics={"disabled_wall_s": results["t_off"], "overhead": overhead},
    )

    assert overhead <= OVERHEAD_MAX, (
        f"enabled-mode ingest overhead {overhead:+.1%} exceeds budget "
        f"{OVERHEAD_MAX:.0%}"
    )
