"""Extension bench — Inference-Box heuristics (Sec. IV.B future work).

The paper's future work: "factor in other heuristics such as number of
degrees of the active vertices ... in order to attain higher predictive
accuracy".  This bench compares the published ratio predictor (T = A/E)
against the degree predictor (T' = D/E, D = total out-degree of the
active set) on a hub-heavy graph, where a small-but-hub-laden frontier
makes the two disagree: the degree predictor sees the real incremental
work, the ratio predictor undercounts it.
"""

import numpy as np
import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.core.config import EngineConfig
from repro.core.stats import AccessStats
from repro.engine import BFS, HybridEngine
from repro.workloads.streams import EdgeStream, highest_degree_roots

from _common import emit, emit_line, stream_for


def run_predictor(predictor: str):
    stream = stream_for("hollywood_like", n_batches=4)
    root = int(highest_degree_roots(stream.edges, 1)[0])
    avg_degree = stream.edges.shape[0] / np.unique(stream.edges[:, 0]).shape[0]
    threshold = (
        MODEL.hybrid_threshold()
        if predictor == "ratio"
        else MODEL.hybrid_threshold_degree(avg_degree)
    )
    cfg = EngineConfig(predictor=predictor, threshold=threshold)
    store = make_store("graphtinker")
    merged = AccessStats()
    work = 0
    flips = 0
    for batch in stream.insert_batches():
        store.insert_batch(batch)
        engine = HybridEngine(store, BFS(), config=cfg)
        engine.reset(roots=[root])
        engine.mark_inconsistent(batch)
        before = store.stats.snapshot()
        result = engine.compute()
        merged.merge(store.stats.delta(before))
        work += store.n_edges
        modes = result.modes_used()
        flips += sum(a != b for a, b in zip(modes, modes[1:]))
    return MODEL.throughput(work, merged), flips


@pytest.mark.benchmark(group="predictor-ablation")
def test_predictor_ablation(benchmark):
    def run_all():
        return {p: run_predictor(p) for p in ("ratio", "degree")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Inference-Box predictor ablation (BFS, hollywood_like)",
        ["predictor", "modeled throughput", "mode flips"],
    )
    for p in ("ratio", "degree"):
        tp, flips = results[p]
        table.add_row([p, tp, flips])
    emit(table)
    emit_line("   (ratio = published T=A/E; degree = future-work T'=D/E)")

    # Finding: with a cost-calibrated threshold the *published* ratio
    # predictor is already near the oracle (see bench_hybrid_accuracy),
    # leaving the degree heuristic little headroom — consistent with the
    # paper reporting 97% accuracy from the simple formula.  The degree
    # variant must stay in the same winning regime (well above either
    # fixed mode; see Figs. 11-13 where best-fixed trails hybrid by 25%+).
    ratio_tp, _ = results["ratio"]
    degree_tp, _ = results["degree"]
    assert degree_tp >= 0.75 * ratio_tp
    assert ratio_tp >= 0.75 * degree_tp
