"""Extension bench — the "no pre-processing needed" claim (abstract, Sec. III.B).

The paper positions the CAL against the store-and-static-compute recipe
of converting to a compact form (CSR) before analytics: "SGH and CAL
dramatically improve the efficiency of the data structure without the
need for any form of pre-processing (making a pass over the graph to
sort or compact the data structure)".

Protocol: analytics-after-every-batch (the dynamic-graph reality) over
three stores:

* GraphTinker+CAL — O(1) compaction maintenance per update, streamed
  analytics, zero preprocessing;
* CSR-rebuild — ideal streaming, but a full sort+compact pass after
  every batch (the preprocessing bill);
* STINGER — no preprocessing, but no compaction either.

Expected shape: per analytics *pass alone* CSR is unbeatable (dense
sorted arrays); once the per-batch rebuild is included, GraphTinker+CAL
wins the combined loop — the paper's argument for maintaining the
compact copy incrementally.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.baselines import CSRRebuildStore
from repro.core.stats import AccessStats
from repro.engine.algorithms import BFS
from repro.workloads.streams import highest_degree_roots

from _common import emit, stream_for


def run_store(store, stream, root):
    """Analytics after every batch; returns (work, update+prep cost, analytics cost)."""
    update_stats = AccessStats()
    analytics_stats = AccessStats()
    work = 0
    for batch in stream.insert_batches():
        before = store.stats.snapshot()
        store.insert_batch(batch)
        if isinstance(store, CSRRebuildStore):
            store.rebuild()  # the preprocessing pass, charged to updates
        update_stats.merge(store.stats.delta(before))
        before = store.stats.snapshot()
        analytics_once(store, BFS, "full", roots=[root])
        analytics_stats.merge(store.stats.delta(before))
        work += store.n_edges
    return work, update_stats, analytics_stats


def run_all():
    out = {}
    for kind in ("graphtinker", "csr", "stinger"):
        stream = stream_for("rmat_1m_10m", n_batches=6)
        root = int(highest_degree_roots(stream.edges, 1)[0])
        store = CSRRebuildStore() if kind == "csr" else make_store(kind)
        out[kind] = run_store(store, stream, root)
    return out


@pytest.mark.benchmark(group="preprocessing")
def test_no_preprocessing_claim(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Preprocessing ablation: updates(+prep) vs analytics cost, and combined throughput",
        ["store", "update+prep cost", "analytics cost", "analytics tput",
         "combined tput"],
    )
    combined = {}
    analytics_tp = {}
    for kind in ("graphtinker", "csr", "stinger"):
        work, upd, ana = results[kind]
        cu, ca = MODEL.cost(upd), MODEL.cost(ana)
        analytics_tp[kind] = work / ca if ca else float("inf")
        combined[kind] = work / (cu + ca)
        table.add_row([kind, cu, ca, analytics_tp[kind], combined[kind]])
    emit(table)

    # CSR's per-pass analytics are the gold standard; GraphTinker+CAL
    # reaches CSR-class streaming (within 20%) with zero preprocessing,
    assert analytics_tp["graphtinker"] > 0.8 * analytics_tp["csr"]
    # and both compact representations crush STINGER's raw sweep.
    assert analytics_tp["graphtinker"] > 5 * analytics_tp["stinger"]
    # On the combined dynamic loop, maintaining compaction incrementally
    # matches-or-beats rebuilding it per batch (and does so without the
    # rebuild's latency spike or double-buffered memory) — the paper's
    # "no pre-processing needed" claim.
    assert combined["graphtinker"] >= 0.9 * combined["csr"]
    assert combined["graphtinker"] > 4 * combined["stinger"]