"""Extension bench — the O(log n) vs O(n) probe-distance claim (Sec. III.B).

Not a numbered figure, but the paper's central structural argument: "the
average probe distance when following edges of a particular vertex v_i is
of the order O(log(n)) as compared to the adjacency list representation
which is O(n) where n is the degree".  This bench loads the same
hub-heavy stream into both structures and reports measured probe costs
bucketed by vertex degree.
"""

import numpy as np
import pytest

from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.core.probes import (
    degree_vs_probe_curve,
    graphtinker_probe_summary,
    stinger_probe_summary,
)

from _common import emit, stream_for


def run_all():
    stream = stream_for("hollywood_like", n_batches=1)
    gt = make_store("graphtinker")
    st = make_store("stinger")
    gt.insert_batch(stream.edges)
    st.insert_batch(stream.edges)
    return {
        "gt": graphtinker_probe_summary(gt, sample_vertices=300),
        "stinger": stinger_probe_summary(st, sample_vertices=300),
        "curve": degree_vs_probe_curve(gt),
        "gt_store": gt,
        "st_store": st,
    }


@pytest.mark.benchmark(group="probe-distance")
def test_probe_distance_sublinearity(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Probe distance when following edges (hollywood_like)",
        ["structure", "samples", "mean", "p95", "max"],
    )
    for label, key in (("GraphTinker (workblocks+descents)", "gt"),
                       ("STINGER (chain hops)", "stinger")):
        s = results[key]
        table.add_row([label, s.count, s.mean, s.p95, s.max])
    emit(table)

    curve = Table(
        "GraphTinker mean probe vs vertex degree (log-like growth)",
        ["degree <=", "mean probe", "vertices"],
    )
    for upper, mean_probe, n in results["curve"]:
        curve.add_row([upper, mean_probe, n])
    emit(curve)

    gt, st = results["gt"], results["stinger"]
    # STINGER's worst case dwarfs GraphTinker's on a hub-heavy graph.
    assert gt.max < st.max
    assert gt.mean < st.mean
    # Sub-linear growth: across a >=16x degree spread, GT's mean probe
    # grows far slower than the degree does.
    finite = [(d, p) for d, p, _ in results["curve"] if np.isfinite(d)]
    if len(finite) >= 2:
        (d0, p0), (d1, p1) = finite[0], finite[-1]
        assert p1 / p0 < (d1 / d0) ** 0.75
