"""Methodology bench — conclusions are stable across dataset scales.

The reproduction runs every experiment on scaled-down datasets
(DESIGN.md §1).  For that to be valid, the headline orderings must not
be artefacts of one particular scale.  This bench repeats the Fig. 8
comparison at three scale factors and checks the invariants:

* GraphTinker beats STINGER at every scale,
* the advantage *grows* (or at least does not shrink) with scale — the
  paper's own observation that bigger graphs widen the gap — so the
  full-size ratios can only be better than what we report.
"""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import insertion_run, make_store
from repro.bench.reporting import Table
from repro.core.stats import AccessStats
from repro.workloads import load_dataset
from repro.workloads.streams import EdgeStream

from _common import emit

FACTORS = [0.002, 0.005, 0.01]


def run_factor(factor: float) -> dict[str, float]:
    _, edges = load_dataset("hollywood_like", factor=factor)
    stream = EdgeStream(edges, max(1, edges.shape[0] // 6))
    out = {}
    for kind in ("graphtinker", "stinger"):
        store = make_store(kind)
        measurements = insertion_run(store, EdgeStream(edges, stream.batch_size))
        merged = AccessStats()
        for m in measurements:
            merged.merge(m.stats_delta)
        out[kind] = MODEL.throughput(edges.shape[0], merged)
    return out


@pytest.mark.benchmark(group="scale-stability")
def test_conclusions_stable_across_scales(benchmark):
    results = benchmark.pedantic(
        lambda: {f: run_factor(f) for f in FACTORS}, rounds=1, iterations=1
    )

    table = Table(
        "Scale stability: GT vs STINGER insertion ratio per dataset scale",
        ["scale factor", "edges", "GraphTinker", "STINGER", "GT/STINGER"],
    )
    ratios = []
    for f in FACTORS:
        _, edges = load_dataset("hollywood_like", factor=f)
        r = results[f]
        ratio = r["graphtinker"] / r["stinger"]
        ratios.append(ratio)
        table.add_row([f, edges.shape[0], r["graphtinker"], r["stinger"], ratio])
    emit(table)

    assert all(r > 1.0 for r in ratios)
    # Monotone-or-flat growth with scale (tolerate 10% noise).
    assert ratios[-1] >= 0.9 * ratios[0]
