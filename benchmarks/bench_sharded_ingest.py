"""Sharded-store ingest bench — measured wall-clock speedup at 4 shards.

The process-per-shard :class:`repro.core.sharded.ShardedStore` is the
repo's first *measured* multicore path (the ``PartitionedStore`` thread
path is GIL-serialized and deprecated).  This bench ingests one RMAT
stream through the plain backend, a 1-shard store, and a 4-shard store,
and reports:

* **measured** wall-clock throughput per configuration, and the 4-shard
  over 1-shard speedup (both pay the same pipe/IPC tax, so the ratio
  isolates the parallelism);
* **modeled** max-over-partitions makespan speedup from the same runs —
  the charging oracle (``last_batch_partitions``) that Fig. 10 uses,
  which is host-independent;
* **equivalence**: the 1-shard, 4-shard, and plain stores must finish
  with identical content digests (shard-count invariance).

The measured-speedup floor (``REPRO_SHARDED_FLOOR``, default 2.0) is
asserted **only when the host actually has >= 4 usable cores** — on a
smaller box a 4-shard run cannot physically beat 2x, and recording a
pass there would be fabrication.  The committed record always carries
``cores`` so a reader can judge the measured numbers honestly.
"""

import gc
import os
import time

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.reporting import Table
from repro.core.config import ShardedConfig
from repro.core.sharded import ShardedStore
from repro.core.store import create_store, store_digest
from repro.workloads import rmat_edges

from _common import edge_budget, emit, emit_line, record_bench

SCALE = 13
N_BATCHES = 4
SHARDS = 4
SHARDED_FLOOR = float(os.environ.get("REPRO_SHARDED_FLOOR", "2.0"))


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _ingest(store, edges) -> dict:
    batch = max(1, edges.shape[0] // N_BATCHES)
    makespans = []
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for lo in range(0, edges.shape[0], batch):
            store.insert_batch(edges[lo:lo + batch])
            if isinstance(store, ShardedStore):
                makespans.append(max(
                    (MODEL.cost(d) for d in store.last_batch_partitions),
                    default=0.0))
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    out = {
        "wall_s": elapsed,
        "edges_per_s": edges.shape[0] / elapsed,
        "n_edges": store.n_edges,
        "digest": store_digest(store),
        "modeled_makespan": sum(makespans) if makespans else None,
    }
    closer = getattr(store, "close", None)
    if closer is not None:
        closer()
    return out


def run_all():
    edges = rmat_edges(SCALE, edge_budget(), seed=11)
    # Warm the code paths (process spawn, kernels) outside the timers.
    warm = ShardedStore(ShardedConfig(n_shards=SHARDS))
    warm.insert_batch(edges[:2_000])
    warm.close()
    create_store("graphtinker").insert_batch(edges[:2_000])
    return {
        "plain": _ingest(create_store("graphtinker"), edges),
        "sharded1": _ingest(ShardedStore(ShardedConfig(n_shards=1)), edges),
        f"sharded{SHARDS}": _ingest(
            ShardedStore(ShardedConfig(n_shards=SHARDS)), edges),
        "n_edges_in": int(edges.shape[0]),
    }


@pytest.mark.benchmark(group="sharded")
def test_sharded_ingest_speedup(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cores = _cores()
    one, many = results["sharded1"], results[f"sharded{SHARDS}"]

    table = Table(
        f"sharded ingest — RMAT scale {SCALE} "
        f"({results['n_edges_in']} edges, host cores: {cores})",
        ["configuration", "wall seconds", "edges/s", "final edges"],
    )
    for name in ("plain", "sharded1", f"sharded{SHARDS}"):
        row = results[name]
        table.add_row([name, row["wall_s"], row["edges_per_s"],
                       row["n_edges"]])
    emit(table)

    measured_speedup = many["edges_per_s"] / one["edges_per_s"]
    modeled_speedup = one["modeled_makespan"] / many["modeled_makespan"]
    emit_line(f"  measured {SHARDS}-shard/1-shard speedup: "
              f"{measured_speedup:.2f}x (wall; {cores} cores)")
    emit_line(f"  modeled makespan speedup: {modeled_speedup:.2f}x "
              f"(max-over-partitions oracle; host-independent)")

    record_bench(
        "sharded_ingest",
        config={"n_edges": results["n_edges_in"], "scale": SCALE,
                "n_batches": N_BATCHES, "shards": SHARDS,
                "floor": SHARDED_FLOOR, "cores": cores,
                "floor_asserted": cores >= SHARDS},
        wall_s=many["wall_s"],
        throughput_edges_per_s=many["edges_per_s"],
        metrics={
            "cores": float(cores),
            "plain_edges_per_s": results["plain"]["edges_per_s"],
            "sharded1_edges_per_s": one["edges_per_s"],
            f"sharded{SHARDS}_edges_per_s": many["edges_per_s"],
            "measured_speedup": measured_speedup,
            "modeled_makespan_speedup": modeled_speedup,
        },
    )

    # Shard-count invariance: identical content whatever the layout.
    assert one["digest"] == many["digest"] == results["plain"]["digest"]
    assert one["n_edges"] == many["n_edges"] == results["plain"]["n_edges"]
    # The modeled makespan must improve with shards on any host: that is
    # the paper's shared-nothing critical path, not a wall-clock claim.
    assert modeled_speedup > 1.0
    if cores >= SHARDS:
        assert measured_speedup >= SHARDED_FLOOR, (
            f"measured {SHARDS}-shard speedup {measured_speedup:.2f}x fell "
            f"below the {SHARDED_FLOOR}x floor on a {cores}-core host"
        )
    else:
        emit_line(f"  floor assertion skipped: host has {cores} core(s), "
                  f"needs >= {SHARDS} for a meaningful wall-clock claim")
