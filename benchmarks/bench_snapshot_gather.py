"""Snapshot bench — CSR frontier gathers vs per-vertex walks, wall-clock.

The analytics snapshot (``repro.engine.snapshot``) carries the same
license as the batch-ingest kernels: *behaviourally invisible* — with it
on or off the engine computes bit-identical vertex properties,
iteration traces, and modeled ``AccessStats``; its only permitted effect
is wall-clock speed.  This bench pins both halves of that contract on
the acceptance workload — incremental BFS over a 100k-edge RMAT graph,
recomputed after each of several churn batches (the steady-state shape
the snapshot is built for: dirty-row patching instead of full rebuilds):

* **speed**: snapshot-on must beat snapshot-off by at least
  ``SPEEDUP_FLOOR`` (3x by default; override with
  ``REPRO_SNAPSHOT_SPEEDUP_FLOOR`` for noisy shared runners; the edge
  count scales down via ``REPRO_SNAPSHOT_BENCH_EDGES`` for smoke runs);
* **equivalence**: final values, per-iteration modes, and the merged
  stats dict must be equal — a fast-but-wrong gather must not pass.
"""

import gc
import os
import time

import numpy as np
import pytest

from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.engine.algorithms import BFS
from repro.engine.hybrid import HybridEngine
from repro.workloads import rmat_edges
from repro.workloads.streams import highest_degree_roots

from _common import emit, record_bench

N_EDGES = int(os.environ.get("REPRO_SNAPSHOT_BENCH_EDGES", "100000"))
SCALE = 16
N_CHURN_ROUNDS = 3
CHURN_EDGES = 1_000
N_ROOTS = 4  # one BFS sweep per root per round — the amortization knob
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SNAPSHOT_SPEEDUP_FLOOR", "3.0"))


def _frontier_sweep(snapshot: bool):
    """Load the graph, then run per-root incremental BFS sweeps after
    each churn round (churn batches dirty a slice of the rows; the
    snapshot must patch those and serve the rest from cache)."""
    edges = rmat_edges(SCALE, N_EDGES, seed=7)
    roots = [int(r) for r in highest_degree_roots(edges, N_ROOTS)]
    store = make_store("graphtinker", snapshot=snapshot)
    store.insert_batch(edges)
    churn = rmat_edges(SCALE, CHURN_EDGES * N_CHURN_ROUNDS, seed=11)

    values = []
    modes: list[str] = []
    before = store.stats.snapshot()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for r in range(N_CHURN_ROUNDS + 1):
            if r:
                batch = churn[(r - 1) * CHURN_EDGES : r * CHURN_EDGES]
                store.delete_batch(batch[: CHURN_EDGES // 2])
                store.insert_batch(batch)
            for root in roots:
                engine = HybridEngine(store, BFS(), policy="incremental")
                engine.reset(roots=[root])
                result = engine.compute()
                values.append(engine.values)
                modes.extend(result.modes_used())
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return {
        "seconds": elapsed,
        "values": values,
        "modes": modes,
        "stats": store.stats.delta(before).as_dict(),
        "snapshot": store.analytics_snapshot,
    }


def run_all():
    # Warm both paths (lazy imports, allocator pools) on a small prefix.
    for snapshot in (False, True):
        warm = make_store("graphtinker", snapshot=snapshot)
        warm.insert_batch(rmat_edges(SCALE, 2_000, seed=3))
        eng = HybridEngine(warm, BFS(), policy="incremental")
        eng.reset(roots=[0])
        eng.compute()
    off = _frontier_sweep(snapshot=False)
    on = _frontier_sweep(snapshot=True)
    return off, on


@pytest.mark.benchmark(group="snapshot")
def test_snapshot_gather_speedup_and_equivalence(benchmark):
    off, on = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = off["seconds"] / on["seconds"]
    snap = on["snapshot"]

    table = Table(
        f"incremental-BFS frontier gathers ({N_EDGES} RMAT edges, "
        f"{N_CHURN_ROUNDS} churn rounds x {N_ROOTS} roots)",
        ["snapshot", "wall seconds", "speedup", "hits", "rebuilds",
         "patched rows"],
    )
    table.add_row(["off", off["seconds"], 1.0, "-", "-", "-"])
    table.add_row(["on", on["seconds"], speedup, snap.hits, snap.rebuilds,
                   snap.patched_rows])
    emit(table)
    record_bench(
        "snapshot_gather",
        config={"n_edges": N_EDGES, "scale": SCALE,
                "churn_rounds": N_CHURN_ROUNDS, "n_roots": N_ROOTS},
        wall_s=on["seconds"],
        metrics={"off_wall_s": off["seconds"], "speedup": speedup,
                 "snapshot_hits": snap.hits,
                 "snapshot_rebuilds": snap.rebuilds},
    )

    # Equivalence first: the snapshot must be behaviourally invisible.
    assert len(on["values"]) == len(off["values"])
    for got, want in zip(on["values"], off["values"]):
        assert np.array_equal(got, want, equal_nan=True)
    assert on["modes"] == off["modes"]
    assert on["stats"] == off["stats"]
    # Steady-state churn must patch rows, not rebuild from scratch every
    # round (one full measure on first use, then touched rows only).
    assert snap.rebuilds <= 1 + N_CHURN_ROUNDS
    # Then the acceptance speedup on the interpreter clock.
    assert speedup >= SPEEDUP_FLOOR, (
        f"snapshot gather speedup {speedup:.2f}x below floor "
        f"{SPEEDUP_FLOOR}x"
    )
