"""E1 — Table 1: dataset properties.

Regenerates the paper's dataset table at the active scale factor:
paper-size columns alongside the measured scaled sizes and average
degrees, confirming the stand-ins preserve the relative shapes
(hollywood_like much denser than the RMAT synthetics, kron_like the
largest).
"""

import pytest

from repro.bench.reporting import Table
from repro.workloads.datasets import DATASET_ORDER, dataset_properties

from _common import emit


def build_table1() -> list[dict]:
    return [dataset_properties(name) for name in DATASET_ORDER]


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_properties(benchmark):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)

    table = Table(
        "Table 1: graph datasets under evaluation (scaled)",
        ["dataset", "type", "paper |V|", "paper |E|",
         "scaled |V|", "scaled |E|", "avg out-deg"],
    )
    for row in rows:
        table.add_row([
            row["name"], row["type"], row["paper_vertices"], row["paper_edges"],
            row["scaled_vertices"], row["scaled_edges"], row["avg_out_degree"],
        ])
    emit(table)

    by_name = {r["name"]: r for r in rows}
    # Shape assertions mirroring Table 1's relative properties.
    assert by_name["hollywood_like"]["avg_out_degree"] > 3 * by_name["rmat_1m_10m"]["avg_out_degree"]
    assert by_name["kron_like"]["scaled_edges"] == max(r["scaled_edges"] for r in rows)
    order = [by_name[n]["scaled_edges"] for n in
             ("rmat_1m_10m", "rmat_1m_16m", "rmat_2m_32m")]
    assert order == sorted(order)
