"""Tiered-store ingest bench — every registered backend, two degree shapes.

The degree-tiered store's pitch is *shape robustness*: one layout per
degree class instead of one layout for all rows.  A power-law (Graph500
RMAT) stream concentrates edges on hubs — the large-tier workload; a
uniform stream (a=b=c=d=0.25) spreads degree thinly — the inline tier's
home turf.  This bench ingests the same two streams into **every**
backend registered in :mod:`repro.core.store` and pins the claim:

* **robustness**: on each shape, TieredStore's wall throughput must be
  no worse than ``TIERED_FLOOR`` x the *slowest* single-layout backend
  (default 0.7; override with ``REPRO_TIERED_FLOOR`` on noisy runners).
  The tiered store pays per-edge promotion checks, so it need not win —
  it must merely never be the outlier;
* **equivalence**: every backend finishes with the same edge count as
  the tiered store (same dedup semantics on the duplicate-heavy RMAT
  stream);
* **occupancy**: the tier report is emitted per shape, and the
  power-law run must actually populate the upper tiers (promotions > 0).

One ``BENCH_tiered_ingest.json`` record captures throughput per backend
per shape plus the tier occupancy, for ``python -m repro report`` diffs.
"""

import gc
import os
import time

import pytest

from repro.bench.reporting import Table
from repro.core.store import backend_names, create_store
from repro.workloads import rmat_edges

from _common import edge_budget, emit, emit_line, record_bench

SCALE = 13
N_BATCHES = 4
TIERED_FLOOR = float(os.environ.get("REPRO_TIERED_FLOOR", "0.7"))

SHAPES = {
    "power_law": {},                                       # Graph500 a,b,c,d
    "uniform": dict(a=0.25, b=0.25, c=0.25, d=0.25, noise=0.0),
}


def _ingest(backend: str, edges) -> tuple[float, object]:
    store = create_store(backend)
    batch = max(1, edges.shape[0] // N_BATCHES)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for lo in range(0, edges.shape[0], batch):
            store.insert_batch(edges[lo:lo + batch])
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return elapsed, store


def run_all():
    n_edges = edge_budget()
    backends = backend_names()
    results = {}
    for shape, kwargs in SHAPES.items():
        edges = rmat_edges(SCALE, n_edges, seed=11, **kwargs)
        # Warm each backend's code paths on a small prefix.
        for name in backends:
            create_store(name).insert_batch(edges[:2_000])
        per_backend = {}
        occupancy = None
        for name in backends:
            elapsed, store = _ingest(name, edges)
            per_backend[name] = {
                "wall_s": elapsed,
                "edges_per_s": n_edges / elapsed,
                "n_edges": store.n_edges,
            }
            if name == "tiered":
                occupancy = store.tier_occupancy()
        results[shape] = {"backends": per_backend, "occupancy": occupancy,
                          "n_edges_in": n_edges}
    return results


@pytest.mark.benchmark(group="tiered")
def test_tiered_ingest_robustness(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    metrics = {}
    for shape, shape_res in results.items():
        per_backend = shape_res["backends"]
        table = Table(
            f"tiered ingest — {shape} RMAT "
            f"({shape_res['n_edges_in']} edges, scale {SCALE})",
            ["backend", "wall seconds", "edges/s", "final edges"],
        )
        for name, row in sorted(per_backend.items()):
            table.add_row([name, row["wall_s"], row["edges_per_s"],
                           row["n_edges"]])
            metrics[f"{shape}_{name}_edges_per_s"] = row["edges_per_s"]
        emit(table)
        occ = shape_res["occupancy"]
        emit_line(f"  tier occupancy [{shape}]: inline={occ['inline']} "
                  f"small={occ['small']} large={occ['large']} "
                  f"promotions={occ['promotions']} "
                  f"demotions={occ['demotions']}")
        metrics[f"{shape}_promotions"] = occ["promotions"]
        metrics[f"{shape}_large_vertices"] = occ["large"]

    record_bench(
        "tiered_ingest",
        config={"n_edges": results["power_law"]["n_edges_in"],
                "scale": SCALE, "n_batches": N_BATCHES,
                "floor": TIERED_FLOOR},
        wall_s=results["power_law"]["backends"]["tiered"]["wall_s"],
        throughput_edges_per_s=(
            results["power_law"]["backends"]["tiered"]["edges_per_s"]),
        metrics=metrics,
    )

    for shape, shape_res in results.items():
        per_backend = shape_res["backends"]
        # Same dedup semantics everywhere: identical final edge counts.
        counts = {name: row["n_edges"] for name, row in per_backend.items()}
        assert len(set(counts.values())) == 1, counts
        # Robustness floor: tiered is never the outlier.
        tiered = per_backend["tiered"]["edges_per_s"]
        worst = min(row["edges_per_s"] for name, row in per_backend.items()
                    if name != "tiered")
        assert tiered >= worst * TIERED_FLOOR, (
            f"{shape}: tiered {tiered:.0f} edges/s fell below "
            f"{TIERED_FLOOR}x the slowest single-layout backend "
            f"({worst:.0f} edges/s)"
        )
    # The skewed stream must actually exercise the tiers.
    assert results["power_law"]["occupancy"]["promotions"] > 0
    assert results["power_law"]["occupancy"]["large"] > 0
