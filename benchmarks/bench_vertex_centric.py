"""Extension bench — edge-centric vs vertex-centric full processing.

The paper adopts the edge-centric (EC) GAS formulation and defers the
vertex-centric (VC) variant to future work (Sec. IV.A).  This bench runs
both full-processing load paths over the same GraphTinker instance and
compares modeled cost per BFS pass:

* EC streams the whole edge set from the CAL — dense sequential blocks;
* VC visits every vertex and gathers its out-edges from the
  EdgeblockArray — random PAGEWIDTH-wide block reads per vertex.

Expected shape: EC wins clearly, and its advantage grows with PAGEWIDTH
(wider blocks make per-vertex gathers pay for more empty cells) — i.e.
the data structure's own design pushes toward the edge-centric choice
the paper made.
"""

import numpy as np
import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import make_store
from repro.bench.reporting import Table
from repro.core.config import GTConfig
from repro.core.stats import AccessStats
from repro.engine import modes

from _common import emit, stream_for


def measure_load(store, loader) -> float:
    before = store.stats.snapshot()
    src, _, _ = loader(store)
    delta = store.stats.delta(before)
    return MODEL.throughput(int(src.shape[0]), delta)


def run_all():
    out = {}
    for pw in (16, 64, 256):
        stream = stream_for("rmat_1m_10m", n_batches=1)
        store = make_store("graphtinker", GTConfig(pagewidth=pw))
        store.insert_batch(stream.edges)
        store.stats.reset()
        out[(pw, "EC")] = measure_load(store, modes.load_edges_full)
        out[(pw, "VC")] = measure_load(store, modes.load_edges_full_vertex_centric)
    return out


@pytest.mark.benchmark(group="vertex-centric")
def test_edge_centric_vs_vertex_centric(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "EC (CAL stream) vs VC (per-vertex EBA gather) full-load throughput",
        ["PAGEWIDTH", "EC", "VC", "EC/VC"],
    )
    ratios = {}
    for pw in (16, 64, 256):
        ec, vc = results[(pw, "EC")], results[(pw, "VC")]
        ratios[pw] = ec / vc
        table.add_row([pw, ec, vc, ratios[pw]])
    emit(table)

    # EC wins at every geometry, and more so at wider PAGEWIDTHs.
    assert all(r > 2.0 for r in ratios.values()), ratios
    assert ratios[256] > ratios[16]
