"""Methodology bench — wall-clock vs modeled orderings (and their limits).

Measures real elapsed time for the Fig. 8 insertion comparison and a
Figs. 11-13-style analytics pass, alongside the modeled orderings.

Findings this bench pins down:

* **Analytics** wall-clock agrees with the model (GraphTinker's CAL
  streaming wins by a large factor even on the interpreter clock) —
  the vectorised load path dominates either way.
* **Insertion** wall-clock can *invert* in pure Python: STINGER scans a
  chain block with one vectorised NumPy op while GraphTinker's RHH probes
  cells in interpreted loops, so interpreter dispatch — not memory
  behaviour — decides the race.  This is exactly the known limitation of
  a pure-Python reproduction (DESIGN.md §1) and the reason every paper
  figure is reproduced from implementation-neutral access counters
  instead of the interpreter clock.  The bench asserts the *counter*
  ordering holds even when the wall-clock one doesn't.
"""

import time

import pytest

from repro.bench.harness import analytics_once, make_store
from repro.bench.reporting import Table
from repro.engine.algorithms import BFS
from repro.workloads.streams import highest_degree_roots

from _common import emit, stream_for


def run_all():
    from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL

    stream = stream_for("hollywood_like", n_batches=1)
    out = {}

    # --- insertion: wall-clock AND modeled -------------------------------
    for kind in ("graphtinker", "stinger"):
        store = make_store(kind)
        t0 = time.perf_counter()
        store.insert_batch(stream.edges)
        out[("insert-wall", kind)] = stream.n_edges / (time.perf_counter() - t0)
        out[("insert-model", kind)] = MODEL.throughput(stream.n_edges, store.stats)

    # --- FP analytics: wall-clock AND modeled ----------------------------
    root = int(highest_degree_roots(stream.edges, 1)[0])
    for kind in ("graphtinker", "stinger"):
        store = make_store(kind)
        store.insert_batch(stream.edges)
        store.stats.reset()
        t0 = time.perf_counter()
        m = analytics_once(store, BFS, "full", roots=[root])
        out[("bfs-wall", kind)] = store.n_edges / (time.perf_counter() - t0)
        out[("bfs-model", kind)] = m.modeled_throughput(MODEL)
    return out


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_vs_modeled_orderings(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Wall-clock vs modeled orderings (GT/STINGER ratios)",
        ["experiment", "GT wall", "STINGER wall", "wall ratio", "modeled ratio"],
    )
    for exp in ("insert", "bfs"):
        gt_w = results[(f"{exp}-wall", "graphtinker")]
        st_w = results[(f"{exp}-wall", "stinger")]
        model_ratio = (results[(f"{exp}-model", "graphtinker")]
                       / results[(f"{exp}-model", "stinger")])
        table.add_row([exp, gt_w, st_w, gt_w / st_w, model_ratio])
    emit(table)

    # The counter-based ordering always holds (the reproduction metric)...
    assert (results[("insert-model", "graphtinker")]
            > results[("insert-model", "stinger")])
    assert (results[("bfs-model", "graphtinker")]
            > results[("bfs-model", "stinger")])
    # ...and the vectorised analytics path wins on the interpreter clock
    # too.  (Insertion wall-clock is allowed to invert: interpreter
    # dispatch, not memory behaviour, decides it — see module docstring.)
    assert results[("bfs-wall", "graphtinker")] > results[("bfs-wall", "stinger")]
