"""Benchmark-suite configuration.

The figure benches are stateful and expensive, so each wall-clock
measurement runs pedantically (one round); the primary reproduction
metric is the modeled throughput printed in each bench's table (see
DESIGN.md §1).
"""

import sys
from pathlib import Path

import pytest

# Allow `import _common` from any benchmark file regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_terminal_summary(terminalreporter):
    """Flush every bench's paper-style result table to the terminal.

    pytest's fd-level capture swallows in-test prints on passing runs;
    queuing the rendered tables and dumping them here guarantees they
    appear in the session output (and in any ``tee``'d log).
    """
    import _common

    if not _common.REPORTS:
        return
    terminalreporter.section("paper reproduction tables")
    for text in _common.REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
