#!/usr/bin/env python3
"""Checkpoint and resume a long-running dynamic-graph session.

Operational pattern for a deployed dynamic store: ingest for a while,
checkpoint the live graph to disk, and later resume — possibly into a
*differently configured* store (here: a delete-and-compact store with a
different PAGEWIDTH, e.g. after re-tuning with the Fig. 19 sweep).
The analytics state is rebuilt after the resume and must match what the
uninterrupted session computes.

Run:  python examples/checkpoint_and_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GraphTinker, GTConfig
from repro.engine import BFS, HybridEngine
from repro.workloads import rmat_edges
from repro.workloads.persistence import restore_graphtinker, save_snapshot
from repro.workloads.streams import EdgeStream, highest_degree_roots


def main() -> None:
    edges = rmat_edges(13, 40_000, seed=9)
    edges = edges[edges[:, 0] != edges[:, 1]]
    stream = EdgeStream(edges, batch_size=8_000)
    batches = list(stream.insert_batches())
    root = int(highest_degree_roots(edges, 1)[0])

    # ---- session 1: ingest the first three batches, checkpoint --------
    session1 = GraphTinker(GTConfig())
    for batch in batches[:3]:
        session1.insert_batch(batch)
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "graph.npz"
        n = save_snapshot(session1, snap)
        print(f"checkpointed {n} live edges "
              f"({snap.stat().st_size / 1024:.0f} KiB compressed)")

        # ---- session 2: resume into a re-tuned configuration ----------
        session2 = restore_graphtinker(
            snap, GTConfig(pagewidth=128, compact_on_delete=True)
        )
    print(f"resumed into PW=128 compact store: {session2.n_edges} edges")
    session2.check_invariants()

    # continue ingesting where session 1 stopped
    engine = HybridEngine(session2, BFS(), policy="hybrid")
    engine.reset(roots=[root])
    for batch in batches[3:]:
        engine.update_and_compute(batch)

    # ---- oracle: an uninterrupted session must agree ------------------
    uninterrupted = GraphTinker(GTConfig())
    uninterrupted.insert_batch(edges)
    oracle = HybridEngine(uninterrupted, BFS(), policy="full")
    oracle.reset(roots=[root])
    oracle.compute()

    n = min(engine.values.shape[0], oracle.values.shape[0])
    assert (engine.values[:n] == oracle.values[:n]).all(), \
        "resumed session diverged from the uninterrupted one"
    reached = int(np.isfinite(engine.values).sum())
    print(f"BFS after resume: {reached} vertices reached — "
          "matches the uninterrupted session exactly")


if __name__ == "__main__":
    main()
