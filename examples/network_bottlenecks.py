#!/usr/bin/env python3
"""Network capacity planning: widest paths and route extraction.

An ISP-style scenario: a backbone graph whose edge weights are link
capacities.  Operations wants, from a core router, (1) the maximum
bottleneck bandwidth reachable to every node (SSWP), (2) concrete routes
realising shortest paths (path reconstruction), and (3) how both change
as links are upgraded — exercising the SSWP extension program and the
witness-based path module on a live store.

Run:  python examples/network_bottlenecks.py
"""

import numpy as np

from repro import GraphTinker, GTConfig
from repro.engine import SSSP, HybridEngine
from repro.engine.algorithms import SSWP
from repro.engine.paths import path_cost, reconstruct_path
from repro.workloads import rmat_edges
from repro.workloads.streams import symmetrize


def main() -> None:
    rng = np.random.default_rng(12)
    # Backbone topology: symmetrised hub-heavy graph; capacities in Gb/s.
    links = symmetrize(rmat_edges(10, 3000, seed=2))
    links = links[links[:, 0] != links[:, 1]]
    capacity = rng.choice([1.0, 2.5, 10.0, 40.0, 100.0], links.shape[0])

    net = GraphTinker(GTConfig())
    net.insert_batch(links, capacity)
    core = int(links[0, 0])

    # ---- widest paths from the core router -----------------------------
    sswp = HybridEngine(net, SSWP(), policy="hybrid")
    sswp.reset(roots=[core])
    sswp.compute()
    widths = sswp.values
    reachable = np.flatnonzero((widths > 0) & np.isfinite(widths))
    print(f"core router {core}: {reachable.size} reachable nodes")
    for gbps in (100.0, 40.0, 10.0):
        n = int((widths[reachable] >= gbps).sum())
        print(f"  nodes with >= {gbps:5.1f} Gb/s bottleneck bandwidth: {n}")

    # ---- latency routes (SSSP with cost = 1/capacity) -------------------
    latency = HybridEngine(net, SSSP(), policy="hybrid")
    # recreate the store view with latency weights (cheapest link = fastest)
    lat_net = GraphTinker(GTConfig())
    lat_net.insert_batch(links, 1.0 / capacity)
    latency = HybridEngine(lat_net, SSSP(), policy="hybrid")
    latency.reset(roots=[core])
    latency.compute()
    far = int(reachable[np.argmin(widths[reachable])])
    route = reconstruct_path(lat_net, latency.values, core, far)
    print(f"\nweakest node {far}: bottleneck {widths[far]:.1f} Gb/s")
    print(f"  fastest route ({len(route) - 1} hops): {route[:8]}"
          f"{' ...' if len(route) > 8 else ''}")
    print(f"  route latency cost: {path_cost(lat_net, route):.3f} "
          f"(= engine distance {latency.value_of(far):.3f})")

    # ---- upgrade the route's weakest links and re-evaluate --------------
    upgraded = 0
    for u, v in zip(route, route[1:]):
        if net.edge_weight(u, v) < 40.0:
            net.insert_edge(u, v, 100.0)     # weight update in place
            net.insert_edge(v, u, 100.0)
            upgraded += 1
    sswp2 = HybridEngine(net, SSWP(), policy="hybrid")
    sswp2.reset(roots=[core])
    sswp2.compute()
    print(f"\nafter upgrading {upgraded} link(s) along the route:")
    print(f"  node {far} bottleneck: {widths[far]:.1f} -> "
          f"{sswp2.value_of(far):.1f} Gb/s")
    assert sswp2.value_of(far) >= widths[far]


if __name__ == "__main__":
    main()
