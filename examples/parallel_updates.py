#!/usr/bin/env python3
"""Multicore ingestion: interval-partitioned GraphTinker instances.

Reproduces Sec. III.D's parallelisation interactively: the update stream
is hash-partitioned by source vertex into independent GraphTinker
instances (no shared state), and per-batch makespans are reported for
1 / 2 / 4 / 8 modelled cores, alongside a real ``multiprocessing``
wall-clock demonstration.

Run:  python examples/parallel_updates.py
"""

import multiprocessing as mp
import time

import numpy as np

from repro import GraphTinker, GTConfig
from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.core.parallel import PartitionedGraphTinker
from repro.workloads import rmat_edges
from repro.workloads.streams import EdgeStream


def _load_partition(edges: np.ndarray) -> int:
    """Worker: load one interval into a private instance (own process)."""
    gt = GraphTinker(GTConfig())
    gt.insert_batch(edges)
    return gt.n_edges


def main() -> None:
    edges = rmat_edges(14, 60_000, seed=3)
    edges = edges[edges[:, 0] != edges[:, 1]]
    stream = EdgeStream(edges, batch_size=15_000)

    # ---- modeled multicore scaling (the Fig. 10 mechanism) -----------
    print("modeled makespan scaling (max over partitions, per batch):")
    print(f"{'cores':>6} {'total makespan':>15} {'speedup':>8} {'edges':>8}")
    base = None
    for cores in (1, 2, 4, 8):
        store = PartitionedGraphTinker(cores)
        total = 0.0
        for batch in stream.insert_batches():
            deltas = store.insert_batch(batch)
            total += max(MODEL.cost(d) for d in deltas)
        base = base or total
        print(f"{cores:>6} {total:>15.0f} {base / total:>7.2f}x {store.n_edges:>8}")
        store.check_invariants()

    # ---- real processes: one interval per worker ----------------------
    print("\nwall-clock with real processes (one interval per worker):")
    for cores in (1, 4):
        splitter = PartitionedGraphTinker(cores)
        parts = splitter.partition_batch(edges)
        t0 = time.perf_counter()
        with mp.get_context("spawn").Pool(cores) as pool:
            counts = pool.map(_load_partition, parts)
        elapsed = time.perf_counter() - t0
        print(f"  {cores} workers: {elapsed:6.2f}s "
              f"({sum(counts)} edges across {cores} instances)")
    print("\nNote: process spawn + IPC overhead dominates at this scale; "
          "the modeled makespan is the controlled measurement (DESIGN.md §1).")


if __name__ == "__main__":
    main()
