#!/usr/bin/env python3
"""Quickstart: the GraphTinker public API in five minutes.

Covers the full surface a new user needs:
  1. building a store and inserting / updating / deleting edges,
  2. point queries and neighbourhood retrieval,
  3. streaming the live edge set through the Coarse Adjacency List,
  4. running an analytics algorithm (BFS) through the hybrid engine,
  5. reading the instrumentation counters and modeled throughput.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GraphTinker, GTConfig
from repro.bench.costmodel import DEFAULT_COST_MODEL
from repro.engine import BFS, HybridEngine
from repro.workloads import rmat_edges


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a store.  The defaults are the paper's geometry
    #    (PAGEWIDTH 64, Subblock 8, Workblock 4, SGH+CAL+RHH enabled).
    # ------------------------------------------------------------------
    gt = GraphTinker(GTConfig())
    print("config:", gt.config)

    # Single-edge operations: insert, duplicate update, delete.
    assert gt.insert_edge(34, 22789, weight=1.5)       # new edge
    assert not gt.insert_edge(34, 22789, weight=2.0)   # weight update
    assert gt.edge_weight(34, 22789) == 2.0
    assert gt.delete_edge(34, 22789)
    print("single-edge ops OK; edges now:", gt.n_edges)

    # ------------------------------------------------------------------
    # 2. Batch updates — the natural unit for dynamic graphs.  Here, a
    #    Graph500 RMAT stream of 50k edges in 5 batches.
    # ------------------------------------------------------------------
    edges = rmat_edges(14, 50_000, seed=1)
    edges = edges[edges[:, 0] != edges[:, 1]]
    for i in range(0, edges.shape[0], 10_000):
        new = gt.insert_batch(edges[i : i + 10_000])
        print(f"batch {i // 10_000}: {new} new edges "
              f"(graph: {gt.n_vertices} sources, {gt.n_edges} edges)")

    # Point queries and neighbourhoods.
    hub = int(edges[0, 0])
    nbrs, weights = gt.neighbors(hub)
    print(f"vertex {hub}: out-degree {gt.degree(hub)}, "
          f"first neighbours {sorted(nbrs.tolist())[:5]}")

    # ------------------------------------------------------------------
    # 3. Whole-graph retrieval through the CAL (contiguous streaming).
    # ------------------------------------------------------------------
    src, dst, _ = gt.analytics_edges()
    print(f"CAL stream: {src.shape[0]} live edges, "
          f"fill fraction {gt.cal.fill_fraction():.2f}")

    # ------------------------------------------------------------------
    # 4. Analytics: BFS from the hub through the hybrid engine, which
    #    flips between full and incremental processing per iteration.
    # ------------------------------------------------------------------
    engine = HybridEngine(gt, BFS(), policy="hybrid")
    engine.reset(roots=[hub])
    result = engine.compute()
    reached = int(np.isfinite(engine.values).sum())
    print(f"BFS: {result.n_iterations} iterations, modes {result.modes_used()}, "
          f"{reached} vertices reached")

    # ------------------------------------------------------------------
    # 5. Instrumentation: every block-granularity memory event is
    #    counted; the cost model turns a counter delta into modeled time.
    # ------------------------------------------------------------------
    stats = gt.stats
    print(f"workblock fetches: {stats.workblock_fetches}, "
          f"RHH swaps: {stats.rhh_swaps}, "
          f"branch-outs: {stats.branch_allocations}, "
          f"CAL updates: {stats.cal_updates}")
    print(f"modeled cost so far: {DEFAULT_COST_MODEL.cost(stats):.0f} access-cycles")
    print("blocks:", gt.memory_blocks())


if __name__ == "__main__":
    main()
