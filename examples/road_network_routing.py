#!/usr/bin/env python3
"""Live road-network routing: SSSP under congestion updates.

A navigation-style scenario: a weighted road graph whose edge costs
(travel times) change continuously as congestion builds and clears, and
whose topology changes as roads close and reopen.  After every update
batch the engine refreshes shortest travel times from a depot vertex.

Exercises the parts of the API the other examples do not:
  * weighted inserts and in-place weight *updates* (congestion),
  * edge deletions and re-insertions (road closures),
  * engine reset after non-monotone changes (a weight increase breaks
    monotonicity, so the sound protocol is a fresh full recompute —
    exactly how the paper handles deletions in Figs. 15-16),
  * incremental continuation for the monotone changes (new roads).

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro import GraphTinker, GTConfig
from repro.engine import SSSP, HybridEngine


def build_grid_roads(n: int, rng) -> tuple[np.ndarray, np.ndarray]:
    """A directed n x n grid with both directions and random travel times."""
    edges = []
    for r in range(n):
        for c in range(n):
            v = r * n + c
            if c + 1 < n:
                edges += [(v, v + 1), (v + 1, v)]
            if r + 1 < n:
                edges += [(v, v + n), (v + n, v)]
    edges = np.asarray(edges, dtype=np.int64)
    times = rng.uniform(1.0, 5.0, edges.shape[0])
    return edges, times


def refresh_routes(store, depot: int) -> np.ndarray:
    """Fresh full SSSP (sound under arbitrary weight changes)."""
    engine = HybridEngine(store, SSSP(), policy="hybrid")
    engine.reset(roots=[depot])
    engine.compute()
    return engine.values


def main() -> None:
    rng = np.random.default_rng(7)
    n = 24
    edges, times = build_grid_roads(n, rng)
    depot = 0

    store = GraphTinker(GTConfig())
    store.insert_batch(edges, times)
    dist = refresh_routes(store, depot)
    corner = n * n - 1
    print(f"grid {n}x{n}: {store.n_edges} road segments")
    print(f"t=0  depot->corner travel time: {dist[corner]:6.2f}")

    reachable0 = int(np.isfinite(dist[: n * n]).sum())
    for step in range(1, 6):
        # Congestion: 5% of roads get slower, 5% recover.
        idx = rng.choice(edges.shape[0], edges.shape[0] // 10, replace=False)
        slower, faster = idx[: idx.size // 2], idx[idx.size // 2 :]
        for i in slower.tolist():
            s, d = edges[i]
            store.insert_edge(int(s), int(d), float(times[i] * rng.uniform(2, 4)))
        for i in faster.tolist():
            s, d = edges[i]
            store.insert_edge(int(s), int(d), float(times[i]))

        # Road closures: a random block of streets goes down...
        closed = edges[rng.choice(edges.shape[0], 30, replace=False)]
        store.delete_batch(closed)
        # ...and last step's closures reopen.
        if step > 1:
            store.insert_batch(prev_closed,
                               times[[edge_index[(s, d)] for s, d in prev_closed.tolist()]])
        prev_closed = closed
        if step == 1:
            edge_index = {(int(s), int(d)): i for i, (s, d) in enumerate(edges.tolist())}

        dist = refresh_routes(store, depot)
        reachable = int(np.isfinite(dist[: n * n]).sum())
        print(f"t={step}  depot->corner: {dist[corner]:6.2f}   "
              f"reachable intersections: {reachable}/{n * n} "
              f"(was {reachable0} before any closure)")

    store.check_invariants()
    print("\nstore invariants OK after congestion churn")


if __name__ == "__main__":
    main()
