#!/usr/bin/env python3
"""Social-network stream: live community tracking with dynamic CC.

The paper's motivating workload (Sec. I): a social graph receiving a
continuous stream of friendship events, with analytics wanted in real
time after every update batch.  This example ingests a skewed RMAT
"friendship" stream, maintains weakly-connected components *incrementally*
across batches with the hybrid engine, and reports how the community
structure consolidates as the network densifies — without ever
re-processing the whole graph from scratch.

Run:  python examples/social_stream_components.py
"""

import numpy as np

from repro import GraphTinker, GTConfig
from repro.engine import ConnectedComponents, HybridEngine
from repro.workloads import rmat_edges
from repro.workloads.streams import EdgeStream, symmetrize


def component_summary(values: np.ndarray, touched: np.ndarray) -> tuple[int, int]:
    """(number of communities, size of the largest) over touched vertices."""
    labels = values[touched]
    uniq, counts = np.unique(labels, return_counts=True)
    return int(uniq.shape[0]), int(counts.max())


def main() -> None:
    # Friendship events: heavy-tailed (celebrity hubs), symmetrised
    # because friendships are mutual — which is also what keeps
    # incremental CC sound (see repro.engine.algorithms.cc).
    events = rmat_edges(13, 30_000, seed=42)
    events = events[events[:, 0] != events[:, 1]]
    stream = EdgeStream(symmetrize(events), batch_size=6_000)

    store = GraphTinker(GTConfig())
    engine = HybridEngine(store, ConnectedComponents(), policy="hybrid")
    engine.reset()

    print(f"ingesting {stream.n_edges} events in {stream.n_batches} batches\n")
    print(f"{'batch':>5} {'edges':>8} {'communities':>12} {'largest':>8} "
          f"{'iters':>6} {'modes used':>22}")
    for i, batch in enumerate(stream.insert_batches()):
        result = engine.update_and_compute(batch)
        touched = np.unique(store.original_ids(np.arange(store.n_vertices)))
        n_comm, largest = component_summary(engine.values, touched)
        modes = ",".join(
            f"{m}x{result.modes_used().count(m)}"
            for m in dict.fromkeys(result.modes_used())
        ) or "-"
        print(f"{i:>5} {store.n_edges:>8} {n_comm:>12} {largest:>8} "
              f"{result.n_iterations:>6} {modes:>22}")

    # The giant component emerges: verify against a scratch recompute.
    scratch = HybridEngine(store, ConnectedComponents(), policy="full")
    scratch.reset()
    scratch.mark_inconsistent(stream.edges)
    scratch.compute()
    n = min(engine.values.shape[0], scratch.values.shape[0])
    assert (engine.values[:n] == scratch.values[:n]).all(), \
        "incremental state diverged from scratch recompute"
    print("\nincremental component labels == scratch recompute: OK")


if __name__ == "__main__":
    main()
