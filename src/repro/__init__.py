"""GraphTinker reproduction (IPDPS 2019, Jaiyeoba & Skadron).

A from-scratch Python implementation of the GraphTinker dynamic-graph data
structure, the STINGER baseline, the edge-centric hybrid graph engine, the
Graph500 RMAT workload generator, and a benchmark harness regenerating
every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import GraphTinker, GTConfig
>>> gt = GraphTinker(GTConfig(pagewidth=64))
>>> gt.insert_edge(0, 1)
True

See ``examples/quickstart.py`` for the full tour.
"""

from repro.core import AccessStats, EngineConfig, GTConfig, GraphTinker, StingerConfig
from repro.errors import (
    CapacityError,
    ConfigError,
    EdgeNotFoundError,
    EngineError,
    ReproError,
    ServiceError,
    VertexNotFoundError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "AccessStats",
    "CapacityError",
    "ConfigError",
    "EdgeNotFoundError",
    "EngineConfig",
    "EngineError",
    "GTConfig",
    "GraphTinker",
    "ReproError",
    "ServiceError",
    "StingerConfig",
    "VertexNotFoundError",
    "WorkloadError",
    "__version__",
]
