"""Additional baselines from the paper's background section (Sec. II).

* :class:`~repro.baselines.adjacency_matrix.AdjacencyMatrixStore` — the
  classic O(1)-insert / O(n^2)-memory strawman the paper rules out.
* :class:`~repro.baselines.csr.CSRRebuildStore` — the
  store-and-static-compute model with preprocessing: a dynamic edge log
  that is compacted into CSR before every analytics pass, giving ideal
  streaming at the price of a rebuild per batch — the foil for
  GraphTinker's "no pre-processing needed" claim.
"""

from repro.baselines.adjacency_matrix import AdjacencyMatrixStore
from repro.baselines.csr import CSRRebuildStore

__all__ = ["AdjacencyMatrixStore", "CSRRebuildStore"]
