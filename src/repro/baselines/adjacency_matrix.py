"""The adjacency-matrix baseline (paper Sec. II.A).

A 2-D matrix holding edge (u_i, v_j) at position a_ij: O(1) edge
insertion and deletion, but O(n^2) memory and an O(n^2) scan to retrieve
the edge set — "unsuitable for dynamic graph processing" at real graph
sizes, which is exactly what the preprocessing bench demonstrates.

Only sensible for small vertex-id spaces; the constructor takes a hard
capacity and refuses ids beyond it rather than growing quadratically.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.stats import AccessStats
from repro.errors import CapacityError, VertexNotFoundError

#: Cells per "block" when charging matrix scans (matches the other
#: stores' 64-slot streaming granularity).
_SCAN_BLOCK = 64


class AdjacencyMatrixStore:
    """Dense adjacency-matrix dynamic graph store (small graphs only)."""

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = AccessStats()
        self._weight = np.zeros((capacity, capacity), dtype=np.float64)
        self._present = np.zeros((capacity, capacity), dtype=bool)
        self._n_edges = 0
        self._max_vertex = -1

    # ------------------------------------------------------------------ #
    def _check(self, src: int, dst: int) -> tuple[int, int]:
        src, dst = int(src), int(dst)
        if src < 0 or dst < 0:
            raise ValueError(f"vertex ids must be non-negative, got ({src}, {dst})")
        if src >= self.capacity or dst >= self.capacity:
            raise CapacityError(
                f"vertex id beyond matrix capacity {self.capacity}; "
                "an adjacency matrix cannot grow cheaply — the paper's point"
            )
        return src, dst

    @property
    def n_edges(self) -> int:
        return self._n_edges

    @property
    def n_vertices(self) -> int:
        return self._max_vertex + 1

    # ------------------------------------------------------------------ #
    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        """O(1): one random write into the matrix."""
        src, dst = self._check(src, dst)
        self.stats.random_block_reads += 1  # the a_ij cache line
        is_new = not self._present[src, dst]
        self._present[src, dst] = True
        self._weight[src, dst] = weight
        if is_new:
            self._n_edges += 1
            self.stats.edges_inserted += 1
        self._max_vertex = max(self._max_vertex, src, dst)
        return is_new

    def insert_batch(self, edges: np.ndarray, weights: np.ndarray | None = None) -> int:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        if edges.size and edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        new = 0
        for (s, d), w in zip(edges.tolist(), np.asarray(weights, float).tolist()):
            if self.insert_edge(s, d, w):
                new += 1
        return new

    def delete_edge(self, src: int, dst: int) -> bool:
        """O(1): one random write."""
        src, dst = self._check(src, dst)
        self.stats.random_block_reads += 1
        if not self._present[src, dst]:
            return False
        self._present[src, dst] = False
        self._n_edges -= 1
        self.stats.edges_deleted += 1
        return True

    def delete_batch(self, edges: np.ndarray) -> int:
        edges = np.asarray(edges, dtype=np.int64)
        return sum(self.delete_edge(s, d) for s, d in edges.tolist())

    # ------------------------------------------------------------------ #
    def has_edge(self, src: int, dst: int) -> bool:
        src, dst = self._check(src, dst)
        self.stats.random_block_reads += 1
        return bool(self._present[src, dst])

    def edge_weight(self, src: int, dst: int) -> float | None:
        src, dst = self._check(src, dst)
        self.stats.random_block_reads += 1
        if not self._present[src, dst]:
            return None
        return float(self._weight[src, dst])

    def degree(self, src: int) -> int:
        src = int(src)
        if src > self._max_vertex:
            return 0
        n = self.n_vertices
        self.stats.cells_scanned += n  # scan the row
        self.stats.seq_block_reads += -(-n // _SCAN_BLOCK)
        return int(self._present[src, : n].sum())

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        src = int(src)
        if src > self._max_vertex:
            raise VertexNotFoundError(src)
        n = self.n_vertices
        self.stats.cells_scanned += n
        self.stats.seq_block_reads += -(-n // _SCAN_BLOCK)
        dst = np.flatnonzero(self._present[src, : n]).astype(np.int64)
        return dst, self._weight[src, dst]

    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Retrieval scans the whole (n x n) used sub-matrix — sparse or
        not, every cell is inspected: the O(n^2) cost of Sec. II.A."""
        n = self.n_vertices
        self.stats.cells_scanned += n * n
        self.stats.seq_block_reads += -(-(n * n) // _SCAN_BLOCK)
        src, dst = np.nonzero(self._present[:n, :n])
        return (src.astype(np.int64), dst.astype(np.int64),
                self._weight[src, dst])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        src, dst, w = self.analytics_edges()
        for s, d, x in zip(src.tolist(), dst.tolist(), w.tolist()):
            yield s, d, x

    # ------------------------------------------------------------------ #
    # engine surface (repro.core.store protocol subset; no CSR snapshot)
    # ------------------------------------------------------------------ #
    @property
    def analytics_snapshot(self):
        return None

    @property
    def id_translator(self):
        return None

    @property
    def full_load_is_row_sweep(self) -> bool:
        # The full load is an n*n matrix scan, not the per-row sweep.
        return False

    def original_ids(self, dense: np.ndarray) -> np.ndarray:
        return np.asarray(dense, dtype=np.int64)

    def dense_row_count(self) -> int:
        return self.n_vertices

    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        return self.neighbors(row)

    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        from repro.engine.snapshot import gather_active_scalar, sanitize_active

        return gather_active_scalar(self, sanitize_active(active))

    def check_invariants(self) -> None:
        assert int(self._present.sum()) == self._n_edges
