"""The store-and-static-compute baseline with CSR preprocessing (Sec. II.B).

The traditional dynamic-graph recipe: accumulate updates in a cheap log,
and before every analytics pass *preprocess* — compact the current edge
set into CSR (compressed sparse row), then stream it contiguously.  CSR
retrieval is the gold standard for contiguity, but the rebuild pass
touches every edge after every batch, which is the redundant work the
paper's CAL eliminates ("without the need for any form of
pre-processing").

Accounting:

* updates: O(1) hash-log operations.  Each log probe is charged as one
  *random block access*: the log is edge-scale, so its buckets are not
  cache-resident (unlike the SGH table, which is vertex-scale) — the
  same dedup bill every other store pays via its own probe mechanism;
* rebuild: reads the whole log and writes the whole CSR — charged as a
  sequential pass over both plus an O(E log E) sort's worth of cell
  touches;
* analytics: perfect sequential streaming of the CSR arrays.

The preprocessing bench (`benchmarks/bench_preprocessing.py`) compares
this against GraphTinker+CAL under the analytics-after-every-batch
protocol.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.stats import AccessStats
from repro.errors import VertexNotFoundError

#: Slots per block when charging sequential passes (matches the other
#: stores' streaming granularity).
_SCAN_BLOCK = 64


class CSRRebuildStore:
    """Edge log + rebuild-to-CSR-before-analytics dynamic store."""

    def __init__(self) -> None:
        self.stats = AccessStats()
        self._log: dict[tuple[int, int], float] = {}
        self._dirty = True
        self._indptr = np.zeros(1, dtype=np.int64)
        self._indices = np.empty(0, dtype=np.int64)
        self._weights = np.empty(0, dtype=np.float64)
        self._srcs = np.empty(0, dtype=np.int64)
        self._n_vertices = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------ #
    # O(1) log updates
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        return len(self._log)

    @property
    def n_vertices(self) -> int:
        return self._n_vertices

    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        src, dst = int(src), int(dst)
        if src < 0 or dst < 0:
            raise ValueError(f"vertex ids must be non-negative, got ({src}, {dst})")
        self.stats.hash_lookups += 1
        self.stats.random_block_reads += 1  # edge-scale log bucket access
        key = (src, dst)
        is_new = key not in self._log
        self._log[key] = float(weight)
        self._dirty = True
        if is_new:
            self.stats.edges_inserted += 1
        self._n_vertices = max(self._n_vertices, src + 1, dst + 1)
        return is_new

    def insert_batch(self, edges: np.ndarray, weights: np.ndarray | None = None) -> int:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        if edges.size and edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        new = 0
        for (s, d), w in zip(edges.tolist(), np.asarray(weights, float).tolist()):
            if self.insert_edge(s, d, w):
                new += 1
        return new

    def delete_edge(self, src: int, dst: int) -> bool:
        self.stats.hash_lookups += 1
        self.stats.random_block_reads += 1  # edge-scale log bucket access
        if self._log.pop((int(src), int(dst)), None) is None:
            return False
        self._dirty = True
        self.stats.edges_deleted += 1
        return True

    def delete_batch(self, edges: np.ndarray) -> int:
        edges = np.asarray(edges, dtype=np.int64)
        return sum(self.delete_edge(s, d) for s, d in edges.tolist())

    def has_edge(self, src: int, dst: int) -> bool:
        self.stats.hash_lookups += 1
        self.stats.random_block_reads += 1
        return (int(src), int(dst)) in self._log

    def edge_weight(self, src: int, dst: int) -> float | None:
        self.stats.hash_lookups += 1
        return self._log.get((int(src), int(dst)))

    # ------------------------------------------------------------------ #
    # the preprocessing pass
    # ------------------------------------------------------------------ #
    def rebuild(self) -> None:
        """Compact the log into CSR (the store-and-static-compute cost).

        Charged as: one sequential read pass over the log, one sequential
        write pass of the CSR arrays, plus ``E log2 E`` cell touches for
        the sort — the canonical preprocessing bill the paper's CAL
        avoids paying per batch.
        """
        e = len(self._log)
        blocks = -(-max(e, 1) // _SCAN_BLOCK)
        self.stats.seq_block_reads += 2 * blocks
        sort_touches = int(e * max(1.0, math.log2(max(e, 2))))
        self.stats.cells_scanned += e * 2 + sort_touches

        if e == 0:
            self._indptr = np.zeros(max(self._n_vertices, 0) + 1, dtype=np.int64)
            self._indices = np.empty(0, dtype=np.int64)
            self._weights = np.empty(0, dtype=np.float64)
            self._srcs = np.empty(0, dtype=np.int64)
        else:
            keys = np.asarray(list(self._log.keys()), dtype=np.int64)
            vals = np.asarray(list(self._log.values()), dtype=np.float64)
            order = np.lexsort((keys[:, 1], keys[:, 0]))
            keys, vals = keys[order], vals[order]
            self._srcs = keys[:, 0]
            self._indices = keys[:, 1]
            self._weights = vals
            counts = np.bincount(self._srcs, minlength=self._n_vertices)
            self._indptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )
        self._dirty = False
        self.rebuilds += 1

    def _fresh(self) -> None:
        if self._dirty:
            self.rebuild()

    # ------------------------------------------------------------------ #
    # analytics retrieval (ideal contiguity)
    # ------------------------------------------------------------------ #
    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        self._fresh()
        e = self._indices.shape[0]
        self.stats.seq_block_reads += -(-max(e, 1) // _SCAN_BLOCK)
        self.stats.cells_scanned += e
        return self._srcs, self._indices, self._weights

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        src = int(src)
        if src >= self._n_vertices:
            raise VertexNotFoundError(src)
        self._fresh()
        lo, hi = int(self._indptr[src]), int(self._indptr[src + 1])
        self.stats.random_block_reads += 1
        self.stats.cells_scanned += hi - lo
        return self._indices[lo:hi], self._weights[lo:hi]

    def degree(self, src: int) -> int:
        src = int(src)
        if src >= self._n_vertices:
            return 0
        self._fresh()
        return int(self._indptr[src + 1] - self._indptr[src])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        src, dst, w = self.analytics_edges()
        for s, d, x in zip(src.tolist(), dst.tolist(), w.tolist()):
            yield s, d, x

    # ------------------------------------------------------------------ #
    # engine surface (repro.core.store protocol subset; no CSR snapshot)
    # ------------------------------------------------------------------ #
    @property
    def analytics_snapshot(self):
        return None

    @property
    def id_translator(self):
        return None

    @property
    def full_load_is_row_sweep(self) -> bool:
        # The full load streams the rebuilt CSR sequentially; the per-row
        # sweep pays random reads instead — different charge shapes.
        return False

    def original_ids(self, dense: np.ndarray) -> np.ndarray:
        return np.asarray(dense, dtype=np.int64)

    def dense_row_count(self) -> int:
        return self._n_vertices

    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        return self.neighbors(row)

    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        from repro.engine.snapshot import gather_active_scalar, sanitize_active

        return gather_active_scalar(self, sanitize_active(active))

    def check_invariants(self) -> None:
        self._fresh()
        assert self._indices.shape[0] == len(self._log)
        assert int(self._indptr[-1]) == len(self._log)
        # per-row slices sorted and consistent with the log
        for s in range(min(self._n_vertices, 64)):
            lo, hi = int(self._indptr[s]), int(self._indptr[s + 1])
            for d in self._indices[lo:hi].tolist():
                assert (s, d) in self._log
