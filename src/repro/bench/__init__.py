"""Benchmark harness: memory-access cost model, metrics, reporting."""

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.metrics import load_stability, throughput
from repro.bench.records import (
    BENCH_RECORD_SCHEMA,
    diff_bench_records,
    list_bench_records,
    load_bench_record,
    make_bench_record,
    validate_bench_record,
    write_bench_record,
)
from repro.bench.reporting import Table

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Table",
    "diff_bench_records",
    "list_bench_records",
    "load_bench_record",
    "load_stability",
    "make_bench_record",
    "throughput",
    "validate_bench_record",
    "write_bench_record",
]
