"""Benchmark harness: memory-access cost model, metrics, reporting."""

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.metrics import load_stability, throughput
from repro.bench.reporting import Table

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Table",
    "load_stability",
    "throughput",
]
