"""The memory-access cost model (the key substitution — DESIGN.md §1).

The paper's performance effects are driven by DRAM access behaviour:
how many block-granularity memory operations an update or an analytics
pass performs, and whether those operations stream contiguously or jump
randomly.  Pure-Python wall-clock cannot reproduce the paper's absolute
Medges/s, but the *counts* of those events are implementation-language-
independent — both our GraphTinker and our STINGER bump identical
counters at identical algorithmic points.  The cost model folds a
counter delta into a scalar "modeled time", from which the harness
derives modeled throughput (edges per modeled second).

Cost coefficients (unitless "access cycles", normalised so one random
block access = 1.0):

* ``random_block`` — a non-contiguous block read/write (chain hop,
  per-vertex gather, branch descent, CAL pointer update).  DRAM row miss.
* ``seq_block`` — the next block of a contiguous stream (CAL full-mode
  streaming).  Row-buffer hit / prefetched: an order of magnitude
  cheaper, consistent with streamed-vs-random DRAM bandwidth ratios.
* ``workblock`` — one Workblock fetch or writeback during updates.
  Workblocks (default 4 cells = 96 B) are cache-line-scale transfers.
* ``cal_update`` — one CAL slot write.  Appends land in the group's
  *tail* block and pointer-updates are single-slot writes, both far more
  temporally local than a chain hop — the paper calls CAL maintenance
  overhead "minimal" precisely because it never traverses edges.
* ``hash_op`` — one Scatter-Gather-Hash probe (cache-resident table).
* ``cell_op`` — CPU cost of inspecting one edge-cell (tiny; included so
  degenerate configurations with huge Workblocks are not free).

The defaults give the qualitative regime the paper measures; benches
that sweep them (``benchmarks/bench_ablation_sgh_cal.py`` prints a
sensitivity row) show the orderings are stable under perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import AccessStats


@dataclass(frozen=True)
class CostModel:
    """Linear model: modeled time = <coefficients, counter deltas>."""

    random_block: float = 1.0
    seq_block: float = 0.1
    workblock: float = 0.25
    cal_update: float = 0.25
    hash_op: float = 0.02
    cell_op: float = 0.01

    def cost(self, stats: AccessStats) -> float:
        """Modeled time (access-cycles) of a counter delta."""
        return (
            self.random_block * (stats.random_block_reads + stats.branch_descents)
            + self.seq_block * stats.seq_block_reads
            + self.workblock * (stats.workblock_fetches + stats.workblock_writebacks)
            + self.cal_update * stats.cal_updates
            + self.hash_op * stats.hash_lookups
            + self.cell_op * stats.cells_scanned
        )

    def hybrid_threshold(
        self,
        pagewidth: int = 64,
        cal_block_size: int = 64,
        blocks_per_vertex: float = 1.2,
    ) -> float:
        """Break-even T = A/E between IP and FP under this cost model.

        The paper calibrated its threshold (0.02) with separate
        sequential-vs-random retrieval experiments on its Xeon testbed
        (Sec. IV.B); this is the same calibration done analytically for
        the access-cost substrate:

        * one FP iteration costs, per edge, one sequential block read
          amortised over ``cal_block_size`` slots plus one slot
          inspection (the CAL chains are kept dense);
        * one IP iteration costs, per active vertex,
          ``blocks_per_vertex`` random block reads, each inspecting
          ``pagewidth`` slots.

        Equating the two yields the A/E ratio at which the modes tie.
        """
        fp_per_edge = self.cell_op + self.seq_block / cal_block_size
        ip_per_vertex = blocks_per_vertex * (self.random_block + pagewidth * self.cell_op)
        return fp_per_edge / ip_per_vertex

    def hybrid_threshold_degree(
        self,
        avg_degree: float,
        pagewidth: int = 64,
        cal_block_size: int = 64,
        blocks_per_vertex: float = 1.2,
    ) -> float:
        """Break-even for the *degree* predictor, T' = D / E.

        D (the active vertices' total out-degree) is exactly the edge
        count an IP iteration loads, so the break-even is the ratio
        threshold scaled by the average degree: a frontier of D edges
        spread over D/avg_degree vertices costs what A = D/avg_degree
        vertices cost under the ratio analysis.
        """
        return avg_degree * self.hybrid_threshold(
            pagewidth, cal_block_size, blocks_per_vertex
        )

    def throughput(self, n_edges: int, stats: AccessStats) -> float:
        """Modeled throughput: edges per mega-access-cycle.

        The unit is arbitrary but consistent across systems, so ratios
        (GraphTinker vs STINGER, FP vs IP) are directly comparable with
        the paper's Medges/s ratios.
        """
        c = self.cost(stats)
        if c <= 0:
            return float("inf") if n_edges else 0.0
        return n_edges / c


#: The model used by every bench unless a sweep overrides it.
DEFAULT_COST_MODEL = CostModel()
