"""Figure-data export: turn bench series into plot-ready CSV files.

The benches print fixed-width tables; users who want to re-draw the
paper's figures need machine-readable series.  :class:`FigureData`
collects named series with a shared x-axis and writes CSV (no plotting
dependency is installed in this environment, so rendering is left to the
consumer — any spreadsheet or matplotlib one-liner).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence


@dataclass
class FigureData:
    """One figure's worth of series sharing an x-axis.

    >>> fig = FigureData("fig08", "input batches", "modeled throughput")
    >>> fig.set_x([0, 1, 2])
    >>> fig.add_series("GraphTinker", [3.0, 2.9, 2.8])
    >>> text = fig.to_csv_text()
    """

    name: str
    x_label: str
    y_label: str
    x: list[object] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def set_x(self, values: Sequence[object]) -> None:
        self.x = list(values)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        values = list(values)
        if self.x and len(values) != len(self.x):
            raise ValueError(
                f"series {label!r} has {len(values)} points but the x-axis "
                f"has {len(self.x)}"
            )
        if label in self.series:
            raise ValueError(f"duplicate series label {label!r}")
        self.series[label] = values

    def to_csv_text(self) -> str:
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([self.x_label] + list(self.series))
        for i, x in enumerate(self.x):
            writer.writerow([x] + [self.series[s][i] for s in self.series])
        return buf.getvalue()

    def write(self, directory: str | Path) -> Path:
        """Write ``<directory>/<name>.csv``; returns the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.csv"
        path.write_text(self.to_csv_text())
        return path


def export_insertion_figure(
    directory: str | Path,
    dataset: str = "hollywood_like",
    n_batches: int = 8,
) -> Path:
    """Regenerate Fig. 8's series and write them as CSV.

    Convenience wrapper so ``python -c`` one-liners (or the docs) can
    produce plot data without going through pytest.
    """
    from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
    from repro.bench.harness import insertion_run, make_store
    from repro.workloads import load_dataset
    from repro.workloads.streams import EdgeStream

    _, edges = load_dataset(dataset)
    edges = edges[: min(edges.shape[0], 48_000)]
    fig = FigureData("fig08_insertion", "batch", "modeled throughput")
    fig.set_x(list(range(n_batches)))
    for label, kind in (("GT+CAL", "graphtinker"), ("GT-noCAL", "gt_nocal"),
                        ("STINGER", "stinger")):
        stream = EdgeStream(edges, max(1, edges.shape[0] // n_batches))
        store = make_store(kind)
        ms = insertion_run(store, stream)
        fig.add_series(label, [m.modeled_throughput(MODEL) for m in ms[:n_batches]])
    return fig.write(directory)
