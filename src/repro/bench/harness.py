"""Experiment drivers shared by the per-figure benchmark files.

Each function reproduces one experimental *protocol* from the paper's
evaluation (Sec. V): batched insertion, batched deletion, analytics-
after-every-batch, multicore partitioned insertion, and the
update/analytics-ratio sweep.  The per-figure files under ``benchmarks/``
parameterise these drivers with the paper's datasets and knobs and print
the resulting rows.

Every driver returns both wall-clock and cost-model measurements; the
modeled numbers are the primary reproduction metric (see DESIGN.md §1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.metrics import BatchMeasurement, run_batched
from repro.core.config import (
    GTConfig,
    ShardedConfig,
    StingerConfig,
    TieredConfig,
)
from repro.core.stats import AccessStats
from repro.core.store import create_store
from repro.engine.hybrid import ComputeResult, HybridEngine
from repro.engine.gas import GASProgram
from repro.workloads.streams import EdgeStream


def make_store(kind: str, gt_config: GTConfig | None = None,
               stinger_config: StingerConfig | None = None,
               kernel: str | None = None,
               snapshot: bool | None = None,
               tiered_config: TieredConfig | None = None,
               sharded_config: ShardedConfig | None = None):
    """Build a store by registry name: ``"graphtinker"``, ``"gt_nocal"``,
    ``"gt_nosgh"``, ``"gt_plain"`` (both off), ``"stinger"``,
    ``"tiered"``, ``"sharded"`` — see
    :func:`repro.core.store.backend_names`.

    Thin wrapper over :func:`repro.core.store.create_store` keeping the
    historical per-family config keywords.  ``kernel`` overrides the
    batch-ingest kernel of the GraphTinker kinds
    (``"scalar"``/``"vector"``); ``snapshot`` attaches the CSR analytics
    snapshot (every kind).  Neither ever changes any modeled number,
    only wall-clock speed.
    """
    if kind == "stinger":
        config = stinger_config
    elif kind == "tiered":
        config = tiered_config
    elif kind == "sharded":
        config = sharded_config
    else:
        config = gt_config
    return create_store(kind, config, kernel=kernel, snapshot=snapshot)


# --------------------------------------------------------------------- #
# insertion / deletion protocols (Figs. 8, 9, 14, 17)
# --------------------------------------------------------------------- #
def insertion_run(store, stream: EdgeStream) -> list[BatchMeasurement]:
    """Insert every batch of ``stream``; measure each batch.

    With :mod:`repro.obs` enabled, every batch lands in the trace tree as
    an ``insert_batch`` span whose stats delta matches the measurement's.
    """
    return run_batched(
        list(stream.insert_batches()), store.insert_batch, store.stats,
        span_name="insert_batch",
    )


def deletion_run(store, stream: EdgeStream, seed: int | None = 0) -> list[BatchMeasurement]:
    """Delete the stream's edges batch-by-batch from a loaded store."""
    return run_batched(
        list(stream.delete_batches(seed)), store.delete_batch, store.stats,
        span_name="delete_batch",
    )


# --------------------------------------------------------------------- #
# analytics protocols (Figs. 11-13, 15, 16, 18)
# --------------------------------------------------------------------- #
@dataclass
class AnalyticsMeasurement:
    """One analytics pass over the current graph.

    ``graph_edges`` is the live edge count at measurement time; modeled
    throughput is TEPS-style — graph edges per unit modeled time — so
    engines doing *redundant* work (full mode re-streams every edge each
    iteration) pay for it in the denominator rather than being credited
    for it in the numerator.  ``edges_processed`` (total edges loaded
    across iterations, redundancy included) is kept for work accounting.
    """

    label: str
    graph_edges: int
    edges_processed: int
    wall_seconds: float
    stats_delta: AccessStats
    iterations: int = 0
    modes: list[str] = field(default_factory=list)

    def modeled_throughput(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.throughput(self.graph_edges, self.stats_delta)

    @property
    def wall_throughput(self) -> float:
        return self.graph_edges / self.wall_seconds if self.wall_seconds > 0 else 0.0


def analytics_after_each_batch(
    store,
    stream: EdgeStream,
    program_factory: Callable[[], GASProgram],
    policy: str,
    roots: Sequence[int] | None = None,
    weights: np.ndarray | None = None,
    engine_kwargs: dict | None = None,
) -> list[AnalyticsMeasurement]:
    """The Figs. 11-13 protocol.

    Batches are loaded in turn; after each batch the engine re-runs the
    algorithm on the current graph from a fresh analysis state (the paper
    runs "the given graph analytics algorithm on the current state of the
    graph" after each batch).  Incremental/hybrid policies still benefit
    inside the run: the per-iteration frontier shrinks as the fixed point
    nears, which is exactly where IP wins.
    """
    out: list[AnalyticsMeasurement] = []
    offset = 0
    for i, batch in enumerate(stream.insert_batches()):
        if weights is not None:
            store.insert_batch(batch, weights[offset : offset + batch.shape[0]])
        else:
            store.insert_batch(batch)
        offset += batch.shape[0]
        program = program_factory()
        engine = HybridEngine(store, program, policy=policy, **(engine_kwargs or {}))
        engine.reset(roots=np.asarray(roots if roots is not None else [], dtype=np.int64))
        engine.mark_inconsistent(batch)
        before = store.stats.snapshot()
        t0 = time.perf_counter()
        result = engine.compute()
        elapsed = time.perf_counter() - t0
        out.append(
            AnalyticsMeasurement(
                label=f"batch{i}",
                graph_edges=store.n_edges,
                edges_processed=result.edges_processed,
                wall_seconds=elapsed,
                stats_delta=store.stats.delta(before),
                iterations=result.n_iterations,
                modes=result.modes_used(),
            )
        )
    return out


def analytics_once(
    store,
    program_factory: Callable[[], GASProgram],
    policy: str,
    roots: Sequence[int] | None = None,
    seed_batch: np.ndarray | None = None,
) -> AnalyticsMeasurement:
    """One from-scratch analytics pass on the store's current graph."""
    program = program_factory()
    engine = HybridEngine(store, program, policy=policy)
    engine.reset(roots=np.asarray(roots if roots is not None else [], dtype=np.int64))
    if seed_batch is not None and seed_batch.size:
        engine.mark_inconsistent(seed_batch)
    before = store.stats.snapshot()
    t0 = time.perf_counter()
    result = engine.compute()
    elapsed = time.perf_counter() - t0
    return AnalyticsMeasurement(
        label=policy,
        graph_edges=store.n_edges,
        edges_processed=result.edges_processed,
        wall_seconds=elapsed,
        stats_delta=store.stats.delta(before),
        iterations=result.n_iterations,
        modes=result.modes_used(),
    )


# --------------------------------------------------------------------- #
# multicore protocol (Fig. 10)
# --------------------------------------------------------------------- #
@dataclass
class ParallelBatchMeasurement:
    """One batch across partitions: makespan = slowest partition.

    ``wall_seconds`` is the *measured* wall-clock of the whole batch on
    whatever execution path produced it — serial (or GIL-serialized
    threads) for :class:`~repro.core.parallel.PartitionedStore`, truly
    parallel worker processes for
    :class:`~repro.core.sharded.ShardedStore`.  Keep it separate from
    the modeled makespan when reporting: the modeled number is the
    paper's multicore claim, the wall number is what this host did.
    """

    batch_index: int
    n_edges: int
    per_partition: list[AccessStats]
    wall_seconds: float = 0.0

    def makespan_cost(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return max((model.cost(s) for s in self.per_partition), default=0.0)

    def modeled_throughput(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        c = self.makespan_cost(model)
        return self.n_edges / c if c > 0 else float("inf")

    @property
    def wall_throughput(self) -> float:
        """Measured edges/second (0 when the batch was too fast to time)."""
        return self.n_edges / self.wall_seconds if self.wall_seconds > 0 else 0.0


def parallel_insertion_run(
    store, stream: EdgeStream
) -> list[ParallelBatchMeasurement]:
    """Insert batches through a partition-parallel store (Sec. III.D).

    Each batch's parallel time is the maximum of the per-partition
    modeled costs — the critical path of independent instances.  Accepts
    both :class:`~repro.core.parallel.PartitionedStore` (whose
    ``insert_batch`` returns the per-partition deltas) and
    :class:`~repro.core.sharded.ShardedStore` (which returns a count and
    exposes the deltas as ``last_batch_partitions``); both charge the
    identical per-partition stats, so the modeled makespan is
    path-independent while ``wall_seconds`` reflects the actual
    execution (serial vs. process-parallel).
    """
    out: list[ParallelBatchMeasurement] = []
    for i, batch in enumerate(stream.insert_batches()):
        t0 = time.perf_counter()
        deltas = store.insert_batch(batch)
        wall = time.perf_counter() - t0
        if not isinstance(deltas, list):  # ShardedStore returns a count
            deltas = list(store.last_batch_partitions)
        out.append(
            ParallelBatchMeasurement(
                batch_index=i, n_edges=int(batch.shape[0]),
                per_partition=deltas, wall_seconds=wall,
            )
        )
    return out
