"""Derived benchmark metrics: throughput series and load stability.

These implement the figures-of-merit the paper reports alongside raw
throughput: per-batch throughput series (Figs. 8, 14, 17), load
stability (the Sec. V.B "34% vs 72% degradation" comparison), and
speedup summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.stats import AccessStats
from repro.obs.tracing import span as obs_span


def throughput(n_edges: int, seconds: float) -> float:
    """Plain wall-clock throughput (edges/second)."""
    return n_edges / seconds if seconds > 0 else float("inf")


def load_stability(series: Sequence[float], reference_index: int = 4) -> float:
    """Throughput degradation between a reference batch and the last.

    The paper quotes degradation "between the fifth input batch and the
    last batch" for Fig. 8 — ``reference_index`` defaults to 4
    accordingly (clamped for short series).  Returns a fraction in
    [0, 1+) where 0.34 means 34% degradation.

    Accepts any iterable of floats (lists, tuples, numpy arrays,
    generators).  Series with fewer than two batches have no
    reference-to-last gap to measure and degrade by definition 0.
    """
    series = [float(x) for x in series]
    if len(series) < 2:
        return 0.0
    ref = series[max(0, min(reference_index, len(series) - 2))]
    last = series[-1]
    if ref <= 0:
        return 0.0
    return max(0.0, (ref - last) / ref)


@dataclass
class BatchMeasurement:
    """One batch's worth of measurements in a batched run."""

    batch_index: int
    n_edges: int
    wall_seconds: float
    stats_delta: AccessStats

    def modeled_throughput(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return model.throughput(self.n_edges, self.stats_delta)

    @property
    def wall_throughput(self) -> float:
        return throughput(self.n_edges, self.wall_seconds)


def run_batched(
    batches: Sequence[np.ndarray],
    apply_batch: Callable[[np.ndarray], object],
    stats: AccessStats,
    span_name: str = "batch",
) -> list[BatchMeasurement]:
    """Apply batches through ``apply_batch``, measuring each.

    ``stats`` is the live counter object of the system under test; a
    snapshot/delta pair brackets each batch so per-batch modeled
    throughput can be derived.  When :mod:`repro.obs` is enabled, each
    batch is additionally recorded as one ``span_name`` span carrying the
    same delta.
    """
    out: list[BatchMeasurement] = []
    for i, batch in enumerate(batches):
        with obs_span(span_name, stats=stats, batch=i):
            before = stats.snapshot()
            t0 = time.perf_counter()
            apply_batch(batch)
            elapsed = time.perf_counter() - t0
        out.append(
            BatchMeasurement(
                batch_index=i,
                n_edges=int(np.asarray(batch).shape[0]),
                wall_seconds=elapsed,
                stats_delta=stats.delta(before),
            )
        )
    return out


def speedup(series_a: Sequence[float], series_b: Sequence[float]) -> tuple[float, float]:
    """(max, mean) ratio of a over b, elementwise (a and b same length)."""
    a = np.asarray(series_a, dtype=np.float64)
    b = np.asarray(series_b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("series must be non-empty and equal length")
    ratios = a / np.maximum(b, 1e-30)
    return float(ratios.max()), float(ratios.mean())
