"""Standardized benchmark records: the perf-trajectory file format.

Every benchmark that matters for the reproduction's performance story
can emit one ``BENCH_<name>.json`` record per run — a small, schema-
versioned JSON document carrying the bench name, its configuration, the
repro version, wall/modeled throughput, and latency quantiles.  Records
from two checkouts (or two configurations) are then diffable with
``python -m repro report --baseline A.json --current B.json``, which is
how CI and humans catch a perf regression before it ships.

Schema (``repro-bench-record/v1``)::

    {
      "schema": "repro-bench-record/v1",
      "bench": "<name>",                  # [a-zA-Z0-9_.-]+
      "repro_version": "1.0.0",
      "created_at": 1754550000.0,         # unix seconds
      "config": {...},                    # free-form, JSON-scalar values
      "metrics": {                        # flat name -> float
        "wall_s": ...,
        "modeled_throughput": ...,
        "throughput_edges_per_s": ...,
        "latency_ms_p50": ..., "latency_ms_p90": ..., "latency_ms_p99": ...
      }
    }

Only ``schema``, ``bench``, ``repro_version``, ``created_at``,
``config`` and ``metrics`` are required; ``metrics`` may hold any flat
float mapping.  Latency arrays passed to :func:`make_bench_record` are
reduced to quantiles through the shared
:class:`~repro.obs.quantiles.QuantileSketch` (exact mode).

``REPRO_BENCH_RECORD_DIR`` selects where :func:`write_bench_record`
lands its files (default: the current directory).
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

import numpy as np

BENCH_RECORD_SCHEMA = "repro-bench-record/v1"
BENCH_RECORD_PREFIX = "BENCH_"
BENCH_RECORD_SUFFIX = ".json"

#: Environment variable selecting the default output directory.
RECORD_DIR_ENV = "REPRO_BENCH_RECORD_DIR"

_NAME_RE = re.compile(r"^[a-zA-Z0-9_.-]+$")

#: The quantiles a latency array is reduced to.
_LATENCY_QUANTILES = (0.5, 0.9, 0.99)


def make_bench_record(bench: str, *,
                      config: dict | None = None,
                      wall_s: float | None = None,
                      modeled_throughput: float | None = None,
                      throughput_edges_per_s: float | None = None,
                      latency_ms=None,
                      metrics: dict | None = None) -> dict:
    """Build one schema-valid bench record.

    ``latency_ms`` may be an array of per-batch/per-op latencies; it is
    reduced to ``latency_ms_p50/p90/p99`` (exact quantiles via the
    shared sketch).  ``metrics`` merges extra flat float metrics in.
    """
    from repro import __version__
    from repro.obs.quantiles import QuantileSketch, quantile_key

    if not _NAME_RE.match(bench):
        raise ValueError(f"bench name {bench!r} must match {_NAME_RE.pattern}")
    out_metrics: dict[str, float] = {}
    if wall_s is not None:
        out_metrics["wall_s"] = float(wall_s)
    if modeled_throughput is not None:
        out_metrics["modeled_throughput"] = float(modeled_throughput)
    if throughput_edges_per_s is not None:
        out_metrics["throughput_edges_per_s"] = float(throughput_edges_per_s)
    if latency_ms is not None:
        arr = np.asarray(latency_ms, dtype=np.float64).ravel()
        if arr.size:
            sketch = QuantileSketch.from_array(arr)
            for q in _LATENCY_QUANTILES:
                out_metrics[f"latency_ms_{quantile_key(q)}"] = sketch.quantile(q)
    if metrics:
        for key, value in metrics.items():
            out_metrics[str(key)] = float(value)
    record = {
        "schema": BENCH_RECORD_SCHEMA,
        "bench": bench,
        "repro_version": __version__,
        "created_at": time.time(),
        "config": dict(config) if config else {},
        "metrics": out_metrics,
    }
    validate_bench_record(record)
    return record


def validate_bench_record(record: dict) -> dict:
    """Raise ``ValueError`` unless ``record`` is schema-valid; return it."""
    if not isinstance(record, dict):
        raise ValueError("bench record must be a JSON object")
    if record.get("schema") != BENCH_RECORD_SCHEMA:
        raise ValueError(
            f"bench record schema {record.get('schema')!r} != "
            f"{BENCH_RECORD_SCHEMA!r}")
    bench = record.get("bench")
    if not isinstance(bench, str) or not _NAME_RE.match(bench):
        raise ValueError(f"bench record has invalid bench name {bench!r}")
    if not isinstance(record.get("repro_version"), str):
        raise ValueError("bench record missing repro_version")
    if not isinstance(record.get("created_at"), (int, float)):
        raise ValueError("bench record missing created_at timestamp")
    if not isinstance(record.get("config"), dict):
        raise ValueError("bench record config must be an object")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("bench record needs a non-empty metrics object")
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"metric {key!r} must be a number, got {value!r}")
    return record


def record_path(bench: str, directory: str | Path | None = None) -> Path:
    """``<dir>/BENCH_<bench>.json`` (dir defaults per :data:`RECORD_DIR_ENV`)."""
    if directory is None:
        directory = os.environ.get(RECORD_DIR_ENV, ".")
    return Path(directory) / f"{BENCH_RECORD_PREFIX}{bench}{BENCH_RECORD_SUFFIX}"


def write_bench_record(record: dict,
                       directory: str | Path | None = None) -> Path:
    """Validate and write ``record`` to its canonical path; return it."""
    validate_bench_record(record)
    path = record_path(record["bench"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_record(path: str | Path) -> dict:
    """Read and validate one record file."""
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: unreadable bench record ({exc})") from exc
    try:
        return validate_bench_record(record)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def list_bench_records(directory: str | Path) -> list[Path]:
    """``BENCH_*.json`` files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.iterdir()
                  if p.name.startswith(BENCH_RECORD_PREFIX)
                  and p.name.endswith(BENCH_RECORD_SUFFIX))


# --------------------------------------------------------------------- #
# regression diffing
# --------------------------------------------------------------------- #
#: Metrics where *larger* is better; everything else is treated as a
#: latency-like metric where larger is worse.
_HIGHER_IS_BETTER = ("throughput", "edges_per_s", "speedup", "hit_rate")

#: Metrics that are unambiguously lower-is-better even when their name
#: also matches a higher-is-better tag (e.g. ``staleness_lag_edges_per_s``
#: would substring-match ``edges_per_s``): replication lag, staleness,
#: and per-error-code counts.  Checked first.
_LOWER_IS_BETTER = ("lag", "staleness", "err_")


def _higher_is_better(metric: str) -> bool:
    if any(tag in metric for tag in _LOWER_IS_BETTER):
        return False
    return any(tag in metric for tag in _HIGHER_IS_BETTER)


def diff_bench_records(baseline: dict, current: dict,
                       threshold: float = 0.10) -> list[dict]:
    """Compare two records of the same bench, metric by metric.

    Returns one row per metric present in both:
    ``{metric, baseline, current, ratio, change, verdict}`` where
    ``ratio = current / baseline`` and ``verdict`` is ``"regression"``
    when the metric moved the *bad* direction by more than ``threshold``
    (relative), ``"improvement"`` for the good direction, ``"ok"``
    otherwise.  Metrics only one side has are reported with
    ``verdict="missing"``.
    """
    if baseline.get("bench") != current.get("bench"):
        raise ValueError(
            f"cannot diff different benches: {baseline.get('bench')!r} vs "
            f"{current.get('bench')!r}")
    rows: list[dict] = []
    base_m, cur_m = baseline["metrics"], current["metrics"]
    for metric in sorted(set(base_m) | set(cur_m)):
        if metric not in base_m or metric not in cur_m:
            rows.append({"metric": metric,
                         "baseline": base_m.get(metric),
                         "current": cur_m.get(metric),
                         "ratio": None, "change": None,
                         "verdict": "missing"})
            continue
        base, cur = float(base_m[metric]), float(cur_m[metric])
        if base == 0.0:
            ratio = float("inf") if cur > 0 else 1.0
        else:
            ratio = cur / base
        change = ratio - 1.0
        if _higher_is_better(metric):
            bad, good = change < -threshold, change > threshold
        else:
            bad, good = change > threshold, change < -threshold
        verdict = "regression" if bad else "improvement" if good else "ok"
        rows.append({"metric": metric, "baseline": base, "current": cur,
                     "ratio": ratio, "change": change, "verdict": verdict})
    return rows


def has_regressions(rows: list[dict]) -> bool:
    return any(row["verdict"] == "regression" for row in rows)
