"""Plain-text table/series reporting for the benchmark harness.

Every bench prints the same rows/series the paper's corresponding table
or figure reports, via :class:`Table` — fixed-width, aligned, greppable
output that also lands in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """Minimal fixed-width table printer.

    >>> t = Table("demo", ["x", "y"])
    >>> t.add_row([1, 2.5])
    >>> text = t.render()
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}"
        return str(value)

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


def fmt_ratio(a: float, b: float) -> str:
    """Human ratio string, e.g. ``2.7x``; guards division by ~0."""
    if b <= 0:
        return "inf"
    return f"{a / b:.2f}x"
