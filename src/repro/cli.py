"""Command-line interface: ``python -m repro <command>``.

Gives shell access to the library's main workflows without writing code:

* ``datasets`` — print the Table 1 registry at the active scale.
* ``generate`` — write a scaled dataset (or raw RMAT) to an edge-list file.
* ``load`` — batch-insert a dataset into GraphTinker and/or STINGER and
  report per-batch modeled throughput (a Fig. 8-style run).
* ``analytics`` — load a dataset and run BFS/SSSP/CC/PageRank through the
  hybrid engine under a chosen policy.
* ``probe`` — print the probe-distance comparison (the O(log n) claim).
* ``trace`` — run a small traced load+BFS with :mod:`repro.obs` enabled
  and dump the span tree / metric exports.
* ``serve`` — drive an RMAT stream through the durable
  :class:`~repro.service.GraphService` (WAL + checkpoints), optionally
  killing the writer mid-stream (``--kill-at``) and resuming a crashed
  run (``--resume``).
* ``recover`` — rebuild a service directory's store from its latest
  checkpoint plus the WAL tail; report what was replayed.
* ``fsck`` — recover a service directory and audit the rebuilt store's
  structural invariants (:mod:`repro.core.verify`); ``--repair``
  self-heals, ``--corrupt N`` injects damage first (chaos testing).
* ``top`` — live in-terminal service dashboard: drives an RMAT stream
  through a temporary GraphService with the metrics sampler on and
  renders the time-series ring as sparklines (``--once`` prints a single
  frame for CI).
* ``serve-net`` — host a service directory over TCP: the asyncio
  :class:`~repro.net.server.GraphServer` speaking the length-prefixed
  frame protocol (docs/network.md), mutations ticketed through the WAL,
  reads served lock-free from the CSR snapshot.
* ``serve-replica`` — host a WAL-shipping read replica of a running
  ``serve-net``: pulls the writer's WAL over the wire, applies it to a
  local durable copy, and serves the read ops with staleness metadata.
* ``loadgen`` — drive a running ``serve-net`` with closed-loop client
  workers at a configurable read:write mix; prints the sustained op
  rates and writes a ``BENCH_net_serve.json`` record.  ``--replicas``
  routes reads over replicas with automatic failover.
* ``report`` — diff two standardized ``BENCH_*.json`` records
  (``--baseline`` vs ``--current``); exits 1 on a perf regression.
* ``blackbox`` — read a flight-recorder post-mortem dump (or list the
  dumps in a service directory).

Every command accepts ``--edges`` to bound run time and ``--log-level``
to control :mod:`repro.obs.log` verbosity.

Exit codes are uniform across subcommands: **0** success, **1** any
repro-domain failure (:class:`~repro.errors.ReproError`, including a
simulated ``serve --kill-at`` crash), **2** usage errors (argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.errors import ReproError, WorkloadError
from repro.bench.costmodel import DEFAULT_COST_MODEL as MODEL
from repro.bench.harness import insertion_run, make_store
from repro.bench.reporting import Table
from repro.core.probes import graphtinker_probe_summary, stinger_probe_summary
from repro.core.store import store_digest
from repro.engine import HybridEngine
from repro.engine.algorithms import BFS, SSSP, ConnectedComponents, PageRank
from repro.obs.log import LEVELS, configure_logging, get_logger, kv
from repro.workloads import load_dataset, rmat_edges
from repro.workloads.datasets import DATASET_ORDER, dataset_properties
from repro.workloads.io import write_edge_list
from repro.workloads.streams import EdgeStream, highest_degree_roots, symmetrize

log = get_logger("cli")

_ALGORITHMS = {
    "bfs": (BFS, False, True),
    "sssp": (SSSP, False, True),
    "cc": (ConnectedComponents, True, False),
    "pagerank": (PageRank, False, False),
}


def _edges_for(args) -> np.ndarray:
    _, edges = load_dataset(args.dataset)
    if args.edges:
        edges = edges[: args.edges]
    return edges


def cmd_datasets(args) -> int:
    table = Table(
        "Table 1 datasets (scaled)",
        ["name", "type", "paper |V|", "paper |E|", "scaled |V|", "scaled |E|", "avg deg"],
    )
    for name in DATASET_ORDER:
        row = dataset_properties(name)
        table.add_row([row["name"], row["type"], row["paper_vertices"],
                       row["paper_edges"], row["scaled_vertices"],
                       row["scaled_edges"], row["avg_out_degree"]])
    table.print()
    return 0


def cmd_generate(args) -> int:
    if args.dataset:
        edges = _edges_for(args)
    else:
        edges = rmat_edges(args.scale, args.edges or 10_000, seed=args.seed)
    write_edge_list(args.output, edges)
    print(f"wrote {edges.shape[0]} edges to {args.output}")
    return 0


def cmd_load(args) -> int:
    edges = _edges_for(args)
    stream = EdgeStream(edges, max(1, edges.shape[0] // args.batches))
    table = Table(
        f"insertion throughput: {args.dataset} ({edges.shape[0]} edges, "
        f"{stream.n_batches} batches, kernel={args.kernel})",
        ["system"] + [f"batch{i}" for i in range(stream.n_batches)],
    )
    report: dict = {
        "dataset": args.dataset,
        "edges": int(edges.shape[0]),
        "batches": stream.n_batches,
        "kernel": args.kernel,
        "systems": [],
    }
    for kind in args.systems:
        sharded_config = None
        if kind == "sharded":
            from repro.core.config import ShardedConfig

            sharded_config = ShardedConfig(n_shards=max(1, args.shards))
        store = make_store(kind, kernel=args.kernel,
                           sharded_config=sharded_config)
        ms = insertion_run(store, EdgeStream(edges, stream.batch_size))
        log.info(kv("insertion run finished", system=kind,
                    edges=store.n_edges,
                    block_accesses=store.stats.total_block_accesses))
        table.add_row([kind] + [m.modeled_throughput(MODEL) for m in ms])
        report["systems"].append({
            "system": kind,
            "kernel": None if kind in ("stinger", "tiered", "sharded")
            else args.kernel,
            "shards": args.shards if kind == "sharded" else None,
            "modeled_throughput": [m.modeled_throughput(MODEL) for m in ms],
            "wall_seconds": [m.wall_seconds for m in ms],
            "final_edges": int(store.n_edges),
            "block_accesses": int(store.stats.total_block_accesses),
            # Canonical content digest: every backend loading the same
            # stream must agree here (CI diffs tiered against graphtinker,
            # and a 4-shard load against a 1-shard one).
            "digest": store_digest(store),
        })
        closer = getattr(store, "close", None)
        if closer is not None:
            closer()
    table.print()
    if args.json:
        import json

        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote JSON report to {args.json}")
    return 0


def cmd_analytics(args) -> int:
    program_cls, undirected, needs_root = _ALGORITHMS[args.algorithm]
    edges = _edges_for(args)
    if undirected:
        edges = symmetrize(edges)
    store = make_store(args.system, snapshot=args.snapshot)
    store.insert_batch(edges)
    engine = HybridEngine(store, program_cls(), policy=args.policy)
    root = None
    if needs_root:
        root = int(highest_degree_roots(edges, 1)[0])
        engine.reset(roots=[root])
        print(f"root vertex: {root}")
    else:
        engine.reset()
        engine.mark_inconsistent(edges)
        if args.algorithm == "pagerank":
            engine._active = np.arange(engine.values.shape[0])
    before = store.stats.snapshot()
    result = engine.compute()
    delta = store.stats.delta(before)
    log.info(kv("analytics finished", algorithm=args.algorithm,
                iterations=result.n_iterations))
    print(f"{args.algorithm} on {args.dataset} via {args.system} [{args.policy}]"
          f"{' +snapshot' if args.snapshot else ''}:")
    print(f"  iterations: {result.n_iterations}  modes: {result.modes_used()}")
    print(f"  modeled throughput: {MODEL.throughput(store.n_edges, delta):.3f} "
          f"edges/access-cycle")
    finite = np.isfinite(engine.values)
    print(f"  vertices with a result: {int(finite.sum())}")
    if args.json:
        # Everything a snapshot-on/off equivalence check needs: the
        # modeled access deltas, the per-iteration trace, and a digest of
        # the full property vector.  Only the "snapshot" key may differ
        # between a --snapshot and a plain run (CI diffs the rest).
        import hashlib
        import json

        report = {
            "dataset": args.dataset,
            "algorithm": args.algorithm,
            "system": args.system,
            "policy": args.policy,
            "snapshot": bool(args.snapshot),
            "root": root,
            "iterations": result.n_iterations,
            "modes": result.modes_used(),
            "edges_processed": result.edges_processed,
            "trace": [
                {"mode": r.mode, "n_active": r.n_active,
                 "edges_processed": r.edges_processed,
                 "n_changed": r.n_changed,
                 "stats": r.stats_delta.as_dict()}
                for r in result.iterations
            ],
            "stats": delta.as_dict(),
            "finite_vertices": int(finite.sum()),
            "values_sha256": hashlib.sha256(
                np.ascontiguousarray(engine.values).tobytes()).hexdigest(),
        }
        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote JSON report to {args.json}")
    return 0


def cmd_figures(args) -> int:
    from repro.bench.export import export_insertion_figure

    path = export_insertion_figure(args.output_dir, dataset=args.dataset,
                                   n_batches=args.batches)
    print(f"wrote {path}")
    print("(run `pytest benchmarks/ --benchmark-only` for every table/figure)")
    return 0


def cmd_trace(args) -> int:
    """Traced load + BFS: the observability subsystem's show-and-tell.

    Enables :mod:`repro.obs`, batch-inserts a slice of the dataset (one
    ``insert_batch`` span per batch), runs BFS through the hybrid engine
    (one ``engine.<mode>`` span per iteration), then prints the span
    tree, the metrics table, and a cross-check that the per-span
    ``AccessStats`` deltas sum to the store's own totals.
    """
    edges = _edges_for(args)
    stream = EdgeStream(edges, max(1, edges.shape[0] // args.batches))
    store = make_store(args.system)
    tracer = obs.get_tracer()
    tracer.reset()
    obs.get_registry().reset()
    obs.enable()
    try:
        with obs.span("trace", stats=store.stats, dataset=args.dataset,
                      system=args.system):
            log.info(kv("traced load starting", dataset=args.dataset,
                        edges=edges.shape[0], batches=stream.n_batches))
            insertion_run(store, stream)
            engine = HybridEngine(store, BFS(), policy="hybrid")
            root = int(highest_degree_roots(edges, 1)[0])
            engine.reset(roots=[root])
            log.info(kv("traced BFS starting", root=root))
            engine.compute()
    finally:
        obs.disable()

    roots = tracer.roots
    print(obs.render_span_tree(roots))
    obs.registry_to_table(obs.get_registry()).print()

    child_sum = sum((span.merged_delta() for span in roots[0].children),
                    start=type(store.stats)())
    total = roots[0].stats_delta
    line = (f"span-delta cross-check: children sum "
            f"{child_sum.total_block_accesses} block accesses, "
            f"store total {total.total_block_accesses}")
    print(line)
    if child_sum.as_dict() != total.as_dict():
        print("WARNING: span deltas do not sum to store totals")
        return 1

    for path, render, what in (
        (args.jsonl, lambda: obs.trace_to_jsonl(roots), "trace JSONL"),
        (args.prometheus,
         lambda: obs.registry_to_prometheus(obs.get_registry()),
         "Prometheus metrics"),
    ):
        if path:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(render())
            print(f"wrote {what} to {path}")
    return 0


def cmd_serve(args) -> int:
    """Durable-service driver: RMAT stream -> GraphService (WAL-backed).

    The input stream is fully determined by ``--scale/--edges/--seed``,
    and every WAL record carries the cumulative input-row count, so a
    killed run (real or ``--kill-at``-simulated) resumes exactly where
    its durable prefix ended: ``--resume`` recovers, skips the consumed
    prefix, and feeds the rest.
    """
    # The service layer is imported lazily: plain bench/trace invocations
    # never load it (ROADMAP: nothing new on the hot path).
    from repro.service import FaultInjector, GraphService, SimulatedCrash

    data_dir = Path(args.data_dir)
    has_state = data_dir.is_dir() and any(data_dir.iterdir())
    if has_state and not args.resume:
        raise WorkloadError(
            f"{data_dir} already holds service state; pass --resume to "
            f"continue it (or point --data-dir at a fresh directory)"
        )
    if args.resume and not has_state:
        raise WorkloadError(f"{data_dir}: nothing to resume")

    edges = rmat_edges(args.scale, args.edges, seed=args.seed)
    if args.obs:
        # Full telemetry: metrics/sketches/flight recorder, so a crash or
        # breaker trip leaves a blackbox-*.json post-mortem in --data-dir.
        obs.enable()
    injector = None
    if args.kill_at is not None and args.fail_every:
        raise WorkloadError("--kill-at and --fail-every are mutually exclusive")
    if args.kill_at is not None:
        injector = FaultInjector(args.kill_at)
    elif args.fail_every:
        from repro.service import TransientFaultInjector

        injector = TransientFaultInjector(
            fail_every=args.fail_every, fail_times=args.fail_times,
            hard=args.hard_faults)
    config = None
    if args.shards > 1 or args.system == "sharded":
        from repro.core.config import ShardedConfig

        inner = (args.system if args.system not in (None, "sharded")
                 else "graphtinker")
        config = ShardedConfig(n_shards=max(1, args.shards), backend=inner)
        if injector is not None:
            raise WorkloadError(
                "--kill-at/--fail-every inject into the plain WAL; they "
                "are not supported with --shards (per-shard logs)")
    elif args.system is not None:
        from repro.core.config import GTConfig, StingerConfig, TieredConfig

        config = {"graphtinker": GTConfig, "stinger": StingerConfig,
                  "tiered": TieredConfig}[args.system]()
    service, rec = GraphService.open(
        data_dir,
        config=config,
        batch_edges=args.batch_size,
        flush_interval=args.flush_interval,
        sync=args.sync,
        checkpoint_every=args.checkpoint_every,
        injector=injector,
        max_retries=args.max_retries,
        breaker_threshold=args.breaker_threshold,
        shed_reads_at=args.shed_reads_at,
    )
    offset = rec.cum_edges
    if args.resume:
        print(f"resumed at input offset {offset}: {rec.store.n_edges} edges "
              f"recovered (checkpoint seq {rec.checkpoint_seq}, "
              f"replayed {rec.replayed_records} WAL records)")
    log.info(kv("serve starting", edges=edges.shape[0], offset=offset,
                batch_size=args.batch_size, sync=args.sync))
    try:
        for start in range(offset, edges.shape[0], args.batch_size):
            service.submit_insert(edges[start:start + args.batch_size])
        service.flush_now()
    except ReproError as exc:
        health = service.health()
        if health["breaker"]["state"] == "open":
            print(f"circuit breaker open: {exc}", file=sys.stderr)
            print(f"durable input rows: {service.cum_input_edges} of "
                  f"{edges.shape[0]}", file=sys.stderr)
            service.close()
            return 1
        if not isinstance(service.fatal_error, SimulatedCrash):
            raise
    if service.fatal_error is not None:
        print(f"writer crashed: {service.fatal_error}", file=sys.stderr)
        print(f"durable input rows: {service.cum_input_edges} of "
              f"{edges.shape[0]}", file=sys.stderr)
        service.close()  # joins the flusher, so its dump is on disk
        if args.obs:
            from repro.obs.recorder import list_blackboxes

            for dump in list_blackboxes(data_dir)[:1]:
                print(f"post-mortem: python -m repro blackbox {dump}",
                      file=sys.stderr)
        return 1
    service.close(checkpoint=args.final_checkpoint)
    print(f"final edges: {service.n_edges}")
    print(f"last seq: {service.applied_seq}  "
          f"input consumed: {service.cum_input_edges}  "
          f"flushes: {service.n_flushes}")
    if injector is not None and hasattr(injector, "injected"):
        print(f"injected transient faults: {injector.injected}")
    return 0


def cmd_serve_net(args) -> int:
    """Network front-end: host a GraphService directory over TCP.

    Binds (``--port 0`` = ephemeral), optionally writes the bound port
    to ``--port-file`` (how scripted callers discover it), then serves
    until the duration elapses or the process is interrupted.  The
    service directory is created fresh or recovered, same contract as
    ``serve``.
    """
    import tempfile
    import time as _time

    from repro.net import ServerThread

    # The server process runs ~10 runnable threads (event loop, flusher,
    # mutation pool); at the default 5ms GIL switch interval the flusher
    # convoys behind them on every GIL re-acquire, tripling micro-batch
    # flush latency.  A 1ms interval keeps handoffs tight.
    sys.setswitchinterval(0.001)
    from repro.service import GraphService

    if args.obs:
        obs.enable()
    if args.data_dir is None:
        data_dir = Path(tempfile.mkdtemp(prefix="repro-serve-net-"))
        print(f"serving ephemeral state in {data_dir}")
    else:
        data_dir = Path(args.data_dir)
    config = None
    if args.shards > 1:
        from repro.core.config import ShardedConfig

        config = ShardedConfig(n_shards=args.shards)
    service, rec = GraphService.open(
        data_dir,
        config=config,
        batch_edges=args.batch_size,
        flush_interval=args.flush_interval,
        sync=args.sync,
        checkpoint_every=args.checkpoint_every,
        breaker_threshold=args.breaker_threshold,
        shed_reads_at=args.shed_reads_at,
    )
    if rec.replayed_records or rec.checkpoint_seq:
        print(f"recovered {rec.store.n_edges} edges "
              f"(checkpoint seq {rec.checkpoint_seq}, "
              f"replayed {rec.replayed_records} WAL records)")
    thread = ServerThread(service, args.host, args.port,
                          pool_workers=args.pool_workers,
                          view_refresh_s=args.view_refresh,
                          view_patch_rows=args.view_patch_rows)
    try:
        thread.start()
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        service.close()
        return 1
    if args.port_file:
        Path(args.port_file).write_text(f"{thread.port}\n")
    print(f"listening on {args.host}:{thread.port} "
          f"(protocol v1, data dir {data_dir})", flush=True)
    deadline = (_time.monotonic() + args.duration) if args.duration else None
    try:
        while deadline is None or _time.monotonic() < deadline:
            _time.sleep(0.2)
            if service.fatal_error is not None:
                print(f"service failed: {service.fatal_error}",
                      file=sys.stderr)
                return 1
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        thread.stop()
        service.close(checkpoint=args.final_checkpoint)
    print(f"served {thread.server.n_connections} connections; "
          f"final edges: {service.n_edges}  last seq: {service.applied_seq}")
    return 0


def cmd_serve_replica(args) -> int:
    """Host a WAL-shipping read replica of a running ``serve-net``.

    The replica owns its own service directory (WAL + checkpoints), so
    ``kill -9`` + restart recovers locally and resumes the stream from
    its last applied cursor.  Reads are served with honest staleness
    metadata; mutations are refused with ``NOT_WRITER``.
    """
    import tempfile
    import time as _time

    from repro.net.replication import ReplicaServer

    sys.setswitchinterval(0.001)  # same GIL-convoy mitigation as serve-net
    if args.obs:
        obs.enable()
    if not args.upstream_port and not args.upstream_port_file:
        raise WorkloadError("need --upstream-port or --upstream-port-file")
    if args.data_dir is None:
        data_dir = Path(tempfile.mkdtemp(prefix="repro-replica-"))
        print(f"replica state in ephemeral {data_dir}")
    else:
        data_dir = Path(args.data_dir)
    rep = ReplicaServer(
        data_dir, args.upstream_host, args.upstream_port,
        upstream_port_file=args.upstream_port_file,
        host=args.host, port=args.port,
        replica_id=args.replica_id,
        max_lag_seq=args.max_lag_seq,
        checkpoint_every=args.checkpoint_every,
        poll_wait_s=args.poll_wait,
        max_records=args.max_records,
        digest_check=not args.no_digest_check,
    )
    try:
        rep.start()
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        rep.service.close(checkpoint=False)
        return 1
    if args.port_file:
        Path(args.port_file).write_text(f"{rep.port}\n")
    print(f"replica {rep.link.replica_id} listening on "
          f"{args.host}:{rep.port} (data dir {data_dir}, "
          f"applied seq {rep.service.applied_seq})", flush=True)
    deadline = (_time.monotonic() + args.duration) if args.duration else None
    try:
        while deadline is None or _time.monotonic() < deadline:
            _time.sleep(0.2)
            if rep.service.fatal_error is not None:
                print(f"replica failed: {rep.service.fatal_error}",
                      file=sys.stderr)
                return 1
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        rep.stop()
    repl = rep.service.health()["replication"]
    print(f"replica stopped at seq {rep.service.applied_seq} "
          f"(lag {repl['lag_seq']}, resyncs {repl['n_resyncs']}, "
          f"resubscribes {repl['n_resubscribes']})")
    return 0


def _parse_endpoints(specs: list[str]) -> list[tuple[str, int]]:
    """``host:port`` strings -> ``(host, port)`` pairs."""
    out = []
    for spec in specs:
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            raise WorkloadError(f"bad endpoint {spec!r} (expected host:port)")
        out.append((host or "127.0.0.1", int(port)))
    return out


def cmd_loadgen(args) -> int:
    """Closed-loop load generator against a running ``serve-net``."""
    from repro.bench.records import write_bench_record
    from repro.net.loadgen import loadgen_record, run_loadgen

    # Same GIL-convoy mitigation as serve-net: the measured client-side
    # latencies include time a worker thread spends waiting for the GIL
    # behind its siblings.
    sys.setswitchinterval(0.001)

    port = args.port
    if args.port_file:
        port = int(Path(args.port_file).read_text().strip())
    if not port:
        raise WorkloadError("need --port or --port-file")
    replicas = _parse_endpoints(args.replicas) if args.replicas else None
    stats = run_loadgen(
        args.host, port,
        clients=args.clients,
        duration=args.duration,
        read_fraction=args.read_fraction,
        scale=args.scale,
        batch_edges=args.batch_edges,
        batches_per_worker=args.batches_per_worker,
        seed=args.seed,
        retries=args.retries,
        timeout=args.timeout,
        port_file=args.port_file,
        replicas=replicas,
    )
    summary = stats.summary()
    table = Table("loadgen", ["metric", "value"])
    table.add_row(["wall_s", f"{summary['wall_s']:.2f}"])
    table.add_row(["read ops/s", f"{summary['read_ops_per_s']:.0f}"])
    table.add_row(["write ops/s", f"{summary['write_ops_per_s']:.0f}"])
    table.add_row(["read p50/p99 ms",
                   f"{summary['read_p50_ms']:.2f} / "
                   f"{summary['read_p99_ms']:.2f}"])
    table.add_row(["write p50/p99 ms",
                   f"{summary['write_p50_ms']:.2f} / "
                   f"{summary['write_p99_ms']:.2f}"])
    table.add_row(["edges written", str(summary['n_edges_written'])])
    table.add_row(["transient retries", str(summary['n_retries'])])
    if replicas:
        table.add_row(["staleness p50/p99 lag",
                       f"{summary['staleness_p50_lag']:.0f} / "
                       f"{summary['staleness_p99_lag']:.0f} seqs"])
        table.add_row(["failovers", str(summary['n_failovers'])])
        table.add_row(["stale rejects", str(summary['n_stale_rejects'])])
    table.add_row(["typed errors", str(summary['errors'] or "none")])
    table.add_row(["generation regressions",
                   str(summary['generation_regressions'])])
    print(table.render())
    if not args.no_record:
        record = loadgen_record(
            stats, clients=args.clients, duration=args.duration,
            read_fraction=args.read_fraction, scale=args.scale,
            batch_edges=args.batch_edges)
        path = write_bench_record(record, args.record_dir)
        print(f"bench record: {path}")
    if summary["generation_regressions"]:
        print("error: read generation went backwards", file=sys.stderr)
        return 1
    if stats.total_ops == 0:
        print("error: no operation completed", file=sys.stderr)
        return 1
    return 0


def cmd_recover(args) -> int:
    """Recover a service directory; print (and optionally checkpoint) it."""
    from repro.service import CheckpointManager, recover

    result = recover(Path(args.data_dir))
    print(f"recovered edges: {result.store.n_edges}")
    print(f"checkpoint seq: {result.checkpoint_seq}  "
          f"last seq: {result.last_seq}  "
          f"replayed records: {result.replayed_records}  "
          f"replayed edges: {result.replayed_edges}  "
          f"input consumed: {result.cum_edges}")
    if result.torn_offset is not None:
        print(f"truncated torn WAL tail at byte {result.torn_offset}")
    if args.checkpoint:
        path = CheckpointManager(args.data_dir).write(
            result.store, result.last_seq, result.cum_edges)
        print(f"wrote checkpoint {path}")
    return 0


def cmd_fsck(args) -> int:
    """Recover a service directory and audit its structural invariants.

    Exit 0 when the store is clean (or ``--repair`` healed it back to
    clean); exit 1 when violations remain.  ``--corrupt N`` injects N
    random store corruptions after recovery — the chaos-testing loop:
    corrupt -> fsck must flag it -> ``--repair`` must heal it.
    """
    from repro.service import CheckpointManager, StoreCorruptor, recover

    result = recover(Path(args.data_dir), verify=None)
    store = result.store
    print(f"recovered {store.n_edges} edges "
          f"(checkpoint seq {result.checkpoint_seq}, "
          f"replayed {result.replayed_records} WAL records)")
    if args.corrupt:
        corruptor = StoreCorruptor(store, seed=args.corrupt_seed)
        for injected in corruptor.corrupt_random(args.corrupt):
            print(f"injected {injected.kind}: {injected.detail}")

    report = store.fsck(level=args.level)
    print(report.summary())
    if report.ok:
        return 0
    shown = report.violations[:args.show]
    for violation in shown:
        print(f"  [{violation.kind}] vertex={violation.vertex} "
              f"{violation.where}: {violation.detail}")
    if len(report.violations) > len(shown):
        print(f"  ... and {len(report.violations) - len(shown)} more")
    if not args.repair:
        return 1

    repair = store.fsck(repair=True)
    print(f"repair: {len(repair.rebuilt_vertices)} vertices rebuilt, "
          f"{len(repair.recounted_vertices)} recounted, "
          f"{repair.freed_blocks} blocks freed, "
          f"{repair.sgh_fixes} SGH fixes")
    print(f"post-repair: {repair.final.summary()}")
    if not repair.ok:
        return 1
    if args.checkpoint:
        path = CheckpointManager(args.data_dir).write(
            store, result.last_seq, result.cum_edges)
        print(f"wrote repaired checkpoint {path}")
    return 0


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values, width: int = 48) -> str:
    """Render the last ``width`` samples as a unicode sparkline."""
    arr = np.asarray(values, dtype=np.float64)[-width:]
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _SPARK_CHARS[0] * arr.size
    idx = ((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def _render_top_frame(service, ring) -> str:
    """One dashboard frame: health header + per-series sparklines."""
    health = service.health()
    breaker = health["breaker"]["state"]
    lines = [
        f"repro top — {service.directory}  "
        f"(uptime {health['uptime_s']:.1f}s)",
        f"queue {health['queue_depth']}/{health['queue_limit']}  "
        f"pending {health['pending_edges']} edges  "
        f"applied seq {health['applied_seq']}  "
        f"flushes {health['n_flushes']}  breaker {breaker}  "
        f"{'OK' if health['ok'] else 'NOT OK'}",
    ]
    repl = health.get("replication")
    if repl is not None:
        if repl.get("role") == "replica":
            lines.append(
                f"replication replica  lag {repl['lag_seq']} seqs / "
                f"{repl['lag_edges']} edges  "
                f"upstream {'up' if repl.get('connected') else 'DOWN'}  "
                f"resyncs {repl['n_resyncs']}  "
                f"resubscribes {repl['n_resubscribes']}")
        else:
            lines.append(
                f"replication writer  seq {repl['writer_seq']}  "
                f"replicas {repl['n_replicas']}")
    lines.append("")
    for name in ring.names():
        _, values = ring.series(name)
        if values.size == 0:
            continue
        lines.append(f"  {name:<20} {values[-1]:>12.2f}  "
                     f"{_sparkline(values)}")
    last = health.get("last_event")
    if last is not None:
        detail = " ".join(f"{k}={v}" for k, v in last["detail"].items())
        lines.append("")
        lines.append(f"last event: {last['kind']} {detail}".rstrip())
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Self-driving dashboard: RMAT stream -> temp service, live render.

    There is no IPC to attach to a foreign process, so ``top`` owns its
    workload: it opens a GraphService in a temporary directory with the
    time-series sampler running, feeds it the deterministic RMAT stream,
    and redraws the ring as sparklines until the stream is done.
    ``--once`` ingests everything, takes one sample, prints one frame,
    and exits — the CI smoke mode.
    """
    import tempfile
    import time as time_mod

    from repro.service import GraphService

    edges = rmat_edges(args.scale, args.edges, seed=args.seed)
    obs.enable()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-top-") as tmp:
            service = GraphService(
                Path(tmp), batch_edges=args.batch_size,
                sample_interval=args.interval)
            try:
                sampler = service._sampler
                if args.once:
                    for start in range(0, edges.shape[0], args.batch_size):
                        service.submit_insert(
                            edges[start:start + args.batch_size])
                    service.flush_now()
                    sampler.sample_once()
                    print(_render_top_frame(service, sampler.ring))
                    return 0
                deadline = time_mod.monotonic() + args.duration
                start = 0
                while time_mod.monotonic() < deadline:
                    if start < edges.shape[0]:
                        service.submit_insert(
                            edges[start:start + args.batch_size])
                        start += args.batch_size
                    else:
                        start = 0  # loop the stream: top is a demo load
                    time_mod.sleep(args.interval / 4)
                    print("\x1b[2J\x1b[H"
                          + _render_top_frame(service, sampler.ring),
                          flush=True)
                service.flush_now()
                print()
                return 0
            finally:
                service.close()
    finally:
        obs.disable()


def cmd_report(args) -> int:
    """Diff two standardized bench records; exit 1 on a regression."""
    from repro.bench.records import (
        diff_bench_records,
        has_regressions,
        load_bench_record,
    )

    try:
        baseline = load_bench_record(args.baseline)
        current = load_bench_record(args.current)
        rows = diff_bench_records(baseline, current,
                                  threshold=args.threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    table = Table(
        f"bench report: {baseline['bench']} "
        f"(v{baseline['repro_version']} -> v{current['repro_version']}, "
        f"threshold {args.threshold:.0%})",
        ["metric", "baseline", "current", "change", "verdict"],
    )
    for row in rows:
        change = ("-" if row["change"] is None
                  else f"{row['change']:+.1%}")
        table.add_row([row["metric"], row["baseline"], row["current"],
                       change, row["verdict"]])
    table.print()
    if has_regressions(rows):
        print("perf regression detected", file=sys.stderr)
        return 1
    return 0


def cmd_blackbox(args) -> int:
    """Read flight-recorder dumps: list a directory or print one file."""
    from repro.obs.recorder import list_blackboxes, load_blackbox

    path = Path(args.path)
    if path.is_dir():
        dumps = list_blackboxes(path)
        if not dumps:
            print(f"no black-box dumps in {path}", file=sys.stderr)
            return 1
        if args.list:
            for dump in dumps:
                print(dump)
            return 0
        path = dumps[0]  # newest
    try:
        record = load_blackbox(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"black box: {path}")
    print(f"reason: {record['reason']}")
    for key, value in sorted(record.get("context", {}).items()):
        print(f"  {key}: {value}")
    events = record.get("events", [])
    print(f"events ({len(events)} recorded, "
          f"{record.get('n_events_total', len(events))} total):")
    for event in events[-args.events:]:
        detail = " ".join(f"{k}={v}" for k, v in event["detail"].items())
        print(f"  {event['kind']:<20} {detail}".rstrip())
    spans = record.get("spans", [])
    if spans:
        print(f"recent spans ({len(spans)}):")
        for span in spans[-args.events:]:
            print(f"  {span['name']:<20} {span['duration_ms']:.2f} ms  "
                  f"({span['n_descendants']} descendants)")
    metrics = record.get("metrics", {})
    print(f"metrics captured: {len(metrics)}")
    return 0


def cmd_probe(args) -> int:
    edges = _edges_for(args)
    gt = make_store("graphtinker")
    st = make_store("stinger")
    gt.insert_batch(edges)
    st.insert_batch(edges)
    table = Table(
        f"probe distance on {args.dataset}",
        ["structure", "samples", "mean", "p95", "max"],
    )
    for label, summary in (
        ("GraphTinker", graphtinker_probe_summary(gt)),
        ("STINGER", stinger_probe_summary(st)),
    ):
        table.add_row([label, summary.count, summary.mean, summary.p95, summary.max])
    table.print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphTinker reproduction command-line interface",
    )
    # Every subcommand inherits --log-level (repro.obs.log verbosity).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--log-level", default="warning", choices=LEVELS,
                        help="repro logger verbosity (default: warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", parents=[common],
                       help="print the Table 1 dataset registry")
    p.set_defaults(func=cmd_datasets)

    p = sub.add_parser("generate", parents=[common],
                       help="write a dataset / RMAT stream to a file")
    p.add_argument("output")
    p.add_argument("--dataset", choices=DATASET_ORDER)
    p.add_argument("--scale", type=int, default=14, help="RMAT scale (no --dataset)")
    p.add_argument("--edges", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("load", parents=[common],
                       help="batch-insert a dataset; report throughput")
    p.add_argument("--dataset", default="hollywood_like", choices=DATASET_ORDER)
    p.add_argument("--edges", type=int, default=48_000)
    p.add_argument("--batches", type=int, default=6)
    p.add_argument("--systems", nargs="+", default=["graphtinker", "stinger"],
                   choices=["graphtinker", "gt_nocal", "gt_nosgh", "gt_plain",
                            "stinger", "tiered", "sharded"])
    p.add_argument("--kernel", default="vector", choices=["vector", "scalar"],
                   help="batch-ingest kernel for the GraphTinker systems "
                        "(bit-identical results; wall-clock only)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="worker processes for the 'sharded' system "
                        "(digest is shard-count invariant)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write per-system throughput (modeled + wall) "
                        "and the kernel used as JSON")
    p.set_defaults(func=cmd_load)

    p = sub.add_parser("analytics", parents=[common],
                       help="run a graph algorithm via the hybrid engine")
    p.add_argument("--dataset", default="rmat_1m_10m", choices=DATASET_ORDER)
    p.add_argument("--edges", type=int, default=48_000)
    p.add_argument("--algorithm", default="bfs", choices=sorted(_ALGORITHMS))
    p.add_argument("--policy", default="hybrid",
                   choices=["hybrid", "full", "incremental", "full_vc"])
    p.add_argument("--system", default="graphtinker",
                   choices=["graphtinker", "stinger", "tiered", "sharded"])
    p.add_argument("--snapshot", action="store_true",
                   help="attach the CSR analytics snapshot (bit-identical "
                        "results and modeled costs; wall-clock only)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the result (trace, stats, value digest) as "
                        "JSON — only the 'snapshot' key differs between a "
                        "--snapshot and a plain run")
    p.set_defaults(func=cmd_analytics)

    p = sub.add_parser("probe", parents=[common],
                       help="probe-distance comparison GT vs STINGER")
    p.add_argument("--dataset", default="hollywood_like", choices=DATASET_ORDER)
    p.add_argument("--edges", type=int, default=48_000)
    p.set_defaults(func=cmd_probe)

    p = sub.add_parser("trace", parents=[common],
                       help="traced load+BFS; dump span tree and metrics")
    p.add_argument("dataset", nargs="?", default="hollywood_like",
                   choices=DATASET_ORDER)
    p.add_argument("--edges", type=int, default=12_000)
    p.add_argument("--batches", type=int, default=4)
    p.add_argument("--system", default="graphtinker",
                   choices=["graphtinker", "stinger", "tiered"])
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="also write the span tree as JSONL")
    p.add_argument("--prometheus", default=None, metavar="PATH",
                   help="also write the metrics as Prometheus text")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("serve", parents=[common],
                       help="drive an RMAT stream through the durable "
                            "WAL-backed graph service")
    p.add_argument("--data-dir", required=True,
                   help="service directory (WAL segments + checkpoints)")
    p.add_argument("--system", default=None,
                   choices=["graphtinker", "stinger", "tiered", "sharded"],
                   help="backing store (default: the checkpoint's writer "
                        "backend on --resume, else graphtinker)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="shard worker processes; N > 1 serves through the "
                        "sharded store with per-shard WAL segments "
                        "(--system then selects the per-shard backend)")
    p.add_argument("--scale", type=int, default=10, help="RMAT scale")
    p.add_argument("--edges", type=int, default=20_000,
                   help="total input rows in the stream")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=int, default=512,
                   help="input rows per submitted batch")
    p.add_argument("--flush-interval", type=float, default=0.02,
                   help="latency flush trigger in seconds")
    p.add_argument("--sync", default="batch",
                   choices=["always", "batch", "never"],
                   help="WAL fsync policy")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="auto-checkpoint every N applied WAL records")
    p.add_argument("--final-checkpoint", action="store_true",
                   help="checkpoint the end state on clean shutdown")
    p.add_argument("--kill-at", type=int, default=None, metavar="BYTES",
                   help="simulate a writer kill at this WAL byte offset")
    p.add_argument("--resume", action="store_true",
                   help="recover the directory and continue its stream")
    p.add_argument("--max-retries", type=int, default=0, metavar="N",
                   help="retries (exp backoff + jitter) per WAL op on "
                        "transient I/O errors")
    p.add_argument("--breaker-threshold", type=int, default=0, metavar="N",
                   help="open the circuit breaker after N consecutive "
                        "flush failures (0 = fail-stop)")
    p.add_argument("--shed-reads-at", type=int, default=0, metavar="DEPTH",
                   help="reject reads when the ingest queue reaches this "
                        "depth (0 = never shed)")
    p.add_argument("--fail-every", type=int, default=0, metavar="N",
                   help="inject a transient WAL fault on every Nth record")
    p.add_argument("--fail-times", type=int, default=1, metavar="K",
                   help="consecutive failures per faulty record before it "
                        "clears (with --fail-every)")
    p.add_argument("--hard-faults", action="store_true",
                   help="faulty records never clear (drives the breaker "
                        "open; with --fail-every)")
    p.add_argument("--obs", action="store_true",
                   help="enable full telemetry (metrics, sketches, flight "
                        "recorder); crashes leave a blackbox-*.json dump")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("serve-net", parents=[common],
                       help="host a service directory over TCP (frame "
                            "protocol, docs/network.md)")
    p.add_argument("--data-dir", default=None,
                   help="service directory (default: fresh temp dir)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="serve through the process-per-shard store with "
                        "per-shard WAL segments (1 = plain store)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="serve for this many seconds (0 = forever)")
    p.add_argument("--batch-size", type=int, default=2048,
                   help="service micro-batch size in edges")
    p.add_argument("--flush-interval", type=float, default=0.002,
                   help="latency flush trigger in seconds")
    p.add_argument("--sync", default="batch",
                   choices=["always", "batch", "never"],
                   help="WAL fsync policy")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N")
    p.add_argument("--final-checkpoint", action="store_true")
    p.add_argument("--breaker-threshold", type=int, default=0, metavar="N",
                   help="open the circuit breaker after N consecutive "
                        "flush failures (0 = fail-stop)")
    p.add_argument("--shed-reads-at", type=int, default=0, metavar="DEPTH",
                   help="answer reads with SHED frames when the ingest "
                        "queue reaches this depth (0 = never)")
    p.add_argument("--pool-workers", type=int, default=8,
                   help="server thread pool size (mutation waits)")
    p.add_argument("--view-refresh", type=float, default=0.25,
                   metavar="SECONDS",
                   help="min interval between read-view re-captures "
                        "(bounded read staleness; 0 = every batch)")
    p.add_argument("--view-patch-rows", type=int, default=512,
                   help="max dirty rows re-measured per re-capture "
                        "(bounds the ingest stall a capture can cause)")
    p.add_argument("--obs", action="store_true",
                   help="enable telemetry (net.* metrics, health detail)")
    p.set_defaults(func=cmd_serve_net)

    p = sub.add_parser("serve-replica", parents=[common],
                       help="host a WAL-shipping read replica of a running "
                            "serve-net (docs/network.md)")
    p.add_argument("--data-dir", default=None,
                   help="replica directory (default: fresh temp dir)")
    p.add_argument("--upstream-host", default="127.0.0.1")
    p.add_argument("--upstream-port", type=int, default=0,
                   help="writer port (or use --upstream-port-file)")
    p.add_argument("--upstream-port-file", default=None, metavar="PATH",
                   help="read the writer port from this file (re-read on "
                        "every reconnect, so a restarted writer is found)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="replica TCP port (0 = ephemeral)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--duration", type=float, default=0.0,
                   help="serve for this many seconds (0 = forever)")
    p.add_argument("--replica-id", default=None,
                   help="stable replica identity (default: random)")
    p.add_argument("--max-lag-seq", type=int, default=0, metavar="N",
                   help="shed reads with STALE when the replica is more "
                        "than N WAL records behind (0 = never shed)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="local checkpoint every N applied records")
    p.add_argument("--poll-wait", type=float, default=1.0,
                   help="wal_batch long-poll wait in seconds")
    p.add_argument("--max-records", type=int, default=512,
                   help="max WAL records pulled per batch")
    p.add_argument("--no-digest-check", action="store_true",
                   help="skip the post-catch-up digest cross-check")
    p.add_argument("--obs", action="store_true",
                   help="enable telemetry (repl.* metrics, health detail)")
    p.set_defaults(func=cmd_serve_replica)

    p = sub.add_parser("loadgen", parents=[common],
                       help="drive a running serve-net with closed-loop "
                            "client workers")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="read the target port from this file")
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop worker count")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds to generate load")
    p.add_argument("--read-fraction", type=float, default=0.9,
                   help="fraction of ops that are reads (default: 0.9)")
    p.add_argument("--scale", type=int, default=14,
                   help="RMAT scale of the mutation stream / read keys")
    p.add_argument("--batch-edges", type=int, default=16,
                   help="edges per mutation batch")
    p.add_argument("--batches-per-worker", type=int, default=64,
                   help="pre-generated mutation batches per worker")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--retries", type=int, default=3,
                   help="transient-error retries per request")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request client timeout in seconds")
    p.add_argument("--replicas", action="append", default=None,
                   metavar="HOST:PORT",
                   help="route reads over these replicas with failover "
                        "(repeatable); writes still go to --host/--port")
    p.add_argument("--record-dir", default=None, metavar="DIR",
                   help="directory for BENCH_net_serve.json")
    p.add_argument("--no-record", action="store_true",
                   help="skip writing the bench record")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("recover", parents=[common],
                       help="recover a service directory (checkpoint + WAL)")
    p.add_argument("--data-dir", required=True)
    p.add_argument("--checkpoint", action="store_true",
                   help="write a fresh checkpoint of the recovered state")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("fsck", parents=[common],
                       help="audit a service directory's store integrity "
                            "(optionally self-heal)")
    p.add_argument("--data-dir", required=True)
    p.add_argument("--level", default="full", choices=["quick", "full"],
                   help="audit depth (default: full)")
    p.add_argument("--repair", action="store_true",
                   help="self-heal detected violations")
    p.add_argument("--corrupt", type=int, default=0, metavar="N",
                   help="inject N random corruptions first (chaos testing)")
    p.add_argument("--corrupt-seed", type=int, default=0)
    p.add_argument("--show", type=int, default=20, metavar="N",
                   help="max violations to print (default: 20)")
    p.add_argument("--checkpoint", action="store_true",
                   help="checkpoint the repaired store on success")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("figures", parents=[common],
                       help="export plot-ready CSV figure data")
    p.add_argument("output_dir")
    p.add_argument("--dataset", default="hollywood_like", choices=DATASET_ORDER)
    p.add_argument("--batches", type=int, default=8)
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("top", parents=[common],
                       help="live service dashboard (self-driving demo load)")
    p.add_argument("--scale", type=int, default=12, help="RMAT scale")
    p.add_argument("--edges", type=int, default=20_000,
                   help="input rows in the demo stream")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=int, default=512)
    p.add_argument("--interval", type=float, default=0.25,
                   help="sampling/refresh interval in seconds")
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds to run the live view")
    p.add_argument("--once", action="store_true",
                   help="ingest, take one sample, print one frame (CI)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("report", parents=[common],
                       help="diff two BENCH_*.json records; exit 1 on a "
                            "perf regression")
    p.add_argument("--baseline", required=True, metavar="PATH")
    p.add_argument("--current", required=True, metavar="PATH")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="relative change that counts as a regression "
                        "(default: 0.10)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("blackbox", parents=[common],
                       help="read a flight-recorder post-mortem dump")
    p.add_argument("path",
                   help="a blackbox-*.json file, or a service directory "
                        "(newest dump is shown)")
    p.add_argument("--list", action="store_true",
                   help="list the dumps in a directory instead")
    p.add_argument("--events", type=int, default=20, metavar="N",
                   help="max events/spans to print (default: 20)")
    p.set_defaults(func=cmd_blackbox)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Exit codes: 0 success, 1 repro-domain error (:class:`ReproError`),
    2 usage error (argparse raises ``SystemExit(2)`` itself).
    """
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
