"""GraphTinker core: the paper's primary contribution.

Public surface re-exported here:

* :class:`~repro.core.config.GTConfig` — geometry / feature configuration.
* :class:`~repro.core.graphtinker.GraphTinker` — the dynamic graph store.
* :class:`~repro.core.parallel.PartitionedGraphTinker` — multi-instance
  interval-partitioned store (Sec. III.D).
* :class:`~repro.core.stats.AccessStats` — instrumentation counters.
"""

from repro.core.config import EngineConfig, GTConfig, StingerConfig
from repro.core.graphtinker import GraphTinker
from repro.core.stats import AccessStats

__all__ = [
    "AccessStats",
    "EngineConfig",
    "GTConfig",
    "GraphTinker",
    "StingerConfig",
]
