"""GraphTinker core: the paper's primary contribution.

Public surface re-exported here:

* :class:`~repro.core.config.GTConfig` — geometry / feature configuration.
* :class:`~repro.core.graphtinker.GraphTinker` — the dynamic graph store.
* :class:`~repro.core.parallel.PartitionedGraphTinker` — multi-instance
  interval-partitioned store (Sec. III.D).
* :class:`~repro.core.stats.AccessStats` — instrumentation counters.
* :func:`~repro.core.verify.verify_graph` / :func:`~repro.core.verify.
  repair_graph` — the store fsck and its self-healing mode.
"""

from repro.core.config import EngineConfig, GTConfig, StingerConfig
from repro.core.graphtinker import GraphTinker
from repro.core.stats import AccessStats
from repro.core.verify import (
    IntegrityViolation,
    RepairReport,
    VerifyReport,
    repair_graph,
    verify_graph,
)

__all__ = [
    "AccessStats",
    "EngineConfig",
    "GTConfig",
    "GraphTinker",
    "IntegrityViolation",
    "RepairReport",
    "StingerConfig",
    "VerifyReport",
    "repair_graph",
    "verify_graph",
]
