"""The Coarse Adjacency List (CAL) EdgeblockArray (paper Sec. III.B).

GraphTinker's second compaction level: a separate, always-current copy of
every live edge, stored STINGER-style in chained blocks — but *coarse*,
i.e. one chain per **group** of source vertices rather than per vertex, so
each slot also records its source id.  Because groups pack many vertices'
edges into densely filled, sequentially readable blocks, full-processing
analytics can stream the entire edge set with near-contiguous DRAM
accesses and no pre-processing pass.

Updates are O(1): inserts append at the tail of the group's chain; updates
and deletes go straight to the copy through the owning edge-cell's
CAL-pointer, never traversing edges — which is why the paper calls CAL's
maintenance overhead minimal.

Grouping uses the *dense* (SGH-hashed) source ids, so group occupancy
tracks the set of non-empty vertices at every stage of the graph's life.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.config import GTConfig
from repro.core.pool import CAL_CELL_DTYPE, BlockPool
from repro.core.stats import AccessStats

#: ``src`` value marking a vacant / invalidated CAL slot.
CAL_INVALID = np.int64(-1)


def _blank_cal_cells(shape: tuple[int, ...] | int) -> np.ndarray:
    arr = np.zeros(shape, dtype=CAL_CELL_DTYPE)
    arr["src"] = CAL_INVALID
    return arr


class _GrowIntArray:
    """Minimal growable 1-D ``int64`` array with a fill value."""

    __slots__ = ("_data", "_fill")

    def __init__(self, fill: int, initial: int = 8):
        self._fill = fill
        self._data = np.full(initial, fill, dtype=np.int64)

    def ensure(self, n: int) -> None:
        cap = self._data.shape[0]
        if n <= cap:
            return
        new_cap = cap
        while new_cap < n:
            new_cap *= 2
        grown = np.full(new_cap, self._fill, dtype=np.int64)
        grown[:cap] = self._data
        self._data = grown

    def __getitem__(self, i: int) -> int:
        return int(self._data[i])

    def __setitem__(self, i: int, v: int) -> None:
        self._data[i] = v


class CoarseAdjacencyList:
    """Grouped, chained, compact copy of the live edge set."""

    def __init__(self, config: GTConfig, stats: AccessStats | None = None):
        self.config = config
        self.stats = stats if stats is not None else AccessStats()
        self.pool = BlockPool(config.cal_block_size, CAL_CELL_DTYPE, _blank_cal_cells, 4)
        self._n_groups = 0
        self._group_head = _GrowIntArray(-1)
        self._group_tail = _GrowIntArray(-1)
        self._tail_fill = _GrowIntArray(0)
        # Per-pool-block chain links and live-slot counts.
        self._next = _GrowIntArray(-1, 8)
        self._prev = _GrowIntArray(-1, 8)
        self._valid_count = _GrowIntArray(0, 8)
        self._n_valid = 0

    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Live (valid) edge copies currently stored."""
        return self._n_valid

    @property
    def n_groups(self) -> int:
        return self._n_groups

    @property
    def n_blocks(self) -> int:
        return self.pool.n_used

    def group_of(self, src: int) -> int:
        """Group id of dense source ``src`` (a contiguous id range)."""
        return src // self.config.cal_group_width

    def _ensure_group(self, group: int) -> None:
        if group < self._n_groups:
            return
        self._group_head.ensure(group + 1)
        self._group_tail.ensure(group + 1)
        self._tail_fill.ensure(group + 1)
        self._n_groups = group + 1

    def _new_block(self, group: int) -> int:
        block = self.pool.allocate()
        self._next.ensure(block + 1)
        self._prev.ensure(block + 1)
        self._valid_count.ensure(block + 1)
        self._next[block] = -1
        self._valid_count[block] = 0
        tail = self._group_tail[group]
        self._prev[block] = tail
        if tail >= 0:
            self._next[tail] = block
        else:
            self._group_head[group] = block
        self._group_tail[group] = block
        self._tail_fill[group] = 0
        return block

    # ------------------------------------------------------------------ #
    # O(1) maintenance (called from the GraphTinker facade)
    # ------------------------------------------------------------------ #
    def append(self, src: int, dst: int, weight: float) -> tuple[int, int]:
        """Copy a newly inserted edge; return its ``(block, slot)`` address.

        The Logical Vertex Array lookup of the paper — find the group's
        last assigned edgeblock and its next free slot — is O(1) here via
        the tail/fill tables.
        """
        group = self.group_of(src)
        self._ensure_group(group)
        block = self._group_tail[group]
        if block < 0 or self._tail_fill[group] >= self.config.cal_block_size:
            block = self._new_block(group)
        slot = self._tail_fill[group]
        row = self.pool.row(block)
        row["src"][slot] = src
        row["dst"][slot] = dst
        row["weight"][slot] = weight
        self._tail_fill[group] = slot + 1
        self._valid_count[block] = self._valid_count[block] + 1
        self._n_valid += 1
        self.stats.cal_updates += 1
        return block, slot

    def append_many(self, srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append many copies in order; return ``(blocks, slots)`` arrays.

        State-identical to calling :meth:`append` once per element: the
        same slot layout, tail/fill evolution, chain links, block
        *allocation order* (and therefore the same pool row ids, free-list
        included) and the same ``cal_updates`` total.  Instead of walking
        edge by edge, the batch is grouped (stably, preserving stream
        order within a group — the only order the layout depends on), each
        group's appends are laid out arithmetically along its virtual slot
        sequence, new-block needs are replayed in original stream order
        against the pool's free list, and cell writes land as per-segment
        slice stores.  This is the vector batch kernel's CAL replay
        primitive.
        """
        n = srcs.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        bs = self.config.cal_block_size
        groups = srcs // self.config.cal_group_width
        order = np.lexsort((np.arange(n), groups))
        g_sorted = groups[order]
        s_sorted = srcs[order]
        d_sorted = dsts[order]
        w_sorted = weights[order]
        uniq_g, starts = np.unique(g_sorted, return_index=True)
        uniq_l = uniq_g.tolist()
        starts_l = starts.tolist()
        starts_l.append(n)
        order_l = order.tolist()
        self._ensure_group(uniq_l[-1])

        # Pass 1: per group, note its starting state and every append that
        # needs a fresh block (the q-th virtual slot with q % bs == 0).
        # Allocation must happen in *original stream order* across groups
        # so free-list reuse and fresh row ids match the scalar replay.
        per_group = []
        group_new_qs: list[range] = []
        events: list[tuple[int, int, int]] = []  # (stream index, group pos, q)
        for gi in range(len(uniq_l)):
            g = uniq_l[gi]
            a, b = starts_l[gi], starts_l[gi + 1]
            tail = self._group_tail[g]
            base = self._tail_fill[g] if tail >= 0 else 0
            per_group.append((g, a, b, base, tail))
            if tail < 0:
                first_new = 0
            else:
                first_new = ((base + bs - 1) // bs) * bs
                if first_new == 0:
                    first_new = bs
            qs = range(first_new, base + (b - a), bs)
            group_new_qs.append(qs)
            for q in qs:
                events.append((order_l[a + q - base], gi, q))
        events.sort()

        pool = self.pool
        free = pool._free
        new_ids: dict[tuple[int, int], int] = {}
        fresh = 0
        reused: list[int] = []
        for _, gi, q in events:
            if free:
                idx = free.pop()
                reused.append(idx)
            else:
                idx = pool._used + fresh
                fresh += 1
            new_ids[(gi, q)] = idx
        if fresh:
            pool._grow_to(pool._used + fresh)
            pool._used += fresh
        for idx in reused:
            pool._data[idx] = pool._blank(pool.block_width)
        if new_ids or per_group:
            max_block = max(
                max(new_ids.values(), default=-1),
                max((t for _, _, _, _, t in per_group), default=-1),
            )
            if max_block >= 0:
                self._next.ensure(max_block + 1)
                self._prev.ensure(max_block + 1)
                self._valid_count.ensure(max_block + 1)

        # Pass 2: link new blocks (mirroring _new_block), write cells
        # segment by segment, update tails/fills/counts, and record each
        # append's address.
        blocks_sorted = np.empty(n, dtype=np.int64)
        slots_sorted = np.empty(n, dtype=np.int64)
        for gi, (g, a, b, base, tail) in enumerate(per_group):
            prev = tail
            for q in group_new_qs[gi]:
                block = new_ids[(gi, q)]
                self._next[block] = -1
                self._valid_count[block] = 0
                self._prev[block] = prev
                if prev >= 0:
                    self._next[prev] = block
                else:
                    self._group_head[g] = block
                prev = block
            pos = a
            while pos < b:
                q = base + (pos - a)
                q_floor = q - (q % bs)
                block = tail if (tail >= 0 and q < bs) else new_ids[(gi, q_floor)]
                take = min(q_floor + bs, base + (b - a)) - q
                sl0 = q - q_floor
                sl1 = sl0 + take
                row = pool.row(block)
                row["src"][sl0:sl1] = s_sorted[pos : pos + take]
                row["dst"][sl0:sl1] = d_sorted[pos : pos + take]
                row["weight"][sl0:sl1] = w_sorted[pos : pos + take]
                self._valid_count[block] = self._valid_count[block] + take
                blocks_sorted[pos : pos + take] = block
                slots_sorted[pos : pos + take] = np.arange(sl0, sl1)
                pos += take
            self._group_tail[g] = prev
            self._tail_fill[g] = ((base + (b - a) - 1) % bs) + 1
        blocks_out = np.empty(n, dtype=np.int64)
        slots_out = np.empty(n, dtype=np.int64)
        blocks_out[order] = blocks_sorted
        slots_out[order] = slots_sorted
        self._n_valid += n
        self.stats.cal_updates += n
        return blocks_out, slots_out

    def update_weight(self, block: int, slot: int, weight: float) -> None:
        """Overwrite the weight of an existing copy via its CAL-pointer."""
        self.pool.row(block)["weight"][slot] = weight
        self.stats.cal_updates += 1

    def invalidate(self, block: int, slot: int) -> None:
        """Flag a copy as deleted via its CAL-pointer (no traversal)."""
        row = self.pool.row(block)
        if row["src"][slot] == CAL_INVALID:
            return
        row["src"][slot] = CAL_INVALID
        self._valid_count[block] = self._valid_count[block] - 1
        self._n_valid -= 1
        self.stats.cal_updates += 1

    def read_slot(self, block: int, slot: int) -> tuple[int, int, float]:
        """Return ``(src, dst, weight)`` stored at a CAL address."""
        row = self.pool.row(block)
        return int(row["src"][slot]), int(row["dst"][slot]), float(row["weight"][slot])

    def compact_delete(self, block: int, slot: int):
        """Delete a copy *and keep the group's chain dense*.

        Used by the delete-and-compact mechanism: the hole left at
        ``(block, slot)`` is refilled with the group's **last** live copy
        (the tail slot), the tail shrinks, and a fully emptied tail block
        is unlinked and returned to the pool — so full-processing
        streaming never pays for fragmentation, which is exactly the
        analytics advantage Fig. 15 measures.

        Requires that the group's chain is dense, which holds when every
        delete in this structure's lifetime went through this method
        (enforced by the facade's ``compact_on_delete`` configuration).

        Returns ``None`` when the deleted slot was itself the tail, or
        ``(src, dst, old_block, old_slot)`` describing the copy that
        moved into ``(block, slot)`` so the caller can re-point the
        owning EdgeblockArray cell.
        """
        row = self.pool.row(block)
        if row["src"][slot] == CAL_INVALID:
            return None
        group = self.group_of(int(row["src"][slot]))
        tail_block = self._group_tail[group]
        tail_slot = self._tail_fill[group] - 1
        assert tail_block >= 0 and tail_slot >= 0, "dense-chain invariant broken"

        moved = None
        if (tail_block, tail_slot) != (block, slot):
            tail_row = self.pool.row(tail_block)
            src = int(tail_row["src"][tail_slot])
            dst = int(tail_row["dst"][tail_slot])
            row["src"][slot] = src
            row["dst"][slot] = dst
            row["weight"][slot] = tail_row["weight"][tail_slot]
            tail_row["src"][tail_slot] = CAL_INVALID
            # The deleted copy leaves `block`, the moved copy enters it:
            # net zero there; the tail block loses one.
            self._valid_count[tail_block] = self._valid_count[tail_block] - 1
            self.stats.cal_updates += 2
            moved = (src, dst, tail_block, tail_slot)
        else:
            row["src"][slot] = CAL_INVALID
            self._valid_count[block] = self._valid_count[block] - 1
            self.stats.cal_updates += 1
        self._n_valid -= 1

        # Shrink the tail; unlink and free an emptied tail block.
        self._tail_fill[group] = tail_slot
        if tail_slot == 0:
            prev = self._prev[tail_block]
            self._group_tail[group] = prev
            if prev >= 0:
                self._next[prev] = -1
                self._tail_fill[group] = self.config.cal_block_size
            else:
                self._group_head[group] = -1
                self._tail_fill[group] = 0
            self._prev[tail_block] = -1
            self.pool.free(tail_block)
        return moved

    # ------------------------------------------------------------------ #
    # streaming retrieval (the full-processing load path)
    # ------------------------------------------------------------------ #
    def stream_blocks(self) -> Iterator[np.ndarray]:
        """Yield each chain block's live slots as a structured array view.

        Iteration is group-by-group, chain order within a group: the
        sequential access pattern the paper exploits.  Every block visited
        is charged as one *sequential* block read; blocks whose live count
        is zero are skipped without a charge only if never read — we still
        charge them, as a real streamer must fetch a block to discover it
        is empty.
        """
        for group in range(self._n_groups):
            block = self._group_head[group]
            while block >= 0:
                self.stats.seq_block_reads += 1
                self.stats.cells_scanned += self.config.cal_block_size
                row = self.pool.row(block)
                mask = row["src"] != CAL_INVALID
                if mask.any():
                    yield row[mask]
                block = self._next[block]

    def stream_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise all live edges: ``(src, dst, weight)`` arrays."""
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for chunk in self.stream_blocks():
            srcs.append(chunk["src"])
            dsts.append(chunk["dst"])
            weights.append(chunk["weight"])
        if not srcs:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(weights)

    def fill_fraction(self) -> float:
        """Live slots / allocated slots — the compaction diagnostic."""
        total = self.pool.n_used * self.config.cal_block_size
        return self._n_valid / total if total else 1.0
