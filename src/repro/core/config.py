"""Configuration objects for the GraphTinker data structure.

The paper (Sec. V.A) fixes the default geometry to ``PAGEWIDTH = 64``
edge-cells per edgeblock, Subblocks of 8 cells and Workblocks of 4 cells,
chosen as "a good balance between effective data structure performance in
updating edges and in graph analytics computation".  Every geometry knob is
exposed here so the PAGEWIDTH sweeps of Figs. 17-19 can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError

#: Paper defaults (Sec. V.A).
DEFAULT_PAGEWIDTH = 64
DEFAULT_SUBBLOCK = 8
DEFAULT_WORKBLOCK = 4
DEFAULT_CAL_GROUP_WIDTH = 1024
DEFAULT_CAL_BLOCK_SIZE = 64
DEFAULT_MAX_GENERATIONS = 4096

#: STINGER's configured average edgeblock size (Sec. V.A).
DEFAULT_STINGER_EDGEBLOCK = 16

#: Hybrid engine mode-selection threshold on T = A / E (Sec. IV.B).
DEFAULT_HYBRID_THRESHOLD = 0.02


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class GTConfig:
    """Immutable GraphTinker configuration.

    Parameters
    ----------
    pagewidth:
        Number of edge-cells in one edgeblock (one row of the
        EdgeblockArray).  Larger values widen the hash range per block,
        reducing Robin-Hood collisions (better insert throughput) at the
        cost of a sparser layout (worse analytics throughput) — the
        trade-off of Figs. 17/18.
    subblock:
        Cells per Subblock, the branch-out granularity of Tree-Based
        Hashing.  Must divide ``pagewidth``.
    workblock:
        Cells per Workblock, the DRAM-retrieval granularity of the load
        unit.  Must divide ``subblock``.
    enable_rhh:
        Whether the Robin Hood displacement algorithm runs during inserts.
        The delete-and-compact mechanism disables RHH (paper Sec. III.C) to
        avoid the edge-tracking overhead of swaps.
    enable_sgh:
        Whether Scatter-Gather Hashing densifies source vertex ids.  The
        Sec. V.B ablation disables this.
    enable_cal:
        Whether the Coarse Adjacency List copy is maintained.  Fig. 8
        evaluates GraphTinker both with and without CAL.
    cal_group_width:
        Number of consecutive source vertex ids per CAL group.
    cal_block_size:
        Edge slots per CAL edgeblock.
    compact_on_delete:
        Selects the delete-and-compact mechanism instead of delete-only
        (tombstoning).  Implies RHH is bypassed for the compaction moves.
    max_generations:
        Hard cap on Tree-Based-Hashing descent depth; a sanity guard
        against adversarial hash behaviour rather than a tuning knob.
        Generous by default: degenerate geometries (pagewidth ==
        subblock, i.e. one Subblock per edgeblock) descend once per
        `subblock` edges of a vertex, so hub vertices legitimately reach
        hundreds of generations.
    initial_vertices:
        Number of main-region edgeblock rows pre-allocated.
    seed:
        Seed for the (deterministic) hash-mixing constants.
    kernel:
        Batch-ingest implementation used by ``insert_batch`` /
        ``delete_batch``: ``"vector"`` (default) runs the NumPy-assisted
        batch kernels of :mod:`repro.core.kernels`; ``"scalar"`` runs the
        per-edge reference path.  The two are event-identical — same
        store state, bit-identical :class:`~repro.core.stats.AccessStats`
        — which tests/test_kernels.py enforces; the switch therefore
        only ever changes wall-clock speed, never any modeled number.
    snapshot:
        Attach the incrementally-maintained CSR analytics snapshot
        (:class:`~repro.engine.snapshot.AnalyticsSnapshot`) at
        construction, turning the engine's incremental / vertex-centric
        frontier loads into single vectorized gathers.  Same contract as
        ``kernel``: bit-identical results and bit-identical modeled
        ``AccessStats`` with the feature on or off — only wall-clock
        changes (the analytics oracle in tests/test_differential.py
        enforces this).
    """

    pagewidth: int = DEFAULT_PAGEWIDTH
    subblock: int = DEFAULT_SUBBLOCK
    workblock: int = DEFAULT_WORKBLOCK
    enable_rhh: bool = True
    enable_sgh: bool = True
    enable_cal: bool = True
    cal_group_width: int = DEFAULT_CAL_GROUP_WIDTH
    cal_block_size: int = DEFAULT_CAL_BLOCK_SIZE
    compact_on_delete: bool = False
    max_generations: int = DEFAULT_MAX_GENERATIONS
    initial_vertices: int = 16
    seed: int = 0x9E3779B9
    kernel: str = "vector"
    snapshot: bool = False

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.pagewidth):
            raise ConfigError(f"pagewidth must be a power of two, got {self.pagewidth}")
        if not _is_power_of_two(self.subblock):
            raise ConfigError(f"subblock must be a power of two, got {self.subblock}")
        if not _is_power_of_two(self.workblock):
            raise ConfigError(f"workblock must be a power of two, got {self.workblock}")
        if self.subblock > self.pagewidth:
            raise ConfigError("subblock size cannot exceed pagewidth")
        if self.workblock > self.subblock:
            raise ConfigError("workblock size cannot exceed subblock size")
        if self.pagewidth % self.subblock:
            raise ConfigError("subblock must divide pagewidth")
        if self.subblock % self.workblock:
            raise ConfigError("workblock must divide subblock")
        if self.cal_group_width <= 0:
            raise ConfigError("cal_group_width must be positive")
        if self.cal_block_size <= 0:
            raise ConfigError("cal_block_size must be positive")
        if self.max_generations <= 0:
            raise ConfigError("max_generations must be positive")
        if self.initial_vertices <= 0:
            raise ConfigError("initial_vertices must be positive")
        if self.kernel not in ("scalar", "vector"):
            raise ConfigError(f"unknown kernel {self.kernel!r} (expected 'scalar' or 'vector')")

    @property
    def subblocks_per_block(self) -> int:
        """Number of Subblocks in one edgeblock."""
        return self.pagewidth // self.subblock

    @property
    def workblocks_per_subblock(self) -> int:
        """Number of Workblocks the load unit fetches per Subblock scan."""
        return self.subblock // self.workblock

    def with_(self, **changes: Any) -> "GTConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class StingerConfig:
    """Configuration of the STINGER baseline (Sec. V.A: edgeblock size 16).

    ``snapshot`` attaches the CSR analytics snapshot, exactly as on
    :class:`GTConfig` — bit-identical results and modeled costs, faster
    wall-clock frontier gathers.
    """

    edgeblock_size: int = DEFAULT_STINGER_EDGEBLOCK
    initial_vertices: int = 16
    snapshot: bool = False

    def __post_init__(self) -> None:
        if self.edgeblock_size <= 0:
            raise ConfigError("edgeblock_size must be positive")
        if self.initial_vertices <= 0:
            raise ConfigError("initial_vertices must be positive")


#: Degree-tiered backend defaults: inline rows up to degree 4, small
#: open-addressing sets up to 32, hash tables beyond — with a hysteresis
#: band of 2 so a vertex oscillating around a threshold does not thrash.
DEFAULT_TIER_TAU1 = 4
DEFAULT_TIER_TAU2 = 32
DEFAULT_TIER_HYSTERESIS = 2


@dataclass(frozen=True)
class TieredConfig:
    """Configuration of the degree-tiered :class:`~repro.core.tiered.TieredStore`.

    Parameters
    ----------
    tau1:
        Inline-tier degree ceiling.  A vertex is *promoted* from the
        inline array (tier 0) to the small open-addressing set (tier 1)
        when an insert pushes its degree above ``tau1``.
    tau2:
        Small-set degree ceiling; crossing it promotes the vertex to the
        large hash table (tier 2).
    hysteresis:
        Demotion slack.  A vertex only drops a tier once its degree falls
        to ``tau - hysteresis`` (not the moment it dips below ``tau``),
        so churn oscillating around a threshold cannot thrash
        promote/demote rebuilds.  Must satisfy ``1 <= hysteresis <= tau1``.
    initial_vertices:
        Source-id table slots pre-allocated (grown on demand).
    snapshot:
        Attach the CSR analytics snapshot at construction — the same
        charge-mirror contract as on :class:`GTConfig` /
        :class:`StingerConfig`.
    """

    tau1: int = DEFAULT_TIER_TAU1
    tau2: int = DEFAULT_TIER_TAU2
    hysteresis: int = DEFAULT_TIER_HYSTERESIS
    initial_vertices: int = 16
    snapshot: bool = False

    def __post_init__(self) -> None:
        if self.tau1 < 1:
            raise ConfigError(f"tau1 must be >= 1, got {self.tau1}")
        if self.tau2 <= self.tau1:
            raise ConfigError(
                f"tau2 must exceed tau1, got tau1={self.tau1} tau2={self.tau2}")
        if not (1 <= self.hysteresis <= self.tau1):
            raise ConfigError(
                f"hysteresis must be in [1, tau1], got {self.hysteresis}")
        if self.initial_vertices <= 0:
            raise ConfigError("initial_vertices must be positive")

    def with_(self, **changes: Any) -> "TieredConfig":
        """Return a copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)


#: Process-per-shard store defaults.  Two shards keep the conformance
#: suite cheap while still exercising cross-shard routing; production
#: runs size ``n_shards`` to the core count.
DEFAULT_SHARDS = 2


@dataclass(frozen=True)
class ShardedConfig:
    """Configuration of the process-per-shard
    :class:`~repro.core.sharded.ShardedStore`.

    Parameters
    ----------
    n_shards:
        Worker-process count.  Each shard owns the vertices that
        consistent-hash to it (``repro.core.hashing.partition_of``) and
        runs a full Store-protocol backend of its own.
    backend:
        Registry name of the per-shard backend
        (:func:`repro.core.store.create_store`); any registered backend
        other than ``"sharded"`` itself is legal.
    seed:
        Seed of the consistent-hash router.  Two sharded stores agree on
        vertex placement iff their seeds agree.
    snapshot:
        Attach the CSR analytics snapshot at construction — the same
        charge-mirror contract as on :class:`GTConfig`.

    All fields are JSON primitives so checkpoints can embed the config
    verbatim (see :mod:`repro.workloads.persistence`).
    """

    n_shards: int = DEFAULT_SHARDS
    backend: str = "graphtinker"
    seed: int = 0
    snapshot: bool = False

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.backend == "sharded":
            raise ConfigError("sharded shards cannot nest sharded backends")
        if not self.backend:
            raise ConfigError("backend name must be non-empty")

    def with_(self, **changes: Any) -> "ShardedConfig":
        """Return a copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class EngineConfig:
    """Hybrid graph-engine configuration (Sec. IV.B).

    ``predictor`` selects the Inference-Box heuristic:

    * ``"ratio"`` — the paper's published formula, T = A / E (active
      vertices over edges loaded), against ``threshold``.
    * ``"degree"`` — the paper's stated future-work heuristic: T' = D / E
      where D is the *total out-degree* of the active vertices, i.e. the
      actual number of edges an incremental iteration would touch.  The
      same ``threshold`` semantics apply (FP when T' exceeds it), but a
      degree-calibrated threshold should be supplied — see
      ``CostModel.hybrid_threshold_degree``.
    """

    threshold: float = DEFAULT_HYBRID_THRESHOLD
    max_iterations: int = 1_000_000
    predictor: str = "ratio"

    def __post_init__(self) -> None:
        if not (0.0 < self.threshold < 1.0):
            raise ConfigError("threshold must lie strictly between 0 and 1")
        if self.max_iterations <= 0:
            raise ConfigError("max_iterations must be positive")
        if self.predictor not in ("ratio", "degree"):
            raise ConfigError(f"unknown predictor {self.predictor!r}")
