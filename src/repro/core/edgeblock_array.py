"""The EdgeblockArray: main + overflow regions with Tree-Based Hashing.

This is GraphTinker's primary store (paper Sec. III.B).  The *main region*
has one top-parent edgeblock per (SGH-densified) source vertex.  Each
edgeblock is split into Subblocks; a congested Subblock "branches out" into
a child edgeblock living in the *overflow region*, whose Subblocks can
branch out in turn.  Descending the branch chain re-hashes the destination
id with a generation-dependent hash so edges fan out, which is what gives
the O(log n) expected probe behaviour versus an adjacency list's O(n).

Both regions are flat :class:`~repro.core.pool.BlockPool`s (one structured
NumPy array each); Subblock->child links are flat ``int32`` matrices grown
in lockstep with the pools.  Nothing here allocates per-edge Python
objects.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core import robin_hood as rhh
from repro.core.config import GTConfig
from repro.core.hashing import initial_bucket, subblock_index
from repro.core.pool import EMPTY, TOMBSTONE, EDGE_CELL_DTYPE, BlockPool, blank_edge_cells
from repro.core.stats import AccessStats
from repro.errors import CapacityError

#: Region tags inside an :class:`EdgeLocation`.
MAIN = 0
OVERFLOW = 1


class EdgeLocation(tuple):
    """Physical address of an edge-cell: ``(region, block, slot)``."""

    __slots__ = ()

    def __new__(cls, region: int, block: int, slot: int):
        return super().__new__(cls, (region, block, slot))

    @property
    def region(self) -> int:
        return self[0]

    @property
    def block(self) -> int:
        return self[1]

    @property
    def slot(self) -> int:
        return self[2]


class _ChildMatrix:
    """Growable ``int32`` matrix of Subblock->child-edgeblock pointers."""

    __slots__ = ("_data", "n_subblocks")

    def __init__(self, n_subblocks: int, initial_rows: int = 4):
        self.n_subblocks = n_subblocks
        self._data = np.full((initial_rows, n_subblocks), -1, dtype=np.int32)

    def ensure(self, rows: int) -> None:
        cap = self._data.shape[0]
        if rows <= cap:
            return
        new_cap = cap
        while new_cap < rows:
            new_cap *= 2
        grown = np.full((new_cap, self.n_subblocks), -1, dtype=np.int32)
        grown[:cap] = self._data
        self._data = grown

    def get(self, block: int, sb: int) -> int:
        return int(self._data[block, sb])

    def set(self, block: int, sb: int, child: int) -> None:
        self.ensure(block + 1)
        self._data[block, sb] = child

    def clear_row(self, block: int) -> None:
        self._data[block, :] = -1

    def row(self, block: int) -> np.ndarray:
        return self._data[block]


class EdgeblockArray:
    """Hierarchical edge store for one GraphTinker instance.

    All ``src`` arguments here are *dense* (SGH-hashed) source ids; the
    original<->dense translation happens one layer up in the facade.
    """

    def __init__(self, config: GTConfig, stats: AccessStats | None = None):
        self.config = config
        self.stats = stats if stats is not None else AccessStats()
        self._rhh_on = config.enable_rhh and not config.compact_on_delete
        pw = config.pagewidth
        self.main = BlockPool(pw, EDGE_CELL_DTYPE, blank_edge_cells, config.initial_vertices)
        self.overflow = BlockPool(pw, EDGE_CELL_DTYPE, blank_edge_cells, 4)
        nsb = config.subblocks_per_block
        self._main_children = _ChildMatrix(nsb, config.initial_vertices)
        self._overflow_children = _ChildMatrix(nsb, 4)
        self._n_vertices = 0
        #: live (non-tombstone) edges per dense source id, grown on demand.
        self._degrees = np.zeros(config.initial_vertices, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # vertex rows
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Dense source vertices with an allocated top-parent edgeblock."""
        return self._n_vertices

    @property
    def n_edges(self) -> int:
        """Total live edges across all vertices."""
        return int(self._degrees[: self._n_vertices].sum())

    def degree(self, src: int) -> int:
        """Live out-degree of dense source ``src`` (0 if row not allocated)."""
        if src >= self._n_vertices:
            return 0
        return int(self._degrees[src])

    def degrees_view(self) -> np.ndarray:
        """Degrees of all dense vertices (read-only view)."""
        view = self._degrees[: self._n_vertices]
        view.flags.writeable = False
        return view

    def ensure_vertex(self, src: int) -> None:
        """Allocate main-region rows up to and including dense id ``src``.

        SGH hands out dense ids in order, so in practice this allocates at
        most one new row per call; the loop covers SGH-disabled setups
        where raw ids index the main region directly.
        """
        while self._n_vertices <= src:
            row = self.main.allocate()
            assert row == self._n_vertices, "main region rows must stay dense"
            self._main_children.ensure(row + 1)
            if self._n_vertices >= self._degrees.shape[0]:
                grown = np.zeros(self._degrees.shape[0] * 2, dtype=np.int64)
                grown[: self._degrees.shape[0]] = self._degrees
                self._degrees = grown
            self._n_vertices += 1

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _children(self, region: int) -> _ChildMatrix:
        return self._main_children if region == MAIN else self._overflow_children

    def _pool(self, region: int) -> BlockPool:
        return self.main if region == MAIN else self.overflow

    def _subblock_cells(self, region: int, block: int, sb: int) -> np.ndarray:
        size = self.config.subblock
        return self._pool(region).view(block, sb * size, (sb + 1) * size)

    def _descend(self, region: int, block: int, sb: int, allocate: bool) -> tuple[int, int] | None:
        """Follow (or create) the child pointer of a Subblock."""
        children = self._children(region)
        child = children.get(block, sb)
        if child < 0:
            if not allocate:
                return None
            child = self.overflow.allocate()
            self._overflow_children.ensure(child + 1)
            self._overflow_children.clear_row(child)
            children.set(block, sb, child)
            self.stats.branch_allocations += 1
        self.stats.branch_descents += 1
        return OVERFLOW, child

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def insert(
        self,
        src: int,
        dst: int,
        weight: float = 1.0,
        cal_block: int = -1,
        cal_slot: int = -1,
    ) -> tuple[bool, EdgeLocation]:
        """Insert or update edge ``(src, dst)``.

        Returns ``(is_new, location)`` where ``location`` addresses the
        cell now holding the *argument* edge.  Robin Hood displacement may
        push some other resident edge down into a child edgeblock; that
        cascade is resolved here and is invisible to the caller.

        Per the paper's two-mode design, the FIND stage runs over the
        *entire* descent chain first (the existing copy of a duplicate
        may live at any generation); only when it fails does the INSERT
        stage place a new edge.  Interleaving the stages per Subblock
        would let a duplicate be placed at a shallower generation than
        its existing copy.
        """
        cfg = self.config
        self.ensure_vertex(src)

        # --- FIND stage across all generations. --------------------------
        existing = self.find(src, dst)
        if existing is not None:
            row = self._pool(existing.region).row(existing.block)
            row["weight"][existing.slot] = float(weight)
            self.stats.workblock_writebacks += 1
            return False, existing

        # --- INSERT stage: descend, placing via RHH / Tree-Based Hashing.
        region, block = MAIN, src
        nsb = cfg.subblocks_per_block
        f_dst, f_weight = int(dst), float(weight)
        f_cal_block, f_cal_slot = cal_block, cal_slot
        arg_location: EdgeLocation | None = None
        for gen in range(cfg.max_generations):
            sb = subblock_index(f_dst, gen, nsb, cfg.seed)
            cells = self._subblock_cells(region, block, sb)
            ib = initial_bucket(f_dst, gen, cfg.subblock, cfg.seed)
            res = rhh.rhh_insert(
                cells, f_dst, f_weight, ib, cfg.workblock, self.stats,
                self._rhh_on, f_cal_block, f_cal_slot,
            )
            assert res.status != rhh.UPDATED, "FIND stage already ruled out duplicates"
            if res.status == rhh.INSERTED:
                if arg_location is None:
                    arg_location = EdgeLocation(region, block, sb * cfg.subblock + res.slot)
                self._degrees[src] += 1
                self.stats.edges_inserted += 1
                return True, arg_location
            # CONGESTED: the argument edge may have been placed via a swap.
            if arg_location is None and res.slot >= 0:
                arg_location = EdgeLocation(region, block, sb * cfg.subblock + res.slot)
            region, block = self._descend(region, block, sb, allocate=True)
            f_dst = res.overflow_dst
            f_weight = res.overflow_weight
            f_cal_block = res.overflow_cal_block
            f_cal_slot = res.overflow_cal_slot
        raise CapacityError(
            f"edge ({src}, {dst}) exceeded max_generations={cfg.max_generations}"
        )

    def find(self, src: int, dst: int) -> EdgeLocation | None:
        """Locate edge ``(src, dst)``; ``None`` if absent."""
        cfg = self.config
        if src >= self._n_vertices:
            return None
        region, block = MAIN, src
        nsb = cfg.subblocks_per_block
        dst = int(dst)
        for gen in range(cfg.max_generations):
            sb = subblock_index(dst, gen, nsb, cfg.seed)
            cells = self._subblock_cells(region, block, sb)
            ib = initial_bucket(dst, gen, cfg.subblock, cfg.seed)
            slot = rhh.rhh_find(cells, dst, ib, cfg.workblock, self.stats, self._rhh_on)
            if slot >= 0:
                self.stats.edges_found += 1
                return EdgeLocation(region, block, sb * cfg.subblock + slot)
            nxt = self._descend(region, block, sb, allocate=False)
            if nxt is None:
                return None
            region, block = nxt
        return None

    def get_weight(self, location: EdgeLocation) -> float:
        """Weight stored at a cell previously returned by :meth:`find`."""
        return float(self._pool(location.region).row(location.block)["weight"][location.slot])

    def set_cal_pointer(self, location: EdgeLocation, cal_block: int, cal_slot: int) -> None:
        """Write an edge's CAL-pointer after its CAL copy was appended."""
        row = self._pool(location.region).row(location.block)
        row["cal_block"][location.slot] = cal_block
        row["cal_slot"][location.slot] = cal_slot

    def get_cal_pointer(self, location: EdgeLocation) -> tuple[int, int]:
        """Read an edge's CAL-pointer ``(block, slot)``."""
        row = self._pool(location.region).row(location.block)
        return int(row["cal_block"][location.slot]), int(row["cal_slot"][location.slot])

    def delete(self, src: int, dst: int) -> tuple[int, int] | None:
        """Delete edge ``(src, dst)``.

        Returns the edge's CAL-pointer (so the facade can invalidate the
        CAL copy) or ``None`` if the edge was absent.  With
        ``compact_on_delete`` the hole is refilled by pulling an edge up
        from the deepest descendant edgeblock, shrinking the tree.
        """
        cfg = self.config
        if src >= self._n_vertices:
            return None
        region, block = MAIN, src
        nsb = cfg.subblocks_per_block
        dst = int(dst)
        for gen in range(cfg.max_generations):
            sb = subblock_index(dst, gen, nsb, cfg.seed)
            cells = self._subblock_cells(region, block, sb)
            ib = initial_bucket(dst, gen, cfg.subblock, cfg.seed)
            slot = rhh.rhh_find(cells, dst, ib, cfg.workblock, self.stats, self._rhh_on)
            if slot >= 0:
                cal_ptr = (int(cells["cal_block"][slot]), int(cells["cal_slot"][slot]))
                cells["dst"][slot] = TOMBSTONE
                cells["cal_block"][slot] = -1
                cells["cal_slot"][slot] = -1
                self.stats.workblock_writebacks += 1
                self.stats.tombstones_set += 1
                self._degrees[src] -= 1
                self.stats.edges_deleted += 1
                if cfg.compact_on_delete:
                    self._compact_hole(region, block, sb, sb * cfg.subblock + slot)
                return cal_ptr
            nxt = self._descend(region, block, sb, allocate=False)
            if nxt is None:
                return None
            region, block = nxt
        return None

    def _compact_hole(self, region: int, block: int, sb: int, cell_index: int) -> None:
        """Delete-and-compact: refill a hole from the child chain.

        Any edge in the child edgeblock of Subblock ``sb`` hashes to ``sb``
        at this generation (that is how it descended), so it may legally
        move up into the hole.  The move leaves a hole in the child, which
        is refilled recursively; emptied childless edgeblocks are freed
        back to the pool so the structure shrinks as the paper describes.
        """
        children = self._children(region)
        child = children.get(block, sb)
        row = self._pool(region).row(block)
        if child < 0:
            # No descendants: leave the cell truly empty so it is reusable.
            row["dst"][cell_index] = EMPTY
            return
        victim = self._last_occupied_cell(child)
        if victim < 0:
            # Child holds no live edges; prune it if it is a leaf.
            row["dst"][cell_index] = EMPTY
            self._try_free_leaf(region, block, sb, child)
            return
        child_row = self.overflow.row(child)
        row["dst"][cell_index] = child_row["dst"][victim]
        row["weight"][cell_index] = child_row["weight"][victim]
        row["probe"][cell_index] = 0
        row["cal_block"][cell_index] = child_row["cal_block"][victim]
        row["cal_slot"][cell_index] = child_row["cal_slot"][victim]
        child_row["dst"][victim] = TOMBSTONE
        child_row["cal_block"][victim] = -1
        child_row["cal_slot"][victim] = -1
        self.stats.compaction_moves += 1
        self.stats.random_block_reads += 1
        self.stats.workblock_writebacks += 2
        victim_sb = victim // self.config.subblock
        self._compact_hole(OVERFLOW, child, victim_sb, victim)
        self._try_free_leaf(region, block, sb, child)

    def _last_occupied_cell(self, overflow_block: int) -> int:
        """Index of the last live cell in an overflow block, or -1."""
        dsts = self.overflow.row(overflow_block)["dst"]
        occupied = np.flatnonzero(dsts >= 0)
        self.stats.random_block_reads += 1
        return int(occupied[-1]) if occupied.size else -1

    def _try_free_leaf(self, region: int, block: int, sb: int, child: int) -> None:
        """Free ``child`` if it has no live edges and no children."""
        dsts = self.overflow.row(child)["dst"]
        if (dsts >= 0).any():
            return
        if (self._overflow_children.row(child) >= 0).any():
            return
        self._children(region).set(block, sb, -1)
        self._overflow_children.clear_row(child)
        self.overflow.free(child)

    # ------------------------------------------------------------------ #
    # retrieval
    # ------------------------------------------------------------------ #
    def vertex_blocks(self, src: int) -> Iterator[np.ndarray]:
        """Yield every edgeblock row of ``src``'s branch tree (views).

        Each yielded row is charged as one random block read: incremental-
        mode analytics pays non-contiguous DRAM accesses per edgeblock,
        which is precisely the cost the hybrid engine trades off against
        CAL streaming.
        """
        if src >= self._n_vertices:
            return
        stack: list[tuple[int, int]] = [(MAIN, src)]
        while stack:
            region, block = stack.pop()
            self.stats.random_block_reads += 1
            # Inspecting a block touches every cell slot, occupied or not
            # — the DRAM-traffic reason wide PAGEWIDTHs hurt analytics.
            self.stats.cells_scanned += self.config.pagewidth
            yield self._pool(region).row(block)
            kids = self._children(region).row(block)
            for child in kids[kids >= 0]:
                stack.append((OVERFLOW, int(child)))

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(dst, weight)`` arrays of all live out-edges of ``src``."""
        dsts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for row in self.vertex_blocks(src):
            mask = row["dst"] >= 0
            if mask.any():
                dsts.append(row["dst"][mask].copy())
                weights.append(row["weight"][mask].copy())
        if not dsts:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        return np.concatenate(dsts), np.concatenate(weights)

    def iter_all_edges(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(src, dst_array, weight_array)`` over all dense vertices.

        This is the non-CAL retrieval path (used when CAL is disabled);
        every edgeblock visit is a random block read.
        """
        for src in range(self._n_vertices):
            dst, weight = self.neighbors(src)
            if dst.size:
                yield src, dst, weight

    def overflow_blocks_in_use(self) -> int:
        """Number of live overflow edgeblocks (shrinks under compaction)."""
        return self.overflow.n_used
