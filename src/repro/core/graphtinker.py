"""The GraphTinker facade — the paper's public data-structure API.

Ties together the Scatter-Gather Hashing unit, the EdgeblockArray (Robin
Hood + Tree-Based Hashing), the VertexPropertyArray and the Coarse
Adjacency List into the dynamic-graph store evaluated in the paper:

* :meth:`GraphTinker.insert_edge` / :meth:`insert_batch` — FIND-then-INSERT
  semantics; duplicate inserts update the weight in place (and the CAL
  copy through the edge's CAL-pointer).
* :meth:`delete_edge` / :meth:`delete_batch` — delete-only (tombstones) or
  delete-and-compact, per configuration.
* :meth:`neighbors`, :meth:`edges` — retrieval for analytics, from the
  EdgeblockArray (incremental path) or the CAL (streaming path).

All public methods speak *original* vertex ids; the SGH unit translates to
the dense internal id space (unless ``enable_sgh`` is off, in which case
original ids index the main region directly, reproducing the sparse-layout
behaviour the ablation of Sec. V.B measures).
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

import numpy as np

from repro.core import kernels
from repro.core.cal import CoarseAdjacencyList
from repro.core.config import GTConfig
from repro.core.edgeblock_array import EdgeblockArray
from repro.core.sgh import ScatterGatherHash
from repro.core.stats import AccessStats
from repro.core.vertex_array import VertexPropertyArray
from repro.errors import VertexNotFoundError
from repro.obs import hooks as obs_hooks


class GraphTinker:
    """A single-instance GraphTinker dynamic graph store.

    Parameters
    ----------
    config:
        Geometry and feature toggles; defaults follow the paper
        (PAGEWIDTH 64 / Subblock 8 / Workblock 4, SGH+CAL+RHH on).

    Examples
    --------
    >>> gt = GraphTinker()
    >>> gt.insert_edge(34, 22789, weight=2.5)
    True
    >>> gt.has_edge(34, 22789)
    True
    >>> gt.n_edges
    1
    """

    def __init__(self, config: GTConfig | None = None):
        self.config = config if config is not None else GTConfig()
        self.stats = AccessStats()
        self.sgh = ScatterGatherHash(self.stats) if self.config.enable_sgh else None
        self.eba = EdgeblockArray(self.config, self.stats)
        self.cal = CoarseAdjacencyList(self.config, self.stats) if self.config.enable_cal else None
        self.vpa = VertexPropertyArray(self.config.initial_vertices)
        self._analytics_snapshot = None
        if self.config.snapshot:
            self.enable_snapshot()

    # ------------------------------------------------------------------ #
    # analytics snapshot (engine acceleration; see repro.engine.snapshot)
    # ------------------------------------------------------------------ #
    def enable_snapshot(self):
        """Attach (and return) the incrementally-maintained CSR view.

        The engine's incremental / vertex-centric loads then become
        single vectorized gathers; results and modeled AccessStats are
        bit-identical either way (the snapshot's charge-mirror contract).
        Imported lazily so stores without the feature never load the
        engine package.
        """
        if self._analytics_snapshot is None:
            from repro.engine.snapshot import AnalyticsSnapshot

            self._analytics_snapshot = AnalyticsSnapshot(self)
        return self._analytics_snapshot

    def disable_snapshot(self) -> None:
        """Detach the CSR view (subsequent loads use the native paths)."""
        self._analytics_snapshot = None

    @property
    def analytics_snapshot(self):
        """The attached :class:`AnalyticsSnapshot`, or ``None``."""
        return self._analytics_snapshot

    def _snapshot_mark_batch(self, srcs: np.ndarray) -> None:
        """Mark a batch's touched dense rows dirty (uncharged bookkeeping)."""
        snap = self._analytics_snapshot
        if snap is None:
            return
        srcs = np.unique(np.asarray(srcs, dtype=np.int64))
        if self.sgh is not None:
            dense = self.sgh.peek_array(srcs)
            dense = dense[dense >= 0]
        else:
            dense = srcs[(srcs >= 0) & (srcs < self.eba.n_vertices)]
        snap.mark_dirty_many(dense)

    # ------------------------------------------------------------------ #
    # id translation
    # ------------------------------------------------------------------ #
    def _dense(self, src: int, create: bool) -> int | None:
        """Translate an original source id to the internal dense id."""
        if self.sgh is None:
            src = int(src)
            if src < 0 and not create:
                return None  # negative ids are always a lookup miss
            return src
        if create:
            return self.sgh.hash_id(src)
        return self.sgh.try_lookup(src)

    def dense_id(self, src: int) -> int:
        """Public translation original -> dense (raises if unknown)."""
        if self.sgh is None:
            return int(src)
        return self.sgh.lookup(src)

    def original_id(self, dense: int) -> int:
        """Public translation dense -> original."""
        if self.sgh is None:
            return int(dense)
        return self.sgh.original_id(dense)

    def original_ids(self, dense: np.ndarray) -> np.ndarray:
        """Vectorised dense -> original translation."""
        if self.sgh is None:
            return np.asarray(dense, dtype=np.int64)
        return self.sgh.original_ids(np.asarray(dense))

    # ------------------------------------------------------------------ #
    # snapshot row surface (repro.core.store protocol)
    # ------------------------------------------------------------------ #
    def dense_row_count(self) -> int:
        """Allocated dense EdgeblockArray rows (snapshot row space)."""
        return self.eba.n_vertices

    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Charged native walk of dense row ``row`` (the EBA tree walk)."""
        return self.eba.neighbors(row)

    @property
    def id_translator(self):
        """The SGH densifier (``None`` with ``enable_sgh=False``)."""
        return self.sgh

    @property
    def full_load_is_row_sweep(self) -> bool:
        """Without a CAL the FP load *is* the per-row EBA sweep; with one
        it streams from the CAL in insertion order instead."""
        return self.cal is None

    # ------------------------------------------------------------------ #
    # size properties
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Non-empty source vertices (vertices owning at least one row)."""
        return self.eba.n_vertices

    @property
    def n_edges(self) -> int:
        """Live directed edges currently stored."""
        return self.eba.n_edges

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_ids(src: int, dst: int) -> None:
        # Negative ids are reserved: the edge-cell encoding uses -1/-2 as
        # EMPTY/TOMBSTONE sentinels, so letting one in would corrupt the
        # structure silently.
        if src < 0 or dst < 0:
            raise ValueError(f"vertex ids must be non-negative, got ({src}, {dst})")

    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        """Insert edge ``(src, dst)``; update its weight if present.

        Returns ``True`` when the edge is new, ``False`` on an in-place
        update (the FIND stage succeeded).
        """
        self._validate_ids(src, dst)
        dense_src = self._dense(src, create=True)
        is_new, location = self.eba.insert(dense_src, dst, weight)
        if self._analytics_snapshot is not None:
            # Weight updates change row data too, so mark unconditionally.
            self._analytics_snapshot.mark_dirty(dense_src)
        if is_new:
            self.vpa.add_degree(dense_src, 1)
            if self.cal is not None:
                block, slot = self.cal.append(dense_src, dst, weight)
                self.eba.set_cal_pointer(location, block, slot)
        else:
            if self.cal is not None:
                block, slot = self.eba.get_cal_pointer(location)
                if block >= 0:
                    self.cal.update_weight(block, slot, weight)
        return is_new

    def _resolve_kernel(self, kernel: str | None) -> str:
        kern = self.config.kernel if kernel is None else kernel
        if kern not in ("scalar", "vector"):
            raise ValueError(f"unknown kernel {kern!r} (expected 'scalar' or 'vector')")
        return kern

    def insert_batch(
        self,
        edges: np.ndarray,
        weights: np.ndarray | None = None,
        kernel: str | None = None,
    ) -> int:
        """Insert an ``(n, 2)`` batch of edges; return the number of new ones.

        This is the paper's batch-update entry point (1M-edge batches in
        the evaluation).  Weights default to 1.0.  ``kernel`` overrides
        the configured batch implementation for this call; both kernels
        are event-identical (see :mod:`repro.core.kernels`), so the choice
        only affects wall-clock time.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        if edges.size and edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        kern = self._resolve_kernel(kernel)
        before = self.stats.snapshot() if obs_hooks.enabled else None
        t0 = time.perf_counter() if before is not None else 0.0
        # The scalar loop zips edges with weights, so a short weights array
        # silently truncates the batch; the vector path mirrors that.
        m = min(edges.shape[0], weights.shape[0])
        if kern == "vector" and m:
            new = kernels.insert_batch_vector(self, edges[:m], weights[:m])
            # The scalar path marks per-edge inside insert_edge; the
            # vector kernel mutates the arrays wholesale, so mark its
            # touched sources at batch granularity.
            self._snapshot_mark_batch(edges[:m, 0])
        else:
            new = self._insert_batch_scalar(edges, weights)
        if before is not None:
            obs_hooks.publish_store_delta("gt", self.stats.delta(before))
            obs_hooks.publish_ingest("insert", kern, int(edges.shape[0]),
                                     time.perf_counter() - t0)
        return new

    def _insert_batch_scalar(self, edges: np.ndarray, weights: np.ndarray) -> int:
        """Per-edge reference implementation of :meth:`insert_batch`."""
        new = 0
        srcs = edges[:, 0].tolist()
        dsts = edges[:, 1].tolist()
        wts = weights.tolist()
        for s, d, w in zip(srcs, dsts, wts):
            if self.insert_edge(s, d, w):
                new += 1
        return new

    def delete_edge(self, src: int, dst: int) -> bool:
        """Delete edge ``(src, dst)``; return whether it existed."""
        if int(dst) < 0:
            return False  # would collide with the EMPTY/TOMBSTONE cells
        dense_src = self._dense(src, create=False)
        if dense_src is None or dense_src >= self.eba.n_vertices:
            return False
        cal_ptr = self.eba.delete(dense_src, dst)
        if cal_ptr is None:
            return False
        if self._analytics_snapshot is not None:
            self._analytics_snapshot.mark_dirty(dense_src)
        self.vpa.add_degree(dense_src, -1)
        if self.cal is not None and cal_ptr[0] >= 0:
            if self.config.compact_on_delete:
                moved = self.cal.compact_delete(*cal_ptr)
                if moved is not None:
                    # The group's tail copy filled the hole; re-point the
                    # owning EdgeblockArray cell at the copy's new home.
                    m_src, m_dst, _, _ = moved
                    loc = self.eba.find(m_src, m_dst)
                    assert loc is not None, "CAL copy without an owner"
                    self.eba.set_cal_pointer(loc, *cal_ptr)
            else:
                self.cal.invalidate(*cal_ptr)
        return True

    def delete_batch(self, edges: np.ndarray, kernel: str | None = None) -> int:
        """Delete a batch of edges; return how many actually existed."""
        edges = np.asarray(edges, dtype=np.int64)
        kern = self._resolve_kernel(kernel)
        before = self.stats.snapshot() if obs_hooks.enabled else None
        t0 = time.perf_counter() if before is not None else 0.0
        # The vector delete kernel covers the delete-only (tombstoning)
        # mechanism; delete-and-compact couples sources through shared CAL
        # group tails, and an SGH-less store hands negative ids straight to
        # the block pool (which raises) — both take the scalar path so the
        # event stream stays identical by construction.
        use_vector = (
            kern == "vector"
            and not self.config.compact_on_delete
            and edges.ndim == 2
            and edges.shape[1] >= 2
            and edges.shape[0] > 0
            and not (self.sgh is None and bool(edges[:, 0].min() < 0))
        )
        if use_vector:
            deleted = kernels.delete_batch_vector(self, edges)
            self._snapshot_mark_batch(edges[:, 0])
        else:
            deleted = 0
            for s, d in zip(edges[:, 0].tolist(), edges[:, 1].tolist()):
                if self.delete_edge(s, d):
                    deleted += 1
        if before is not None:
            obs_hooks.publish_store_delta("gt", self.stats.delta(before))
            obs_hooks.publish_ingest("delete", kern, int(edges.shape[0]),
                                     time.perf_counter() - t0)
        return deleted

    def delete_vertex(self, src: int) -> int:
        """Delete every out-edge of ``src``; return how many existed.

        The vertex's SGH mapping and (now-empty) top-parent edgeblock
        persist — the dense id space never shrinks, so a reappearing
        source reuses its old row.  In-edges of ``src`` held by other
        vertices are untouched (this store indexes edges by source; use
        a symmetrised stream where undirected semantics are wanted).
        """
        dense_src = self._dense(src, create=False)
        if dense_src is None or dense_src >= self.eba.n_vertices:
            return 0
        dsts, _ = self.eba.neighbors(dense_src)
        deleted = 0
        for d in dsts.tolist():
            if self.delete_edge(src, int(d)):
                deleted += 1
        return deleted

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def has_edge(self, src: int, dst: int) -> bool:
        """FIND-mode lookup of a single edge."""
        if int(dst) < 0:
            return False  # would collide with the EMPTY/TOMBSTONE cells
        dense_src = self._dense(src, create=False)
        if dense_src is None:
            return False
        return self.eba.find(dense_src, dst) is not None

    def edge_weight(self, src: int, dst: int) -> float | None:
        """Weight of edge ``(src, dst)`` or ``None`` if absent."""
        if int(dst) < 0:
            return None  # would collide with the EMPTY/TOMBSTONE cells
        dense_src = self._dense(src, create=False)
        if dense_src is None:
            return None
        loc = self.eba.find(dense_src, dst)
        if loc is None:
            return None
        return self.eba.get_weight(loc)

    def degree(self, src: int) -> int:
        """Live out-degree of an original source id (0 if never seen)."""
        dense_src = self._dense(src, create=False)
        if dense_src is None:
            return 0
        return self.eba.degree(dense_src)

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-neighbours of ``src`` as ``(dst, weight)`` arrays.

        Retrieval walks the vertex's edgeblock tree in the EdgeblockArray
        (the incremental-processing load path).
        """
        dense_src = self._dense(src, create=False)
        if dense_src is None:
            raise VertexNotFoundError(src)
        return self.eba.neighbors(dense_src)

    def neighbors_dense(self, dense_src: int) -> tuple[np.ndarray, np.ndarray]:
        """Internal-id variant of :meth:`neighbors` (engine hot path)."""
        return self.eba.neighbors(dense_src)

    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched frontier gather: ``(src, dst, weight)`` for many sources.

        ``active`` is sanitized first (sorted unique, negatives dropped),
        so duplicate frontier ids never double-gather.  With the
        analytics snapshot attached this is one vectorized CSR gather;
        otherwise it falls back to the per-vertex loop.  Modeled
        AccessStats charges are bit-identical either way: one SGH probe
        per active id (the degree check) plus, per vertex with out-edges,
        one more probe and its edgeblock-tree walk.
        """
        from repro.engine.snapshot import gather_active_scalar, sanitize_active

        if self._analytics_snapshot is not None:
            return self._analytics_snapshot.gather_active(active)
        return gather_active_scalar(self, sanitize_active(active))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every live edge as ``(src, dst, weight)`` (original ids)."""
        for dense_src, dsts, weights in self.eba.iter_all_edges():
            src = self.original_id(dense_src)
            for d, w in zip(dsts.tolist(), weights.tolist()):
                yield src, int(d), float(w)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All live edges as ``(src, dst, weight)`` arrays, dense src ids.

        Uses the CAL streaming path when CAL is enabled (contiguous block
        reads), otherwise falls back to an EdgeblockArray sweep (random
        block reads) — the exact dichotomy the engine's mode choice is
        about.
        """
        if self.cal is not None:
            return self.cal.stream_edges()
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for dense_src, d, w in self.eba.iter_all_edges():
            srcs.append(np.full(d.shape[0], dense_src, dtype=np.int64))
            dsts.append(d)
            weights.append(w)
        if not srcs:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(weights)

    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`edge_arrays` but with *original* source ids.

        This is the engine's full-processing load path: one contiguous
        CAL stream plus one vectorised dense->original gather.
        """
        src, dst, weight = self.edge_arrays()
        return self.original_ids(src), dst, weight

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def memory_blocks(self) -> dict[str, int]:
        """Block occupancy per structure (for compaction diagnostics)."""
        out = {
            "main_edgeblocks": self.eba.main.n_used,
            "overflow_edgeblocks": self.eba.overflow.n_used,
        }
        if self.cal is not None:
            out["cal_blocks"] = self.cal.n_blocks
        return out

    def fsck(self, level: str = "full", repair: bool = False):
        """Audit (and optionally self-heal) this store's invariants.

        Thin convenience over :func:`repro.core.verify.verify_graph` /
        :func:`repro.core.verify.repair_graph`; imported lazily so the
        hot path never pays for the verifier module.
        """
        from repro.core import verify as _verify

        if repair:
            return _verify.repair_graph(self)
        return _verify.verify_graph(self, level=level)

    def check_invariants(self) -> None:
        """Internal consistency audit (used heavily by the test suite).

        Verifies that per-vertex degrees match the number of live cells in
        each vertex's edgeblock tree, and that the CAL live-edge count
        matches the EdgeblockArray's.
        """
        stats_backup = self.stats.snapshot()
        total = 0
        for dense_src in range(self.eba.n_vertices):
            dsts, _ = self.eba.neighbors(dense_src)
            if dsts.shape[0] != self.eba.degree(dense_src):
                raise AssertionError(
                    f"degree mismatch for dense vertex {dense_src}: "
                    f"{dsts.shape[0]} cells vs degree {self.eba.degree(dense_src)}"
                )
            if np.unique(dsts).shape[0] != dsts.shape[0]:
                raise AssertionError(f"duplicate edges for dense vertex {dense_src}")
            total += dsts.shape[0]
        if self.cal is not None and self.cal.n_edges != total:
            raise AssertionError(
                f"CAL holds {self.cal.n_edges} live copies but the "
                f"EdgeblockArray holds {total} live edges"
            )
        # Auditing must not perturb the access accounting.
        self.stats.reset()
        self.stats.merge(stats_backup)
