"""Deterministic integer hash mixers used across the data structures.

GraphTinker needs several *independent* hash functions:

* the Subblock selector of Tree-Based Hashing, which must produce a
  different Subblock choice at every branch-out generation so congested
  edges spread out in child edgeblocks (paper Sec. III.B, "rehashing is
  done again"), and
* the initial-bucket function of Robin Hood Hashing inside a Subblock.

We use a Fibonacci/xorshift-style 64-bit mixer (splitmix64 finalizer).
It is cheap, stateless, deterministic across runs, and has good avalanche
behaviour, so probe-distance statistics are stable between machines.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1

#: splitmix64 finalizer constants.
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB


def mix64(value: int, seed: int = 0) -> int:
    """Return a well-mixed 64-bit hash of ``value`` under ``seed``.

    ``seed`` selects one member of a family of independent hash functions;
    Tree-Based Hashing passes the branch generation as part of the seed.
    """
    z = (value + seed + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * _C1) & _MASK64
    z = ((z ^ (z >> 27)) * _C2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def mix64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`mix64` over an integer array (uint64 result)."""
    z = values.astype(np.uint64, copy=True)
    z += np.uint64((seed + 0x9E3779B97F4A7C15) & _MASK64)
    z ^= z >> np.uint64(30)
    z *= np.uint64(_C1)
    z ^= z >> np.uint64(27)
    z *= np.uint64(_C2)
    z ^= z >> np.uint64(31)
    return z


def subblock_index(dst: int, generation: int, n_subblocks: int, seed: int) -> int:
    """Tree-Based-Hashing Subblock selector.

    The paper parameterises this user-defined hash by the edgeblock
    PAGEWIDTH (implicitly, via the number of subblocks) and the destination
    vertex id; the generation term re-randomises the choice after each
    branch-out so a congested cohort of edges fans out in the child.
    """
    return mix64(dst, seed ^ (generation * 0x51ED2701)) % n_subblocks


def initial_bucket(dst: int, generation: int, subblock_size: int, seed: int) -> int:
    """Robin-Hood initial bucket of an edge within its Subblock."""
    return mix64(dst, ~seed & _MASK64 ^ (generation * 0xA24BAED4)) % subblock_size


def subblock_index_array(dsts: np.ndarray, generation: int, n_subblocks: int, seed: int) -> np.ndarray:
    """Vectorised :func:`subblock_index` (returns int64 subblock ids).

    Bit-identical to the scalar form for every element: both feed the same
    effective seed ``seed ^ (generation * 0x51ED2701)`` into the splitmix64
    finalizer and reduce modulo ``n_subblocks``.
    """
    mixed = mix64_array(dsts.astype(np.int64), (seed ^ (generation * 0x51ED2701)) & _MASK64)
    return (mixed % np.uint64(n_subblocks)).astype(np.int64)


def initial_bucket_array(dsts: np.ndarray, generation: int, subblock_size: int, seed: int) -> np.ndarray:
    """Vectorised :func:`initial_bucket` (returns int64 bucket offsets)."""
    mixed = mix64_array(dsts.astype(np.int64), (~seed & _MASK64 ^ (generation * 0xA24BAED4)) & _MASK64)
    return (mixed % np.uint64(subblock_size)).astype(np.int64)


def partition_of(src: int, n_partitions: int, seed: int = 0) -> int:
    """Interval selector for parallel GraphTinker instances (Sec. III.D)."""
    return mix64(src, seed ^ 0x6A09E667) % n_partitions


def partition_of_array(src: np.ndarray, n_partitions: int, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`partition_of` (returns int64 partition ids)."""
    mixed = mix64_array(src.astype(np.int64), (seed ^ 0x6A09E667) & _MASK64)
    return (mixed % np.uint64(n_partitions)).astype(np.int64)
