"""Vectorized batch-ingest kernels (the ``kernel="vector"`` fast path).

Equivalence contract
--------------------
For ANY input stream, the kernels here leave the store *event-identical*
to the scalar per-edge path of :class:`~repro.core.graphtinker.GraphTinker`:
the same live edges in the same physical Robin-Hood slots, the same CAL
block layout, the same degrees, and **bit-identical**
:class:`~repro.core.stats.AccessStats` — so the DRAM-access cost model
(:mod:`repro.bench.costmodel`) cannot tell the kernels apart.  Everything
the cost model or any query can observe is part of the contract; the only
licensed difference is which *overflow-pool row index* a child edgeblock
happens to get (an internal name the structure never exposes — counts,
shapes, contents and all future charges are invariant under it).
``tests/test_kernels.py`` and ``tests/test_differential.py`` enforce this.

Where the speed comes from
--------------------------
The scalar path pays per-edge Python overhead five ways: a facade call
chain, SGH dict traffic, two splitmix64 evaluations, structured-scalar
NumPy cell reads inside :func:`~repro.core.robin_hood.rhh_insert` (one
``tolist`` per *probe sequence*), and per-op ``AccessStats`` attribute
updates.  The vector kernel amortises all five:

1. **Bulk renaming** — ``np.unique`` collapses the batch to its distinct
   sources; :meth:`~repro.core.sgh.ScatterGatherHash.hash_id` runs once
   per distinct source **in first-appearance order** (so dense ids come
   out exactly as the scalar stream would assign them) and the remaining
   per-edge lookup charges are added arithmetically.
2. **Bulk hashing** — generation-0 Subblock indices and initial buckets
   for the whole batch in two :func:`~repro.core.hashing.mix64_array`
   sweeps.
3. **Grouping** — a stable lexsort by ``(dense source, gen-0 Subblock)``.
   Two operations can touch a common edge-cell only if they agree on the
   source *and* on every hash along the descent chain — which implies the
   same gen-0 Subblock — so these groups are mutually independent op
   sequences, and the stable sort preserves each group's internal stream
   order.  Replaying groups one after another therefore reproduces the
   scalar event order exactly.  (Sorting by target *workblock* inside a
   source, as a naive reading suggests, would reorder ops that share a
   Subblock and break placement identity; the Subblock is the true
   independence boundary.)
4. **List-cached probing** — each touched Subblock is pulled into plain
   Python lists once (five bulk ``tolist`` calls) and all Robin-Hood
   probes run against the cache via
   :func:`~repro.core.robin_hood.rhh_find_lists` /
   :func:`~repro.core.robin_hood.rhh_insert_lists`; charges accumulate in
   local ints and flush into ``AccessStats`` once per chunk.  Dirty
   Subblocks write back with one slice assignment per field.
5. **Stream-ordered CAL replay** — new edges get a *pending* CAL-pointer
   sentinel (``cal_block == -3``, ``cal_slot == record id``) that travels
   through Robin-Hood displacements exactly like a real pointer; after
   the chunk, the pending records are appended to the CAL **in original
   stream order** (run-length batched by :meth:`CoarseAdjacencyList.
   append_many`), and a patch pass rewrites the sentinels to the real
   addresses before writeback.  Duplicate ops that meet a pending cell
   update the pending record (one ``cal_updates`` charge, like the
   scalar ``update_weight``) so the final CAL weight is the last one.

Large batches are processed in contiguous chunks so the Subblock cache
stays bounded; chunking composes trivially (the scalar path is itself a
sequence of per-edge chunks).

Delete batches vectorise the delete-only mechanism the same way.  The
delete-and-compact configuration is *not* vectorised: compaction couples
arbitrary sources through shared CAL group tails (``compact_delete`` can
move another vertex's copy and re-point it via a cross-source ``find``),
so the facade falls back to the scalar per-edge path there — equivalence
by construction rather than by mirroring.
"""

from __future__ import annotations

import numpy as np

from repro.core import robin_hood as rhh
from repro.core.edgeblock_array import MAIN, OVERFLOW
from repro.core.hashing import (
    initial_bucket,
    initial_bucket_array,
    subblock_index,
    subblock_index_array,
)
from repro.errors import CapacityError

#: ``cal_block`` sentinel marking "CAL copy not appended yet; ``cal_slot``
#: holds the pending-record id".  Must stay distinct from the -1 (no copy)
#: marker and never escape the kernel: the patch pass rewrites every
#: sentinel before writeback, exceptional paths included.
PENDING_CAL = -3

#: Edges per processing chunk.  Bounds the Subblock list cache (worst case
#: one cache entry per edge) while keeping the per-chunk NumPy phase costs
#: well amortised.  Chunks are contiguous slices of the input stream, so
#: chunked execution composes into the same global event order.
CHUNK_EDGES = 32768


def _circular_workblocks_array(start: np.ndarray, length: np.ndarray,
                               workblock: int, size: int) -> np.ndarray:
    """Vectorized mirror of :func:`robin_hood._circular_workblocks`."""
    res = np.zeros(start.shape[0], dtype=np.int64)
    full = length >= size
    res[full] = size // workblock
    mid = (length > 0) & ~full
    s = start[mid]
    e = s + length[mid]
    r = np.empty(s.shape[0], dtype=np.int64)
    nw = e <= size
    r[nw] = (e[nw] - 1) // workblock - s[nw] // workblock + 1
    wr = ~nw
    first = (size - 1) // workblock - s[wr] // workblock + 1
    tail_last = e[wr] - size - 1
    second = tail_last // workblock + 1
    overlap = (tail_last // workblock) == (s[wr] // workblock)
    r[wr] = first + second - overlap
    res[mid] = r
    return res


def insert_batch_vector(gt, edges: np.ndarray, weights: np.ndarray) -> int:
    """Vector-kernel implementation of ``GraphTinker.insert_batch``.

    ``edges`` is a validated non-negative ``(n, 2)`` int64 array and
    ``weights`` a float64 array of the same length.  Returns the number
    of new edges, exactly as the scalar loop would.
    """
    n = edges.shape[0]
    new = 0
    for start in range(0, n, CHUNK_EDGES):
        stop = min(start + CHUNK_EDGES, n)
        new += _insert_chunk(gt, edges[start:stop], weights[start:stop])
    return new


def delete_batch_vector(gt, edges: np.ndarray) -> int:
    """Vector-kernel implementation of ``GraphTinker.delete_batch``.

    Only called for the delete-only (tombstoning) configuration; the
    facade routes ``compact_on_delete`` stores to the scalar path.
    """
    n = edges.shape[0]
    deleted = 0
    for start in range(0, n, CHUNK_EDGES):
        stop = min(start + CHUNK_EDGES, n)
        deleted += _delete_chunk(gt, edges[start:stop])
    return deleted


def _dense_ids_for_insert(gt, srcs: np.ndarray) -> np.ndarray:
    """Bulk original->dense renaming, assigning new ids like the stream would.

    One ``hash_id`` per distinct source, called in first-appearance order
    so new dense ids match the scalar assignment; the per-edge lookup
    charge for the remaining occurrences is added arithmetically
    (``hash_lookups`` is additive, so the total is bit-identical).
    """
    if gt.sgh is None:
        return srcs
    uniq, first_idx, inverse = np.unique(srcs, return_index=True, return_inverse=True)
    uniq_dense = np.empty(uniq.shape[0], dtype=np.int64)
    uniq_list = uniq.tolist()
    hash_id = gt.sgh.hash_id
    for pos in np.argsort(first_idx).tolist():
        uniq_dense[pos] = hash_id(uniq_list[pos])
    gt.stats.hash_lookups += srcs.shape[0] - uniq.shape[0]
    return uniq_dense[inverse]


class _SubblockCache:
    """Plain-list cache of touched Subblocks, written back once per chunk.

    Entries are ``(region, block, sb, dsts, weights, probes, cal_blocks,
    cal_slots)`` keyed by a packed int.  Entries are *copies*: pool growth
    (overflow allocation during branch-out) may reallocate the backing
    array mid-chunk, and the writeback re-fetches rows, so cached state is
    never invalidated by growth.
    """

    __slots__ = (
        "_cache", "dirty", "_eba", "_nsb", "_size", "_fields",
        "_mkey2row", "_mblocks", "_msbs", "_mD", "_mW", "_mP", "_mCB",
        "_mCS", "_mdirty", "_mdetached",
    )

    def __init__(self, eba, nsb: int, size: int):
        self._cache: dict[int, tuple] = {}
        self.dirty: dict[int, tuple] = {}
        self._eba = eba
        self._nsb = nsb
        self._size = size
        self._fields: dict[int, tuple] = {}
        self._mkey2row: dict[int, int] | None = None

    def _field_views(self, region: int) -> tuple:
        """Per-field 2-D views of a pool, re-fetched if the pool regrew.

        Field views are much cheaper to slice per load than structured
        rows, but overflow growth mid-chunk reallocates the backing array;
        the identity check on ``_data`` catches that (cached list entries
        themselves are copies, so they survive growth unharmed).
        """
        pool = self._eba.main if region == MAIN else self._eba.overflow
        data = pool._data
        views = self._fields.get(region)
        if views is None or views[0] is not data:
            views = (
                data,
                data["dst"],
                data["weight"],
                data["probe"],
                data["cal_block"],
                data["cal_slot"],
            )
            self._fields[region] = views
        return views

    def load(self, region: int, block: int, sb: int) -> tuple[int, tuple]:
        key = ((block << 1) | region) * self._nsb + sb
        entry = self._cache.get(key)
        if entry is None:
            m = self._mkey2row
            j = m.get(key) if m is not None else None
            if j is not None:
                # Detach the matrix row into list form: from here on the
                # lists are authoritative for this Subblock, the matrix
                # row is dead (excluded from the bulk writeback).
                entry = (
                    MAIN, block, sb,
                    self._mD[j].tolist(),
                    self._mW[j].tolist(),
                    self._mP[j].tolist(),
                    self._mCB[j].tolist(),
                    self._mCS[j].tolist(),
                )
                self._mdetached[j] = True
                self._cache[key] = entry
                if self._mdirty[j]:
                    # Carry the fast pass's modifications into the dirty
                    # set, or they would never be written back.
                    self.dirty[key] = entry
                return key, entry
            size = self._size
            _, fd, fw, fp, fcb, fcs = self._field_views(region)
            lo = sb * size
            hi = lo + size
            entry = (
                region,
                block,
                sb,
                fd[block, lo:hi].tolist(),
                fw[block, lo:hi].tolist(),
                fp[block, lo:hi].tolist(),
                fcb[block, lo:hi].tolist(),
                fcs[block, lo:hi].tolist(),
            )
            self._cache[key] = entry
        return key, entry

    def prefetch_main(self, blocks: np.ndarray, sbs: np.ndarray) -> None:
        """Bulk-load main-region Subblocks: one gather + ``tolist`` per field.

        Replaces tens of thousands of per-miss slice-and-convert round
        trips with five ``(k, subblock)`` fancy-index gathers — the chunk's
        gen-0 Subblock set is known up front from the grouping keys.
        """
        k = blocks.shape[0]
        if k == 0:
            return
        size = self._size
        _, fd, fw, fp, fcb, fcs = self._field_views(MAIN)
        rows = blocks[:, None]
        cols = (sbs * size)[:, None] + np.arange(size)
        d2 = fd[rows, cols].tolist()
        w2 = fw[rows, cols].tolist()
        p2 = fp[rows, cols].tolist()
        cb2 = fcb[rows, cols].tolist()
        cs2 = fcs[rows, cols].tolist()
        nsb = self._nsb
        cache = self._cache
        bl = blocks.tolist()
        sl = sbs.tolist()
        for j in range(k):
            b = bl[j]
            s = sl[j]
            cache[((b << 1) | MAIN) * nsb + s] = (
                MAIN, b, s, d2[j], w2[j], p2[j], cb2[j], cs2[j],
            )

    def attach_matrix(self, blocks: np.ndarray, sbs: np.ndarray,
                      D: np.ndarray, W: np.ndarray, P: np.ndarray,
                      CB: np.ndarray, CS: np.ndarray,
                      dirty_mask: np.ndarray | None = None) -> None:
        """Adopt pre-gathered ``(k, subblock)`` main-region field matrices.

        The matrices become the primary cache tier for their Subblocks:
        :meth:`load` detaches a row into list form only when the per-op
        loop actually touches it, and :meth:`writeback` scatters the
        still-attached dirty rows straight from the matrices — no list
        round trip for Subblocks only the fast pass handled.
        """
        nsb = self._nsb
        keys = ((blocks.astype(np.int64) << 1) | MAIN) * nsb + sbs
        self._mkey2row = dict(zip(keys.tolist(), range(keys.shape[0])))
        self._mblocks = blocks
        self._msbs = sbs
        self._mD = D
        self._mW = W
        self._mP = P
        self._mCB = CB
        self._mCS = CS
        k = blocks.shape[0]
        self._mdirty = dirty_mask if dirty_mask is not None else np.zeros(k, dtype=bool)
        self._mdetached = np.zeros(k, dtype=bool)

    def writeback(self) -> None:
        """Scatter every dirty Subblock back: one fancy store per field.

        Dirty keys are distinct ``(region, block, sb)`` triples, so the
        scatter indices never alias a cell twice; attached matrix rows and
        detached list entries partition the dirty set the same way.
        """
        size = self._size
        span = np.arange(size)
        if self._mkey2row is not None:
            m = self._mdirty & ~self._mdetached
            if m.any():
                _, fd, fw, fp, fcb, fcs = self._field_views(MAIN)
                rows = self._mblocks[m][:, None]
                cols = (self._msbs[m] * size)[:, None] + span
                fd[rows, cols] = self._mD[m]
                fw[rows, cols] = self._mW[m]
                fp[rows, cols] = self._mP[m]
                fcb[rows, cols] = self._mCB[m]
                fcs[rows, cols] = self._mCS[m]
        by_region: dict[int, list[tuple]] = {}
        for entry in self.dirty.values():
            by_region.setdefault(entry[0], []).append(entry)
        for region, entries in by_region.items():
            _, fd, fw, fp, fcb, fcs = self._field_views(region)
            rows = np.fromiter((e[1] for e in entries), np.int64, len(entries))[:, None]
            cols = np.fromiter((e[2] * size for e in entries), np.int64, len(entries))[:, None] + span
            fd[rows, cols] = [e[3] for e in entries]
            fw[rows, cols] = [e[4] for e in entries]
            fp[rows, cols] = [e[5] for e in entries]
            fcb[rows, cols] = [e[6] for e in entries]
            fcs[rows, cols] = [e[7] for e in entries]


def _insert_chunk(gt, edges: np.ndarray, weights: np.ndarray) -> int:
    cfg = gt.config
    stats = gt.stats
    eba = gt.eba
    cal = gt.cal
    n = edges.shape[0]
    if n == 0:
        return 0

    dense = _dense_ids_for_insert(gt, edges[:, 0])
    eba.ensure_vertex(int(dense.max()))

    nsb = cfg.subblocks_per_block
    size = cfg.subblock
    workblock = cfg.workblock
    seed = cfg.seed
    rhh_on = eba._rhh_on
    max_gen = cfg.max_generations

    dsts = edges[:, 1]
    sb0 = subblock_index_array(dsts, 0, nsb, seed)
    ib0 = initial_bucket_array(dsts, 0, size, seed)

    # Stable group order: (dense source, gen-0 Subblock), stream order
    # within a group (the arange tiebreak makes the sort fully explicit).
    order = np.lexsort((np.arange(n), sb0, dense))
    dense_s = dense[order]
    dst_s = dsts[order]
    w_s = weights[order]
    sb_s = sb0[order]
    ib_s = ib0[order]

    cache = _SubblockCache(eba, nsb, size)

    # Local charge accumulators, flushed into `stats` once per chunk.
    wf = cs = wb = swaps = found = inserted = cal_up = bd = 0
    # Pending CAL records as parallel lists (record id = list index).
    p_orig: list[int] = []
    p_src: list[int] = []
    p_dst: list[int] = []
    p_w: list[float] = []
    inflight_rid = -1  # pending record of an op that raised mid-cascade
    new_srcs: list[int] = []

    # ---- Gen-0 fast pass. ---------------------------------------------
    # Every group's gen-0 Subblock is known from the grouping keys; gather
    # them all as (k, subblock) field matrices with one fancy index per
    # field.  The first op of each group then sees exactly this pristine
    # state, so the dominant op shape — a gen-0 miss on a leaf Subblock
    # placed at the first vacancy without displacing anyone — can be
    # decided and executed for every group at once.  Any op that hits,
    # descends, swaps, or congests falls through to the exact per-op loop.
    gkey_s = dense_s * nsb + sb_s
    ukeys, first_pos = np.unique(gkey_s, return_index=True)
    blocks = ukeys // nsb
    sbs = ukeys % nsb
    span = np.arange(size)
    _, fd, fw, fp, fcb, fcs = cache._field_views(MAIN)
    rows = blocks[:, None]
    cols = (sbs * size)[:, None] + span
    D = fd[rows, cols]
    W = fw[rows, cols]
    P = fp[rows, cols]
    CB = fcb[rows, cols]
    CS = fcs[rows, cols]

    skip = np.zeros(n, dtype=bool)
    g = ukeys.shape[0]
    row_dirty = np.zeros(g, dtype=bool)
    f_sel = slot_f = None  # kept for the CAL patch in the finally block
    if rhh_on and g:
        # Iterated rounds: round r handles each still-active group's r-th
        # op against the current matrix state, which is exactly the state
        # the scalar sequence would present to that op (all earlier ops of
        # the group were fast, and no other group touches the Subblock).
        # A group goes inactive at its first non-fast op — its remaining
        # ops fall to the per-op loop — or when its ops are exhausted.
        # Each fast op fills a cell, so a group survives at most
        # `size` placing rounds: the loop below is bounded, not heuristic.
        grp_end = np.append(first_pos[1:], n)
        cur = first_pos.copy()
        active = eba._main_children._data[blocks, sbs] < 0  # leaf groups only
        active &= cur < grp_end
        rows_acc: list[np.ndarray] = []
        slots_acc: list[np.ndarray] = []
        while True:
            cand = np.nonzero(active)[0]
            if cand.shape[0] == 0:
                break
            pos = cur[cand]
            c_dst = dst_s[pos]
            c_ib = ib_s[pos]
            # Roll each Subblock so column t is the t-th probed cell.
            roll = (c_ib[:, None] + span) % size
            Dr = D[cand[:, None], roll]
            Pr = P[cand[:, None], roll]
            hitm = Dr == c_dst[:, None]
            em = Dr == -1  # EMPTY
            vacm = em | (Dr == -2)  # EMPTY or TOMBSTONE
            t_hit = np.where(hitm.any(axis=1), hitm.argmax(axis=1), size)
            t_emp = np.where(em.any(axis=1), em.argmax(axis=1), size)
            t_vac = np.where(vacm.any(axis=1), vacm.argmax(axis=1), size)
            # Absent: empty stops the scan before dst, or a full scan finds
            # neither (no edge lives beyond an empty cell on its probe path
            # in RHH mode — the same invariant rhh_find relies on).
            miss = (t_emp < t_hit) | ((t_emp == size) & (t_hit == size))
            # Strict Robin Hood rule: a swap fires at step t iff the
            # resident's probe distance is < t.  Fast only if no swap
            # happens before the vacancy.
            noswap = ~((Pr < span) & (span < t_vac[:, None])).any(axis=1)
            fast = miss & noswap & (t_vac < size)
            if not fast.any():
                break
            f_rows = cand[fast]
            pos_f = pos[fast]
            tv_f = t_vac[fast]
            ib_f = c_ib[fast]
            t_scan = np.minimum(t_hit, t_emp)[fast]
            sl_f = np.where(t_scan < size, t_scan + 1, size)
            # FIND-stage charge, then the INSERT stage's (find_len, steps+1)
            # pair — identical arithmetic to _charge_scan on both passes.
            wf += int(_circular_workblocks_array(ib_f, sl_f, workblock, size).sum())
            wf += int(_circular_workblocks_array(
                ib_f, np.maximum(sl_f, tv_f + 1), workblock, size).sum())
            cs += int((2 * sl_f + tv_f + 1).sum())
            nf = f_rows.shape[0]
            wb += nf
            inserted += nf
            slots = (ib_f + tv_f) % size
            d_f = dst_s[pos_f]
            D[f_rows, slots] = d_f
            W[f_rows, slots] = w_s[pos_f]
            P[f_rows, slots] = tv_f
            s_l = dense_s[pos_f].tolist()
            if cal is not None:
                CB[f_rows, slots] = PENDING_CAL
                CS[f_rows, slots] = np.arange(nf) + len(p_orig)
                p_orig.extend(order[pos_f].tolist())
                p_src.extend(s_l)
                p_dst.extend(d_f.tolist())
                p_w.extend(w_s[pos_f].tolist())
            else:
                CB[f_rows, slots] = -1
                CS[f_rows, slots] = -1
            new_srcs.extend(s_l)
            skip[pos_f] = True
            row_dirty[f_rows] = True
            rows_acc.append(f_rows)
            slots_acc.append(slots)
            # Advance fast groups to their next op; retire the rest.
            active[cand[~fast]] = False
            cur[f_rows] += 1
            active[f_rows] = cur[f_rows] < grp_end[f_rows]
        if rows_acc:
            f_sel = np.concatenate(rows_acc)
            slot_f = np.concatenate(slots_acc)
    cache.attach_matrix(blocks, sbs, D, W, P, CB, CS, row_dirty)
    # Residue ops run in ORIGINAL stream order, not sorted order.  Cell
    # placements would come out the same either way (groups are disjoint
    # Subblocks, stream-ordered within), but branch-outs pull blocks from
    # the shared overflow pool: only the stream order hands each descent
    # the same block id the scalar loop would, keeping the physical
    # layout — not just the logical content — bit-identical.
    rem = np.flatnonzero(~skip)
    rsel = rem[np.argsort(order[rem], kind="stable")]
    l_src = dense_s[rsel].tolist()
    l_dst = dst_s[rsel].tolist()
    l_w = w_s[rsel].tolist()
    l_sb = sb_s[rsel].tolist()
    l_ib = ib_s[rsel].tolist()
    l_orig = order[rsel].tolist()

    load = cache.load
    dirty = cache.dirty
    find_lists = rhh.rhh_find_lists
    insert_lists = rhh.rhh_insert_lists
    circ = rhh._circular_workblocks
    descend = eba._descend
    INSERTED = rhh.INSERTED
    UPDATED = rhh.UPDATED
    # The main-region child matrix never regrows mid-chunk (capacity is
    # ensured per vertex row up front), so its backing array can be
    # hoisted; the overflow one can regrow and is re-read per descent.
    mchild = eba._main_children._data
    ochild = eba._overflow_children

    try:
        for i in range(len(l_src)):
            src = l_src[i]
            dst = l_dst[i]
            w = l_w[i]

            # ---- FIND stage across the whole descent chain (mirrors
            # EdgeblockArray.find called from EdgeblockArray.insert). ----
            region, block = MAIN, src
            hit = None
            for gen in range(max_gen):
                if gen:
                    sb = subblock_index(dst, gen, nsb, seed)
                    ib = initial_bucket(dst, gen, size, seed)
                else:
                    sb = l_sb[i]
                    ib = l_ib[i]
                key, entry = load(region, block, sb)
                slot, scanned = find_lists(entry[3], dst, ib, rhh_on)
                # Inlined no-wrap case of rhh._circular_workblocks.
                end = ib + scanned
                if 0 < scanned and end <= size:
                    wf += (end - 1) // workblock - ib // workblock + 1
                else:
                    wf += circ(ib, scanned, workblock, size)
                cs += scanned
                if slot >= 0:
                    hit = (key, entry, slot)
                    break
                # Inlined miss path of eba._descend(..., allocate=False).
                child = mchild[block, sb] if region == MAIN else ochild._data[block, sb]
                if child < 0:
                    break
                bd += 1
                region = OVERFLOW
                block = int(child)

            if hit is not None:
                # Duplicate: update the EBA weight in place, then the CAL
                # copy through the cell's pointer (or the pending record).
                found += 1
                key, entry, slot = hit
                entry[4][slot] = w
                wb += 1
                dirty[key] = entry
                if cal is not None:
                    cb = entry[6][slot]
                    if cb >= 0:
                        cal.update_weight(cb, entry[7][slot], w)
                    elif cb == PENDING_CAL:
                        p_w[entry[7][slot]] = w
                        cal_up += 1
                continue

            # ---- INSERT stage: descend, placing via RHH/TBH. ----------
            if cal is not None:
                f_cb = PENDING_CAL
                f_cs = len(p_orig)
                inflight_rid = f_cs
                p_orig.append(l_orig[i])
                p_src.append(src)
                p_dst.append(dst)
                p_w.append(w)
            else:
                f_cb = -1
                f_cs = -1
            f_dst = dst
            f_w = w
            region, block = MAIN, src
            placed = False
            for gen in range(max_gen):
                if gen:
                    sb = subblock_index(f_dst, gen, nsb, seed)
                    ib = initial_bucket(f_dst, gen, size, seed)
                else:
                    sb = l_sb[i]
                    ib = l_ib[i]
                key, entry = load(region, block, sb)
                status, slot, lengths, wrote, nswaps, o_dst, o_w, o_cb, o_cs = insert_lists(
                    entry[3], entry[4], entry[5], entry[6], entry[7],
                    f_dst, f_w, ib, rhh_on, f_cb, f_cs,
                )
                assert status != UPDATED, "FIND stage already ruled out duplicates"
                scanned = max(lengths)
                end = ib + scanned
                if 0 < scanned and end <= size:
                    wf += (end - 1) // workblock - ib // workblock + 1
                else:
                    wf += circ(ib, scanned, workblock, size)
                cs += sum(lengths)
                swaps += nswaps
                if wrote:
                    wb += 1
                    dirty[key] = entry
                if status == INSERTED:
                    new_srcs.append(src)
                    inserted += 1
                    placed = True
                    inflight_rid = -1
                    break
                region, block = descend(region, block, sb, True)
                f_dst = o_dst
                f_w = o_w
                f_cb = o_cb
                f_cs = o_cs
            if not placed:
                raise CapacityError(
                    f"edge ({src}, {dst}) exceeded max_generations={max_gen}"
                )
    finally:
        # Apply the deferred side effects and write the caches back even
        # when an op raised mid-chunk, so every *completed* op's state
        # lands exactly as the scalar path would have left it.
        if new_srcs:
            ns = np.asarray(new_srcs, dtype=np.int64)
            np.add.at(eba._degrees, ns, 1)
            gt.vpa.ensure(int(ns.max()))
            np.add.at(gt.vpa.degrees, ns, 1)

        if cal is not None and p_orig:
            # Replay the appends in original stream order (an op that
            # raised mid-cascade never reached its append — drop it).
            nrec = len(p_orig)
            live = np.arange(nrec)
            if 0 <= inflight_rid < nrec:
                live = live[live != inflight_rid]
            live = live[np.argsort(np.asarray(p_orig, dtype=np.int64)[live], kind="stable")]
            assigned_b = np.full(nrec, -1, dtype=np.int64)
            assigned_s = np.full(nrec, -1, dtype=np.int64)
            if live.shape[0]:
                pa_src = np.asarray(p_src, dtype=np.int64)[live]
                pa_dst = np.asarray(p_dst, dtype=np.int64)[live]
                pa_w = np.asarray(p_w, dtype=np.float64)[live]
                cal_blocks, cal_slots = cal.append_many(pa_src, pa_dst, pa_w)
                assigned_b[live] = cal_blocks
                assigned_s[live] = cal_slots
            # Patch the sentinels of still-attached fast rows in one
            # scatter: their record ids sit untouched in the CS matrix.
            if f_sel is not None:
                att = ~cache._mdetached[f_sel]
                if att.any():
                    r_att = f_sel[att]
                    s_att = slot_f[att]
                    rids = CS[r_att, s_att].astype(np.int64)
                    CB[r_att, s_att] = assigned_b[rids]
                    CS[r_att, s_att] = assigned_s[rids]
            # Patch every remaining pending sentinel (detached or loop-
            # touched entries; displacement may have moved one anywhere).
            ab_l = assigned_b.tolist()
            as_l = assigned_s.tolist()
            for entry in dirty.values():
                cbl = entry[6]
                if PENDING_CAL in cbl:
                    csl = entry[7]
                    for j in range(size):
                        if cbl[j] == PENDING_CAL:
                            rid = csl[j]
                            cbl[j] = ab_l[rid]
                            csl[j] = as_l[rid]

        cache.writeback()
        stats.workblock_fetches += wf
        stats.cells_scanned += cs
        stats.workblock_writebacks += wb
        stats.rhh_swaps += swaps
        stats.branch_descents += bd
        stats.edges_found += found
        stats.edges_inserted += inserted
        stats.cal_updates += cal_up
    return inserted


def _delete_chunk(gt, edges: np.ndarray) -> int:
    cfg = gt.config
    stats = gt.stats
    eba = gt.eba
    cal = gt.cal
    n = edges.shape[0]
    if n == 0:
        return 0

    srcs = edges[:, 0]
    dsts = edges[:, 1]
    if gt.sgh is not None:
        uniq, inverse = np.unique(srcs, return_inverse=True)
        uniq_dense = np.full(uniq.shape[0], -1, dtype=np.int64)
        try_lookup = gt.sgh.try_lookup
        for k, orig in enumerate(uniq.tolist()):
            v = try_lookup(orig)
            if v is not None:
                uniq_dense[k] = v
        stats.hash_lookups += n - uniq.shape[0]
        dense = uniq_dense[inverse]
    else:
        dense = srcs

    n_vertices = eba.n_vertices  # fixed: deletes never allocate rows
    valid = (dense >= 0) & (dense < n_vertices)
    if not valid.any():
        return 0
    dense = dense[valid]
    dsts = dsts[valid]
    m = dense.shape[0]

    nsb = cfg.subblocks_per_block
    size = cfg.subblock
    workblock = cfg.workblock
    seed = cfg.seed
    rhh_on = eba._rhh_on
    max_gen = cfg.max_generations

    sb0 = subblock_index_array(dsts, 0, nsb, seed)
    ib0 = initial_bucket_array(dsts, 0, size, seed)
    order = np.lexsort((np.arange(m), sb0, dense))
    l_src = dense[order].tolist()
    l_dst = dsts[order].tolist()
    l_sb = sb0[order].tolist()
    l_ib = ib0[order].tolist()

    cache = _SubblockCache(eba, nsb, size)
    ukey = np.unique(dense * nsb + sb0)
    cache.prefetch_main(ukey // nsb, ukey % nsb)
    load = cache.load
    dirty = cache.dirty
    find_lists = rhh.rhh_find_lists
    circ = rhh._circular_workblocks
    descend = eba._descend

    wf = cs = wb = tombs = edel = 0
    del_srcs: list[int] = []
    deleted = 0

    try:
        for i in range(m):
            src = l_src[i]
            dst = l_dst[i]
            region, block = MAIN, src
            for gen in range(max_gen):
                if gen:
                    sb = subblock_index(dst, gen, nsb, seed)
                    ib = initial_bucket(dst, gen, size, seed)
                else:
                    sb = l_sb[i]
                    ib = l_ib[i]
                key, entry = load(region, block, sb)
                slot, scanned = find_lists(entry[3], dst, ib, rhh_on)
                end = ib + scanned
                if 0 < scanned and end <= size:
                    wf += (end - 1) // workblock - ib // workblock + 1
                else:
                    wf += circ(ib, scanned, workblock, size)
                cs += scanned
                if slot >= 0:
                    # Mirror of EdgeblockArray.delete's hit branch plus
                    # the facade's CAL invalidation (delete-only mode).
                    cb = entry[6][slot]
                    csl = entry[7][slot]
                    entry[3][slot] = -2
                    entry[6][slot] = -1
                    entry[7][slot] = -1
                    dirty[key] = entry
                    wb += 1
                    tombs += 1
                    edel += 1
                    del_srcs.append(src)
                    if cal is not None and cb >= 0:
                        cal.invalidate(cb, csl)
                    deleted += 1
                    break
                nxt = descend(region, block, sb, False)
                if nxt is None:
                    break
                region, block = nxt
    finally:
        if del_srcs:
            ds = np.asarray(del_srcs, dtype=np.int64)
            np.add.at(eba._degrees, ds, -1)
            gt.vpa.ensure(int(ds.max()))
            np.add.at(gt.vpa.degrees, ds, -1)
        cache.writeback()
        stats.workblock_fetches += wf
        stats.cells_scanned += cs
        stats.workblock_writebacks += wb
        stats.tombstones_set += tombs
        stats.edges_deleted += edel
    return deleted
