"""Parallel GraphTinker instances on multicore systems (paper Sec. III.D).

The paper parallelises by partitioning the edge stream into *intervals*
according to where source vertex ids hash, then loading each interval into
an independent GraphTinker instance — one per core, no shared state and no
cross-instance traffic.  :class:`PartitionedGraphTinker` reproduces that
design: a batch is split by a vectorised hash of the source column and
each partition's sub-batch is applied to its own instance.

Multicore timing model
----------------------
Because the instances are fully independent, the parallel makespan of a
batch is the *maximum* over partitions of the per-partition cost; the
benchmark harness evaluates that with the memory-access cost model (see
``repro.bench.costmodel``).  A wall-clock ``multiprocessing`` path is also
provided for demonstration (``examples/parallel_updates.py``); it is not
the default in benches because process spawn/IPC overheads at our scaled
dataset sizes would swamp the effect being measured.

This class remains the *charging oracle*: its per-partition deltas define
the modeled makespan that Fig. 10 reports, and the process-per-shard
:class:`repro.core.sharded.ShardedStore` reproduces the identical deltas
(same router, same per-instance streams) while actually running the
shards on separate cores.  Use ``ShardedStore`` for measured wall-clock
parallelism; the ``max_workers`` thread path here is deprecated (GIL-
serialized, no speedup).

The same partitioning applies verbatim to the STINGER baseline, which is
how Fig. 10 compares the two at 1-8 cores.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.core.config import GTConfig, StingerConfig
from repro.core.graphtinker import GraphTinker
from repro.core.hashing import partition_of_array
from repro.core.stats import AccessStats
from repro.errors import ConfigError
from repro.obs import hooks as obs_hooks


class PartitionedStore:
    """Interval-partitioned wrapper over independent store instances.

    Parameters
    ----------
    n_partitions:
        Number of instances (cores being modelled).
    factory:
        Zero-argument callable building one store instance
        (:class:`GraphTinker`, :class:`~repro.stinger.Stinger`, ...).
    seed:
        Seed of the interval hash.
    max_workers:
        **Deprecated.** When set (> 1), sub-batches are applied on a
        :class:`~concurrent.futures.ThreadPoolExecutor`.  That is
        *correct* (the instances share no state, so per-partition
        deltas, merged stats, and every store's contents are identical
        between serial and threaded runs) but it is **not parallel**:
        the instances run pure-Python/NumPy insert paths under the GIL,
        so the threads execute one at a time and wall-clock matches the
        serial path.  The modeled max-over-partitions makespan is the
        honest multicore number here; for *measured* wall-clock speedup
        use :class:`repro.core.sharded.ShardedStore`, whose shards are
        worker processes.  ``None`` (the default) keeps the serial path.
    """

    def __init__(self, n_partitions: int, factory: Callable[[], object], seed: int = 0,
                 max_workers: int | None = None):
        if n_partitions <= 0:
            raise ConfigError("n_partitions must be positive")
        if max_workers is not None and max_workers <= 0:
            raise ConfigError("max_workers must be positive when given")
        if max_workers is not None and max_workers > 1:
            import warnings

            warnings.warn(
                "PartitionedStore(max_workers=...) threads are serialized "
                "by the GIL and yield no wall-clock speedup; use "
                "repro.core.sharded.ShardedStore (process-per-shard) for "
                "measured parallelism",
                DeprecationWarning, stacklevel=2)
        self.n_partitions = n_partitions
        self.seed = seed
        self.max_workers = max_workers
        self.instances = [factory() for _ in range(n_partitions)]

    # ------------------------------------------------------------------ #
    def partition_batch(self, edges: np.ndarray) -> list[np.ndarray]:
        """Split an ``(n, 2)`` batch into per-partition sub-batches.

        The split preserves the stream order within each partition, so a
        partitioned run applies exactly the same per-instance operation
        sequence a dedicated core would see.
        """
        edges = np.asarray(edges, dtype=np.int64)
        parts = partition_of_array(edges[:, 0], self.n_partitions, self.seed)
        return [edges[parts == p] for p in range(self.n_partitions)]

    def insert_batch(self, edges: np.ndarray) -> list[AccessStats]:
        """Apply a batch across partitions; return per-partition deltas.

        The deltas (one :class:`AccessStats` per instance) let the caller
        compute the parallel makespan ``max_p cost(delta_p)`` as well as
        aggregate work ``sum_p cost(delta_p)``.
        """
        deltas = self._apply("insert_batch", edges)
        self._publish(deltas)
        return deltas

    def delete_batch(self, edges: np.ndarray) -> list[AccessStats]:
        """Delete a batch across partitions; return per-partition deltas."""
        deltas = self._apply("delete_batch", edges)
        self._publish(deltas)
        return deltas

    def _apply(self, op: str, edges: np.ndarray) -> list[AccessStats]:
        """Run ``op`` on every partition's sub-batch, serial or threaded.

        The threaded path is safe because partitions are disjoint by
        construction (no instance is touched by two tasks) and each task
        reads/writes only its own instance.  ``ThreadPoolExecutor.map``
        yields results in submission order, so the returned delta list —
        and therefore any stats merge the caller performs — is ordered by
        partition id exactly as the serial path orders it.
        """

        def one(pair) -> AccessStats:
            inst, sub = pair
            before = inst.stats.snapshot()
            getattr(inst, op)(sub)
            return inst.stats.delta(before)

        pairs = list(zip(self.instances, self.partition_batch(edges)))
        if self.max_workers is None or self.max_workers == 1 or self.n_partitions == 1:
            return [one(pair) for pair in pairs]
        with ThreadPoolExecutor(max_workers=min(self.max_workers, self.n_partitions)) as ex:
            return list(ex.map(one, pairs))

    def _publish(self, deltas: Sequence[AccessStats]) -> None:
        """Publish a batch's aggregate delta under the ``part.`` prefix."""
        if not obs_hooks.enabled:
            return
        merged = AccessStats()
        for delta in deltas:
            merged += delta
        obs_hooks.publish_store_delta("part", merged)
        from repro.obs.metrics import get_registry

        get_registry().gauge("part.partitions").set(self.n_partitions)

    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        return sum(inst.n_edges for inst in self.instances)

    @property
    def n_vertices(self) -> int:
        """Total non-empty vertices across instances.

        Interval partitioning assigns each source vertex to exactly one
        instance, so the sum is duplicate-free.
        """
        return sum(inst.n_vertices for inst in self.instances)

    def has_edge(self, src: int, dst: int) -> bool:
        return self._instance_for(src).has_edge(src, dst)

    def degree(self, src: int) -> int:
        return self._instance_for(src).degree(src)

    def _instance_for(self, src: int):
        part = int(partition_of_array(np.asarray([src]), self.n_partitions, self.seed)[0])
        return self.instances[part]

    def merged_stats(self) -> AccessStats:
        """Aggregate counters across all instances."""
        merged = AccessStats()
        for inst in self.instances:
            merged += inst.stats
        return merged

    def check_invariants(self) -> None:
        for inst in self.instances:
            inst.check_invariants()


class PartitionedGraphTinker(PartitionedStore):
    """Convenience: interval-partitioned GraphTinker instances."""

    def __init__(self, n_partitions: int, config: GTConfig | None = None, seed: int = 0,
                 max_workers: int | None = None):
        cfg = config if config is not None else GTConfig()
        super().__init__(n_partitions, lambda: GraphTinker(cfg), seed, max_workers)


class PartitionedStinger(PartitionedStore):
    """Convenience: interval-partitioned STINGER instances (Fig. 10)."""

    def __init__(self, n_partitions: int, config: StingerConfig | None = None, seed: int = 0,
                 max_workers: int | None = None):
        from repro.stinger import Stinger

        cfg = config if config is not None else StingerConfig()
        super().__init__(n_partitions, lambda: Stinger(cfg), seed, max_workers)
