"""Growable flat NumPy pools backing every block-structured store.

The HPC-Python idiom applied throughout this repo (see DESIGN.md §2) is to
keep *all* edge data in a small number of large, contiguous structured
arrays and grow them by doubling — never one Python object per edge or per
block.  :class:`BlockPool` owns one 2-D structured array whose rows are
blocks (edgeblocks, CAL blocks, STINGER blocks) and whose columns are the
per-block cells, plus a free-list so blocks released by delete-and-compact
can be reused.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

#: Sentinel destination values inside edge-cells.
EMPTY = np.int64(-1)
TOMBSTONE = np.int64(-2)

#: Edge-cell record: destination vertex, weight, Robin-Hood probe distance,
#: and the CAL-pointer (block index + slot) to the edge's compacted copy.
EDGE_CELL_DTYPE = np.dtype(
    [
        ("dst", np.int64),
        ("weight", np.float64),
        ("probe", np.int16),
        ("cal_block", np.int32),
        ("cal_slot", np.int32),
    ]
)

#: CAL slot record: each compacted edge also carries its source vertex,
#: because in the Coarse Adjacency List several sources share a block.
CAL_CELL_DTYPE = np.dtype(
    [
        ("src", np.int64),
        ("dst", np.int64),
        ("weight", np.float64),
    ]
)

#: STINGER edge slot: destination + weight; -1 dst means empty, -2 deleted.
STINGER_CELL_DTYPE = np.dtype(
    [
        ("dst", np.int64),
        ("weight", np.float64),
    ]
)


def blank_edge_cells(shape: tuple[int, ...] | int) -> np.ndarray:
    """Return an EDGE_CELL array initialised to the empty state."""
    arr = np.zeros(shape, dtype=EDGE_CELL_DTYPE)
    arr["dst"] = EMPTY
    arr["cal_block"] = -1
    arr["cal_slot"] = -1
    return arr


class BlockPool:
    """A doubling pool of fixed-width blocks in one structured array.

    Parameters
    ----------
    block_width:
        Number of cells per block (row length).
    dtype:
        Structured cell dtype.
    blank:
        Callable producing a blank cell array of a given shape; used to
        initialise new capacity and to recycle freed blocks.
    initial_blocks:
        Rows pre-allocated at construction.
    """

    __slots__ = ("block_width", "dtype", "_blank", "_data", "_used", "_free")

    def __init__(self, block_width, dtype, blank, initial_blocks=4):
        if block_width <= 0:
            raise ValueError("block_width must be positive")
        if initial_blocks <= 0:
            raise ValueError("initial_blocks must be positive")
        self.block_width = int(block_width)
        self.dtype = dtype
        self._blank = blank
        self._data = blank((initial_blocks, self.block_width))
        self._used = 0
        self._free: list[int] = []

    # ------------------------------------------------------------------ #
    # capacity management
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Rows currently allocated (used + never-used + freed)."""
        return self._data.shape[0]

    @property
    def n_used(self) -> int:
        """Rows handed out and not freed."""
        return self._used - len(self._free)

    @property
    def high_water(self) -> int:
        """Rows ever handed out (freed rows included)."""
        return self._used

    def _grow_to(self, min_rows: int) -> None:
        cap = self.capacity
        if min_rows <= cap:
            return
        new_cap = cap
        while new_cap < min_rows:
            new_cap *= 2
        fresh = self._blank((new_cap, self.block_width))
        fresh[:cap] = self._data
        self._data = fresh

    def allocate(self) -> int:
        """Hand out a blank block row and return its index."""
        if self._free:
            idx = self._free.pop()
            self._data[idx] = self._blank(self.block_width)
            return idx
        idx = self._used
        self._grow_to(idx + 1)
        self._used += 1
        return idx

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` blocks (free-list first, then fresh rows)."""
        return [self.allocate() for _ in range(count)]

    def free(self, index: int) -> None:
        """Return a block to the pool for reuse.

        The row contents are *not* scrubbed here; they are re-blanked on
        the next :meth:`allocate`, so freeing is O(1).
        """
        if not (0 <= index < self._used):
            raise IndexError(f"block {index} was never allocated")
        self._free.append(index)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def row(self, index: int) -> np.ndarray:
        """Return the block row as a *view* (mutations hit the pool)."""
        if not (0 <= index < self._used):
            raise IndexError(f"block {index} was never allocated")
        return self._data[index]

    def view(self, index: int, start: int, stop: int) -> np.ndarray:
        """Return cells ``[start, stop)`` of a block as a view."""
        return self.row(index)[start:stop]

    def raw(self) -> np.ndarray:
        """The full backing array (used rows first); for vectorised scans."""
        return self._data[: self._used]

    def iter_used(self) -> Iterator[int]:
        """Yield indices of blocks currently handed out, in row order."""
        freed = set(self._free)
        for i in range(self._used):
            if i not in freed:
                yield i

    def __len__(self) -> int:
        return self.n_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockPool(width={self.block_width}, used={self.n_used}, "
            f"capacity={self.capacity}, freed={len(self._free)})"
        )
