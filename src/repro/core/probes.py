"""Probe-distance statistics — the paper's central structural claim.

GraphTinker's thesis (Sec. III.B) is that Robin Hood + Tree-Based Hashing
bound the probe distance when following a vertex's edges to O(log n)
versus an adjacency list's O(n).  This module measures both structures'
*actual* probe behaviour so the claim can be checked empirically:

* for GraphTinker, a vertex's probe distance to an edge is the number of
  Workblocks fetched along the FIND path (descent generations included);
* for STINGER, it is the number of edgeblocks traversed before the edge's
  block is reached.

Everything is computed from the live structures without mutating them or
perturbing the access counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graphtinker import GraphTinker


@dataclass(frozen=True)
class ProbeSummary:
    """Distribution summary of per-edge probe costs."""

    count: int
    mean: float
    p95: float
    max: float

    @staticmethod
    def from_samples(samples: np.ndarray) -> "ProbeSummary":
        if samples.size == 0:
            return ProbeSummary(0, 0.0, 0.0, 0.0)
        # One quantile implementation in the repo: the shared sketch.  At
        # capacity == len(samples) the sketch is exact, so these numbers
        # are bit-identical to computing numpy.percentile/mean directly.
        from repro.obs.quantiles import QuantileSketch

        sketch = QuantileSketch.from_array(samples)
        return ProbeSummary(
            count=sketch.count,
            mean=sketch.mean,
            p95=sketch.quantile(0.95),
            max=sketch.max_value,
        )


def graphtinker_probe_summary(gt: GraphTinker, sample_vertices: int = 256,
                              seed: int = 0) -> ProbeSummary:
    """Measured FIND-path probe costs over a sample of (vertex, edge)s.

    For each sampled dense vertex, every live edge's FIND cost is
    re-derived by replaying the hash path (Workblock fetches per level +
    one per descent), using a stats snapshot/restore so measurement is
    free of side effects on the accounting.
    """
    backup = gt.stats.snapshot()
    rng = np.random.default_rng(seed)
    n = gt.eba.n_vertices
    if n == 0:
        return ProbeSummary(0, 0.0, 0.0, 0.0)
    vertices = rng.choice(n, size=min(sample_vertices, n), replace=False)
    samples: list[int] = []
    for v in vertices.tolist():
        dsts, _ = gt.eba.neighbors(v)
        for d in dsts.tolist():
            before = gt.stats.snapshot()
            loc = gt.eba.find(v, int(d))
            assert loc is not None
            delta = gt.stats.delta(before)
            samples.append(delta.workblock_fetches + delta.branch_descents)
    gt.stats.reset()
    gt.stats.merge(backup)
    return ProbeSummary.from_samples(np.asarray(samples, dtype=np.float64))


def stinger_probe_summary(st, sample_vertices: int = 256, seed: int = 0) -> ProbeSummary:
    """Measured chain-traversal costs over a sample of (vertex, edge)s."""
    backup = st.stats.snapshot()
    rng = np.random.default_rng(seed)
    n = st.n_vertices
    if n == 0:
        return ProbeSummary(0, 0.0, 0.0, 0.0)
    vertices = rng.choice(n, size=min(sample_vertices, n), replace=False)
    samples: list[int] = []
    for v in vertices.tolist():
        if st.degree(v) == 0:
            continue
        dsts, _ = st.neighbors(v)
        for d in dsts.tolist():
            before = st.stats.snapshot()
            assert st.edge_weight(v, int(d)) is not None
            delta = st.stats.delta(before)
            samples.append(delta.random_block_reads)
    st.stats.reset()
    st.stats.merge(backup)
    return ProbeSummary.from_samples(np.asarray(samples, dtype=np.float64))


def degree_vs_probe_curve(gt: GraphTinker, bucket_edges: tuple[int, ...] = (8, 32, 128, 512)):
    """Mean probe cost bucketed by vertex degree (for the O(log n) check).

    Returns ``[(degree_bucket_upper_bound, mean_probe, n_vertices)]`` for
    buckets that contain at least one vertex.
    """
    backup = gt.stats.snapshot()
    degrees = gt.eba.degrees_view()
    out = []
    lower = 0
    for upper in (*bucket_edges, np.inf):
        in_bucket = np.flatnonzero((degrees > lower) & (degrees <= upper))
        if in_bucket.size:
            samples: list[int] = []
            for v in in_bucket[:64].tolist():
                dsts, _ = gt.eba.neighbors(v)
                for d in dsts[:32].tolist():
                    before = gt.stats.snapshot()
                    gt.eba.find(v, int(d))
                    delta = gt.stats.delta(before)
                    samples.append(delta.workblock_fetches + delta.branch_descents)
            out.append((upper, float(np.mean(samples)), int(in_bucket.size)))
        lower = upper
    gt.stats.reset()
    gt.stats.merge(backup)
    return out
