"""Robin Hood Hashing within a Subblock (paper Sec. III.A).

A Subblock is a tiny open-addressing hash table (default 8 edge-cells)
embedded in an edgeblock row.  Edges probe linearly from their initial
bucket, wrapping *within the Subblock*; on collision the "richer" edge
(smaller probe distance) is displaced so probe distances stay balanced.
When a Subblock cannot absorb an edge it is *congested* and Tree-Based
Hashing branches out to a child edgeblock (handled by the caller,
:mod:`repro.core.edgeblock_array`).

The load unit retrieves a Subblock one Workblock at a time (paper
Sec. III.B), so this module reports how many distinct Workblocks each
operation touched; those counts feed the DRAM-access cost model.

Cell states are encoded in the ``dst`` field: ``EMPTY`` (never used),
``TOMBSTONE`` (deleted; preserves probe chains in delete-only mode), or a
non-negative destination vertex id.

Correctness notes
-----------------
* FIND stops early at an ``EMPTY`` cell only when Robin-Hood mode is
  active: delete-only mode never turns an occupied cell back to ``EMPTY``,
  so no edge can live beyond an empty cell on its own probe path.  In
  delete-and-compact mode (RHH off) compaction may place an edge anywhere
  in its Subblock, so FIND must scan all cells.
* Displacement uses the strict rule (swap when the floating edge is
  strictly poorer); the floating edge that survives a full wrap is the one
  handed to the caller for branch-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pool import EMPTY, TOMBSTONE
from repro.core.stats import AccessStats

#: Insert outcomes.
INSERTED = 0  #: edge placed in this Subblock
UPDATED = 1  #: edge already present; weight overwritten
CONGESTED = 2  #: Subblock full; caller must branch out with `overflow` edge


@dataclass
class InsertResult:
    """Outcome of :func:`rhh_insert` on one Subblock.

    ``overflow_dst``/``overflow_weight`` carry the floating edge that must
    descend into a child edgeblock when ``status == CONGESTED``.  Because
    Robin Hood displacement may evict a *different* edge than the one being
    inserted, the overflow edge's CAL-pointer travels with it.
    """

    status: int
    slot: int = -1
    overflow_dst: int = -1
    overflow_weight: float = 0.0
    overflow_cal_block: int = -1
    overflow_cal_slot: int = -1


def _circular_workblocks(start: int, length: int, workblock: int, size: int) -> int:
    """Distinct Workblocks covered by a circular scan of ``length`` cells.

    The scan starts at ``start`` and wraps within the Subblock (``size``
    cells; a multiple of ``workblock`` by configuration), so the covered
    cells are one or two contiguous segments — no per-cell set needed.
    """
    if length <= 0:
        return 0
    if length >= size:
        return size // workblock
    end = start + length  # exclusive
    if end <= size:
        return (end - 1) // workblock - start // workblock + 1
    # wrapped: [start, size) plus [0, end - size).  The wrapped tail ends
    # below `start` (length < size), so it can only re-enter one already
    # counted Workblock: the one containing `start`.
    first = (size - 1) // workblock - start // workblock + 1
    tail_last = end - size - 1
    second = tail_last // workblock + 1
    overlap = 1 if tail_last // workblock == start // workblock else 0
    return first + second - overlap


def _charge_scan(stats: AccessStats, start: int, lengths: tuple[int, ...],
                 workblock: int, size: int) -> None:
    """Charge fetches/cells for one or more scan passes from ``start``.

    All passes of one operation start at the same initial bucket, so
    their Workblock *fetch* union is the longest pass's range (a fetched
    Workblock stays loaded for the whole operation), while *cells
    scanned* accumulates every pass's inspections.
    """
    stats.workblock_fetches += _circular_workblocks(start, max(lengths), workblock, size)
    stats.cells_scanned += sum(lengths)


def rhh_find(
    cells: np.ndarray,
    dst: int,
    init_bucket: int,
    workblock: int,
    stats: AccessStats,
    rhh_mode: bool,
) -> int:
    """Search one Subblock for ``dst``; return its slot or ``-1``.

    ``cells`` is a structured view of the Subblock (EDGE_CELL dtype).
    The scan starts at ``init_bucket`` and wraps within the Subblock.
    """
    size = cells.shape[0]
    # One bulk copy to Python ints beats per-cell structured-scalar reads
    # in this hot loop (see the profiling notes in DESIGN.md §2).
    dsts = cells["dst"].tolist()
    empty = int(EMPTY)
    for distance in range(size):
        slot = init_bucket + distance
        if slot >= size:
            slot -= size
        cell_dst = dsts[slot]
        if cell_dst == dst:
            _charge_scan(stats, init_bucket, (distance + 1,), workblock, size)
            return slot
        if rhh_mode and cell_dst == empty:
            _charge_scan(stats, init_bucket, (distance + 1,), workblock, size)
            return -1
    _charge_scan(stats, init_bucket, (size,), workblock, size)
    return -1


def rhh_insert(
    cells: np.ndarray,
    dst: int,
    weight: float,
    init_bucket: int,
    workblock: int,
    stats: AccessStats,
    enable_rhh: bool,
    cal_block: int = -1,
    cal_slot: int = -1,
) -> InsertResult:
    """Insert ``(dst, weight)`` into one Subblock.

    Runs the FIND stage first (update-in-place if the edge exists), then
    the INSERT stage.  With ``enable_rhh`` the Robin Hood displacement
    algorithm balances probe distances; without it (delete-and-compact
    configuration) a plain linear probe to the first vacant cell is used.

    Returns an :class:`InsertResult`; on ``CONGESTED`` the floating edge
    (possibly a displaced resident, not the argument edge) is reported so
    Tree-Based Hashing can continue in a child edgeblock.
    """
    size = cells.shape[0]
    dsts = cells["dst"].tolist()
    empty, tombstone = int(EMPTY), int(TOMBSTONE)

    # --- FIND stage: replace the weight if the edge already exists. -----
    found_slot = -1
    first_vacant = -1
    find_len = 0
    for distance in range(size):
        slot = init_bucket + distance
        if slot >= size:
            slot -= size
        find_len = distance + 1
        cell_dst = dsts[slot]
        if cell_dst == dst:
            found_slot = slot
            break
        if cell_dst == empty:
            if first_vacant < 0:
                first_vacant = slot
            if enable_rhh:
                # Nothing lives beyond an empty cell in delete-only mode.
                break
        elif cell_dst == tombstone and first_vacant < 0:
            first_vacant = slot

    if found_slot >= 0:
        cells["weight"][found_slot] = weight
        _charge_scan(stats, init_bucket, (find_len,), workblock, size)
        stats.workblock_writebacks += 1
        return InsertResult(UPDATED, slot=found_slot)

    # --- INSERT stage. ---------------------------------------------------
    if not enable_rhh:
        _charge_scan(stats, init_bucket, (find_len,), workblock, size)
        if first_vacant < 0:
            return InsertResult(
                CONGESTED,
                overflow_dst=dst,
                overflow_weight=weight,
                overflow_cal_block=cal_block,
                overflow_cal_slot=cal_slot,
            )
        _place(cells, first_vacant, dst, weight, _distance(init_bucket, first_vacant, size), cal_block, cal_slot)
        stats.workblock_writebacks += 1
        return InsertResult(INSERTED, slot=first_vacant)

    # Robin Hood displacement: walk the probe path with a floating edge,
    # swapping whenever the floating edge is strictly poorer than the
    # resident.  The walk is bounded by one full wrap of the Subblock.
    float_dst = dst
    float_weight = weight
    float_probe = 0
    float_cal_block = cal_block
    float_cal_slot = cal_slot
    float_bucket = init_bucket
    placed_slot = -1
    probes = cells["probe"].tolist()

    steps = 0
    slot = float_bucket
    while steps < size:
        if slot >= size:
            slot -= size
        cell_dst = dsts[slot]
        # NB: `dsts`/`probes` are point-in-time copies; the walk visits
        # each slot at most once (one wrap), so mutations via _place are
        # never re-read through the stale copies.
        if cell_dst == empty or cell_dst == tombstone:
            _place(cells, slot, float_dst, float_weight, float_probe, float_cal_block, float_cal_slot)
            if placed_slot < 0:
                placed_slot = slot
            _charge_scan(stats, init_bucket, (find_len, steps + 1), workblock, size)
            stats.workblock_writebacks += 1
            return InsertResult(INSERTED, slot=placed_slot if placed_slot >= 0 else slot)
        resident_probe = int(probes[slot])
        if float_probe > resident_probe:
            # Swap: the floating edge takes the bucket, the resident floats.
            stats.rhh_swaps += 1
            r_dst = int(dsts[slot])
            r_weight = float(cells["weight"][slot])
            r_cal_block = int(cells["cal_block"][slot])
            r_cal_slot = int(cells["cal_slot"][slot])
            _place(cells, slot, float_dst, float_weight, float_probe, float_cal_block, float_cal_slot)
            if placed_slot < 0:
                placed_slot = slot
            float_dst = r_dst
            float_weight = r_weight
            float_probe = resident_probe
            float_cal_block = r_cal_block
            float_cal_slot = r_cal_slot
        float_probe += 1
        slot += 1
        steps += 1

    # Full wrap without a vacancy: the Subblock is congested.  The edge
    # still floating overflows to a child edgeblock.  If a displacement
    # happened along the way the argument edge was placed and a resident
    # overflows instead.
    _charge_scan(stats, init_bucket, (find_len, size), workblock, size)
    if placed_slot >= 0:
        stats.workblock_writebacks += 1
    return InsertResult(
        CONGESTED,
        slot=placed_slot,
        overflow_dst=float_dst,
        overflow_weight=float_weight,
        overflow_cal_block=float_cal_block,
        overflow_cal_slot=float_cal_slot,
    )


def rhh_find_lists(
    dsts: list,
    dst: int,
    init_bucket: int,
    rhh_mode: bool,
) -> tuple[int, int]:
    """List-backed mirror of :func:`rhh_find` for the vector batch kernel.

    ``dsts`` is a plain-Python-int list of one Subblock's ``dst`` fields
    (a live cache the kernel writes back when the batch completes).
    Returns ``(slot, scan_len)`` where ``slot`` is ``-1`` when absent and
    ``scan_len`` is the number of cells inspected; the caller applies the
    exact :func:`_charge_scan` arithmetic to its local accumulators so the
    charges stay bit-identical to the scalar path.
    """
    size = len(dsts)
    for distance in range(size):
        slot = init_bucket + distance
        if slot >= size:
            slot -= size
        cell_dst = dsts[slot]
        if cell_dst == dst:
            return slot, distance + 1
        if rhh_mode and cell_dst == -1:
            return -1, distance + 1
    return -1, size


def rhh_insert_lists(
    dsts: list,
    weights: list,
    probes: list,
    cal_blocks: list,
    cal_slots: list,
    dst: int,
    weight: float,
    init_bucket: int,
    enable_rhh: bool,
    cal_block: int,
    cal_slot: int,
) -> tuple:
    """List-backed mirror of :func:`rhh_insert` for the vector batch kernel.

    Operates on five parallel Python-int/float lists caching one Subblock
    and returns every charge the scalar path would have made instead of
    mutating an :class:`AccessStats`:

    ``(status, slot, lengths, wrote, swaps, o_dst, o_weight, o_cal_block, o_cal_slot)``

    where ``lengths`` feeds ``_charge_scan`` (fetches = union over passes,
    cells = sum over passes), ``wrote`` is whether one workblock writeback
    was charged, and ``swaps`` counts Robin-Hood displacements.  The lists
    are live (unlike the scalar path's point-in-time ``tolist`` copies),
    but the walk still visits each slot at most once per call, so no
    mutation is ever re-read — behaviour is bit-identical.
    """
    size = len(dsts)
    empty, tombstone = int(EMPTY), int(TOMBSTONE)

    # --- FIND stage (mirrors rhh_insert exactly). -----------------------
    found_slot = -1
    first_vacant = -1
    find_len = 0
    for distance in range(size):
        slot = init_bucket + distance
        if slot >= size:
            slot -= size
        find_len = distance + 1
        cell_dst = dsts[slot]
        if cell_dst == dst:
            found_slot = slot
            break
        if cell_dst == empty:
            if first_vacant < 0:
                first_vacant = slot
            if enable_rhh:
                break
        elif cell_dst == tombstone and first_vacant < 0:
            first_vacant = slot

    if found_slot >= 0:
        weights[found_slot] = weight
        return (UPDATED, found_slot, (find_len,), True, 0, -1, 0.0, -1, -1)

    # --- INSERT stage. ---------------------------------------------------
    if not enable_rhh:
        if first_vacant < 0:
            return (CONGESTED, -1, (find_len,), False, 0, dst, weight, cal_block, cal_slot)
        dsts[first_vacant] = dst
        weights[first_vacant] = weight
        probes[first_vacant] = _distance(init_bucket, first_vacant, size)
        cal_blocks[first_vacant] = cal_block
        cal_slots[first_vacant] = cal_slot
        return (INSERTED, first_vacant, (find_len,), True, 0, -1, 0.0, -1, -1)

    float_dst = dst
    float_weight = weight
    float_probe = 0
    float_cal_block = cal_block
    float_cal_slot = cal_slot
    placed_slot = -1
    swaps = 0

    steps = 0
    slot = init_bucket
    while steps < size:
        if slot >= size:
            slot -= size
        cell_dst = dsts[slot]
        if cell_dst == empty or cell_dst == tombstone:
            dsts[slot] = float_dst
            weights[slot] = float_weight
            probes[slot] = float_probe
            cal_blocks[slot] = float_cal_block
            cal_slots[slot] = float_cal_slot
            if placed_slot < 0:
                placed_slot = slot
            return (INSERTED, placed_slot, (find_len, steps + 1), True, swaps, -1, 0.0, -1, -1)
        resident_probe = probes[slot]
        if float_probe > resident_probe:
            swaps += 1
            r_dst = dsts[slot]
            r_weight = weights[slot]
            r_cal_block = cal_blocks[slot]
            r_cal_slot = cal_slots[slot]
            dsts[slot] = float_dst
            weights[slot] = float_weight
            probes[slot] = float_probe
            cal_blocks[slot] = float_cal_block
            cal_slots[slot] = float_cal_slot
            if placed_slot < 0:
                placed_slot = slot
            float_dst = r_dst
            float_weight = r_weight
            float_probe = resident_probe
            float_cal_block = r_cal_block
            float_cal_slot = r_cal_slot
        float_probe += 1
        slot += 1
        steps += 1

    return (
        CONGESTED,
        placed_slot,
        (find_len, size),
        placed_slot >= 0,
        swaps,
        float_dst,
        float_weight,
        float_cal_block,
        float_cal_slot,
    )


def rhh_delete(
    cells: np.ndarray,
    dst: int,
    init_bucket: int,
    workblock: int,
    stats: AccessStats,
    rhh_mode: bool,
) -> int:
    """Tombstone ``dst`` in one Subblock; return its slot or ``-1``.

    Deletion never erases cell contents eagerly: a tombstone flag keeps
    the probe chain intact (paper Sec. III.C, delete-only mechanism).
    The caller decides whether to compact afterwards.
    """
    slot = rhh_find(cells, dst, init_bucket, workblock, stats, rhh_mode)
    if slot < 0:
        return -1
    cells["dst"][slot] = TOMBSTONE
    cells["cal_block"][slot] = -1
    cells["cal_slot"][slot] = -1
    stats.workblock_writebacks += 1
    stats.tombstones_set += 1
    return slot


def _distance(init_bucket: int, slot: int, size: int) -> int:
    """Wrapped probe distance from ``init_bucket`` to ``slot``."""
    d = slot - init_bucket
    return d if d >= 0 else d + size


def _place(
    cells: np.ndarray,
    slot: int,
    dst: int,
    weight: float,
    probe: int,
    cal_block: int,
    cal_slot: int,
) -> None:
    cells["dst"][slot] = dst
    cells["weight"][slot] = weight
    cells["probe"][slot] = probe
    cells["cal_block"][slot] = cal_block
    cells["cal_slot"][slot] = cal_slot
