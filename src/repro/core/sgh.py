"""Scatter-Gather Hashing (SGH) unit — dense renaming of source vertices.

Edges stream into a dynamic graph with arbitrary, sparse source vertex ids
(the paper's example: sources 34 and 22789 would sit 22755 top-edgeblock
rows apart).  SGH assigns each *new* source the next unused EdgeblockArray
index starting from zero, so the main region only ever contains non-empty
vertices and full scans never visit empty rows.  The bidirectional mapping
original-id <-> hashed-id is maintained here (paper Sec. III.B).
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import AccessStats
from repro.errors import VertexNotFoundError


class ScatterGatherHash:
    """Bidirectional dense renaming table for source vertex ids.

    The forward direction (original -> hashed) is a Python dict — the
    closest pure-Python analogue of the paper's hash table, with O(1)
    probes.  The reverse direction (hashed -> original) is a growable
    int64 NumPy array, because analytics kernels translate whole blocks
    of hashed ids back to original ids with one fancy-indexing gather.
    """

    __slots__ = ("_forward", "_reverse", "_count", "stats")

    def __init__(self, stats: AccessStats | None = None, initial_capacity: int = 16):
        self._forward: dict[int, int] = {}
        self._reverse = np.full(max(1, initial_capacity), -1, dtype=np.int64)
        self._count = 0
        self.stats = stats if stats is not None else AccessStats()

    def __len__(self) -> int:
        """Number of distinct source vertices hashed so far."""
        return self._count

    def __contains__(self, original: int) -> bool:
        return int(original) in self._forward

    def hash_id(self, original: int) -> int:
        """Return the dense id for ``original``, assigning one if new."""
        original = int(original)
        self.stats.hash_lookups += 1
        hashed = self._forward.get(original)
        if hashed is not None:
            return hashed
        hashed = self._count
        self._forward[original] = hashed
        if hashed >= self._reverse.shape[0]:
            grown = np.full(self._reverse.shape[0] * 2, -1, dtype=np.int64)
            grown[: self._reverse.shape[0]] = self._reverse
            self._reverse = grown
        self._reverse[hashed] = original
        self._count += 1
        return hashed

    def lookup(self, original: int) -> int:
        """Return the dense id for ``original`` without assigning.

        Raises
        ------
        VertexNotFoundError
            If the source vertex has never been hashed.
        """
        self.stats.hash_lookups += 1
        try:
            return self._forward[int(original)]
        except KeyError:
            raise VertexNotFoundError(original) from None

    def try_lookup(self, original: int) -> int | None:
        """Like :meth:`lookup` but returns ``None`` when absent."""
        self.stats.hash_lookups += 1
        return self._forward.get(int(original))

    def peek_array(self, originals: np.ndarray) -> np.ndarray:
        """Uncharged bulk original->dense lookup (-1 where unknown).

        Bookkeeping only — no ``hash_lookups`` charge — so the analytics
        snapshot's dirty tracking can resolve a batch's touched rows
        without perturbing the modeled AccessStats.  Never use this on a
        cost-accounted retrieval path.
        """
        fwd = self._forward
        out = np.fromiter(
            (fwd.get(o, -1) for o in np.asarray(originals, dtype=np.int64).tolist()),
            dtype=np.int64, count=len(originals),
        )
        return out

    def original_id(self, hashed: int) -> int:
        """Inverse mapping: dense id back to the original vertex id."""
        if not (0 <= hashed < self._count):
            raise VertexNotFoundError(hashed)
        return int(self._reverse[hashed])

    def original_ids(self, hashed: np.ndarray) -> np.ndarray:
        """Vectorised inverse mapping over an array of dense ids."""
        return self._reverse[hashed]

    def hash_ids_array(self, originals: np.ndarray) -> np.ndarray:
        """Map an array of original ids to dense ids, assigning new ones.

        This is the batch entry point used when a whole update batch is
        renamed at once; assignment order follows array order so results
        are deterministic.
        """
        out = np.empty(originals.shape[0], dtype=np.int64)
        for i, orig in enumerate(originals.tolist()):
            out[i] = self.hash_id(orig)
        return out

    def dense_ids(self) -> np.ndarray:
        """All dense ids in use: ``arange(len(self))`` (no copy of state)."""
        return np.arange(self._count, dtype=np.int64)

    def reverse_view(self) -> np.ndarray:
        """Read-only view of the dense->original table (length = count)."""
        view = self._reverse[: self._count]
        view.flags.writeable = False
        return view
