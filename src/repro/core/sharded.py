"""Process-per-shard store: true multi-core ingest behind one Store.

:class:`~repro.core.parallel.PartitionedStore` proved the paper's
Fig. 10 *model* — hash-partitioned GraphTinker instances are fully
independent, so a batch's parallel time is the slowest partition — but
its ThreadPoolExecutor never escapes the GIL, so the speedup stayed
modeled.  :class:`ShardedStore` makes it real: each shard is a full
Store-protocol backend (any registered backend, built with
:func:`repro.core.store.create_store`) living in its **own worker
process**, and the parent speaks the same ``Store`` protocol, so every
consumer — the engine, the analytics snapshot, the durable service, the
conformance and differential suites — works unchanged.

Architecture
------------

* **Routing** — a vertex's home shard is
  ``partition_of(src, n_shards, seed)`` (:mod:`repro.core.hashing`),
  the identical consistent-hash router ``PartitionedStore`` uses.  All
  state for a source row lives in exactly one shard, so shards never
  coordinate.
* **Dispatch** — commands travel over one duplex pipe per shard.  Batch
  mutations are split by the vectorized router (stream order preserved
  within a shard), **scattered to every owning shard first and then
  gathered**, so shard workers genuinely overlap on multi-core hosts.
* **Charging** — every worker response carries the
  :class:`~repro.core.stats.AccessStats` delta its inner store charged;
  the parent merges the deltas into its own ``stats``.  Deltas are sums,
  so the merged totals are **bit-identical to the serial lockstep run**
  (the same sub-batches applied to the same backends one after another)
  regardless of worker interleaving.  Batch mutators additionally
  record the per-shard deltas (:attr:`ShardedStore.last_batch_partitions`)
  so the Fig. 10 max-over-partitions makespan model keeps working as
  the charging oracle.
* **Zero-copy exports** — full-graph reads (``edge_arrays`` /
  ``analytics_edges`` / digests) move the shard's edge pools through
  ``multiprocessing.shared_memory``: the parent allocates one segment
  per shard, the worker writes its ``(src, dst, weight)`` pool arrays
  into it, and the parent maps NumPy views directly over the buffer —
  no pickling, no pipe copy.  Only the final cross-shard concatenation
  copies.
* **Degree cache** — the parent mirrors per-vertex degrees (updated
  from worker responses, probed *unchanged* by snapshot/restore
  machinery), so ``degree`` and the ``gather_active_scalar`` degree
  pre-filter stay uncharged parent-local reads, exactly like the other
  backends.
* **Failure** — a dead worker (``kill -9``, OOM) surfaces as a typed
  :class:`~repro.errors.ShardCrashError` on the next dispatch.  The
  surviving shards are intact; the service layer recovers by replaying
  the crashed shard's own WAL segments (see docs/sharding.md).

Observability (when :mod:`repro.obs` is enabled): per-shard gauges
``store.shard<k>.queue_depth`` (rows in flight on the pipe),
``store.shard<k>.edges_per_s`` (last batch), and
``store.shard<k>.rss_kb`` (worker resident set, from /proc).
"""

from __future__ import annotations

import os
import time
import weakref
from multiprocessing import get_context, resource_tracker
from multiprocessing import shared_memory as shm_mod
from typing import Iterator

import numpy as np

from repro.core.config import ShardedConfig
from repro.core.hashing import partition_of, partition_of_array
from repro.core.stats import AccessStats
from repro.errors import ShardCrashError, VertexNotFoundError
from repro.obs import hooks as obs_hooks

#: Canonical AccessStats field order for wire-format deltas.
_FIELDS: tuple[str, ...] = tuple(AccessStats().as_dict())

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def _delta_tuple(stats: AccessStats, before: AccessStats) -> tuple[int, ...]:
    delta = stats.delta(before)
    return tuple(getattr(delta, f) for f in _FIELDS)


def _shard_worker(conn, backend: str, shard_index: int) -> None:
    """Worker-process loop: one inner Store, commands in, payloads out.

    Every reply is ``(True, payload)`` or ``(False, exception)``; the
    parent re-raises transported exceptions verbatim.  Degree probes run
    under a stats snapshot/restore so they can never perturb the charged
    delta, whatever the inner backend charges for ``degree``.
    """
    from repro.core.store import create_store

    inner = create_store(backend)

    def probe_degrees(srcs):
        mid = inner.stats.snapshot()
        degs = [inner.degree(int(s)) for s in srcs]
        inner.stats.reset()
        inner.stats.merge(mid)
        return degs

    staged = None  # pending edge_arrays export between stage and fill
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        try:
            before = inner.stats.snapshot()
            if cmd == "close":
                conn.send((True, None))
                break
            elif cmd == "insert_edge":
                _, src, dst, weight = msg
                is_new = inner.insert_edge(src, dst, weight)
                delta = _delta_tuple(inner.stats, before)
                payload = (is_new, probe_degrees([src])[0], delta)
            elif cmd == "delete_edge":
                _, src, dst = msg
                existed = inner.delete_edge(src, dst)
                delta = _delta_tuple(inner.stats, before)
                payload = (existed, probe_degrees([src])[0], delta)
            elif cmd == "delete_vertex":
                _, src = msg
                deleted = inner.delete_vertex(src)
                delta = _delta_tuple(inner.stats, before)
                payload = (deleted, probe_degrees([src])[0], delta)
            elif cmd == "insert_batch":
                _, edges, weights = msg
                n_new = inner.insert_batch(edges, weights)
                delta = _delta_tuple(inner.stats, before)
                uniq = np.unique(edges[:, 0])
                payload = (n_new, uniq,
                           np.array(probe_degrees(uniq), dtype=np.int64),
                           delta)
            elif cmd == "delete_batch":
                _, edges = msg
                n_del = inner.delete_batch(edges)
                delta = _delta_tuple(inner.stats, before)
                uniq = np.unique(edges[:, 0])
                payload = (n_del, uniq,
                           np.array(probe_degrees(uniq), dtype=np.int64),
                           delta)
            elif cmd == "find":
                _, src, dst = msg
                weight = inner.edge_weight(src, dst)
                payload = (weight, _delta_tuple(inner.stats, before))
            elif cmd == "neighbors":
                _, src = msg
                try:
                    dsts, weights = inner.neighbors(src)
                except VertexNotFoundError:
                    dsts, weights = _EMPTY_I, _EMPTY_F
                payload = (dsts, weights, _delta_tuple(inner.stats, before))
            elif cmd == "neighbors_multi":
                # Sorted source list: the scatter half of a frontier
                # gather; one charged walk per source, one merged delta.
                _, srcs = msg
                rows = []
                for src in srcs:
                    try:
                        rows.append(inner.neighbors(src))
                    except VertexNotFoundError:
                        rows.append((_EMPTY_I, _EMPTY_F))
                payload = (rows, _delta_tuple(inner.stats, before))
            elif cmd == "edge_stage":
                # analytics_edges: original ids on every backend (a
                # GraphTinker shard's edge_arrays would be dense ids).
                staged = inner.analytics_edges()
                payload = (int(staged[0].shape[0]),
                           _delta_tuple(inner.stats, before))
            elif cmd == "edge_fill":
                _, shm_name = msg
                src, dst, weight = staged
                staged = None
                n = src.shape[0]
                seg = shm_mod.SharedMemory(name=shm_name)
                try:
                    # Python 3.11 registers attachments with the resource
                    # tracker; the parent owns this segment's lifetime,
                    # so drop the worker-side claim before closing.
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(seg._name, "shared_memory")
                    buf = np.ndarray((3, n), dtype=np.int64, buffer=seg.buf)
                    buf[0] = src
                    buf[1] = dst
                    buf[2] = weight.view(np.int64)
                finally:
                    seg.close()
                payload = None
            elif cmd == "check_invariants":
                inner.check_invariants()
                payload = None
            elif cmd == "fsck_repair":
                report = inner.fsck(level=msg[1], repair=True)
                payload = (report.ok, len(report.rebuilt_vertices))
            elif cmd == "n_edges":
                payload = int(inner.n_edges)
            else:
                raise ValueError(f"unknown shard command {cmd!r}")
            conn.send((True, payload))
        except BaseException as exc:  # transported to the parent
            try:
                conn.send((False, exc))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class ShardedStore:
    """Process-per-shard Store (see module docstring).

    Rows are original source ids, like the tiered/STINGER backends:
    ``n_vertices`` is the highest source id ever inserted plus one,
    ``original_ids`` is the identity, and there is no id translator.
    """

    def __init__(self, config: ShardedConfig | None = None):
        self.config = config if config is not None else ShardedConfig()
        self.stats = AccessStats()
        self._n_vertices = 0
        self._n_edges = 0
        self._degree = np.zeros(16, dtype=np.int64)
        #: Per-shard AccessStats deltas of the most recent batch mutation
        #: (shard-index order) — the Fig. 10 makespan model's input.
        self.last_batch_partitions: list[AccessStats] = [
            AccessStats() for _ in range(self.config.n_shards)]
        self._analytics_snapshot = None
        self._closed = False
        self._crashed: ShardCrashError | None = None

        ctx = get_context("fork")
        self._pipes = []
        self._procs = []
        for k in range(self.config.n_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, self.config.backend, k),
                name=f"repro-shard-{k}", daemon=True)
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._pipes, self._procs)
        if self.config.snapshot:
            self.enable_snapshot()

    # ------------------------------------------------------------------ #
    # dispatch plumbing
    # ------------------------------------------------------------------ #
    @property
    def worker_pids(self) -> list[int]:
        """Live worker process ids (fault-injection hook)."""
        return [p.pid for p in self._procs]

    def _crash(self, shard: int, exc: Exception) -> ShardCrashError:
        """Build the typed crash error and poison the store.

        A crash mid-scatter leaves surviving shards' replies unread in
        their pipes and the parent's caches (degree, ``_n_edges``) behind
        the workers' actual state, so the store cannot keep serving —
        every subsequent operation re-raises the first crash until the
        caller discards the store and re-opens the service directory
        (per-shard WAL replay restores the durable state).
        """
        proc = self._procs[shard]
        err = ShardCrashError(
            f"shard {shard} worker (pid {proc.pid}) died "
            f"(exitcode {proc.exitcode}): {exc}")
        if self._crashed is None:
            self._crashed = err
        return err

    def _send(self, shard: int, msg: tuple) -> None:
        if self._crashed is not None:
            raise self._crashed
        try:
            self._pipes[shard].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise self._crash(shard, exc) from None

    def _recv(self, shard: int):
        if self._crashed is not None:
            raise self._crashed
        try:
            ok, payload = self._pipes[shard].recv()
        except (EOFError, OSError) as exc:
            raise self._crash(shard, exc) from None
        if not ok:
            raise payload
        return payload

    def _call(self, shard: int, msg: tuple):
        self._send(shard, msg)
        return self._recv(shard)

    def _merge_delta(self, delta: tuple[int, ...]) -> AccessStats:
        stats = AccessStats(**dict(zip(_FIELDS, delta)))
        self.stats.merge(stats)
        return stats

    def _shard_of(self, src: int) -> int:
        return partition_of(src, self.config.n_shards, self.config.seed)

    def _ensure_vertex(self, src: int) -> None:
        cap = self._degree.shape[0]
        if src >= cap:
            new_cap = cap
            while new_cap <= src:
                new_cap *= 2
            degree = np.zeros(new_cap, dtype=np.int64)
            degree[:cap] = self._degree
            self._degree = degree
        if src >= self._n_vertices:
            self._n_vertices = src + 1

    def _mark_dirty(self, src: int) -> None:
        if self._analytics_snapshot is not None and src < self._n_vertices:
            self._analytics_snapshot.mark_dirty(src)

    # ------------------------------------------------------------------ #
    # analytics snapshot
    # ------------------------------------------------------------------ #
    def enable_snapshot(self):
        """Attach (and return) the incrementally-maintained CSR view."""
        if self._analytics_snapshot is None:
            from repro.engine.snapshot import AnalyticsSnapshot

            self._analytics_snapshot = AnalyticsSnapshot(self)
        return self._analytics_snapshot

    def disable_snapshot(self) -> None:
        self._analytics_snapshot = None

    @property
    def analytics_snapshot(self):
        return self._analytics_snapshot

    # ------------------------------------------------------------------ #
    # sizes / protocol surface
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        return self._n_vertices

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def original_ids(self, dense: np.ndarray) -> np.ndarray:
        """Rows are original ids — the identity translation."""
        return np.asarray(dense, dtype=np.int64)

    def dense_row_count(self) -> int:
        return self._n_vertices

    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        return self.neighbors(row)

    @property
    def id_translator(self):
        return None

    @property
    def full_load_is_row_sweep(self) -> bool:
        """Full loads stream per-shard pools, not a global row sweep."""
        return False

    # ------------------------------------------------------------------ #
    # mutators
    # ------------------------------------------------------------------ #
    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        src, dst, weight = int(src), int(dst), float(weight)
        if src < 0 or dst < 0:
            raise ValueError(
                f"vertex ids must be non-negative, got ({src}, {dst})")
        is_new, degree, delta = self._call(
            self._shard_of(src), ("insert_edge", src, dst, weight))
        self._ensure_vertex(src)
        self._degree[src] = degree
        if is_new:
            self._n_edges += 1
        self._merge_delta(delta)
        self._mark_dirty(src)
        return is_new

    def delete_edge(self, src: int, dst: int) -> bool:
        src, dst = int(src), int(dst)
        if src < 0 or src >= self._n_vertices or dst < 0:
            return False
        existed, degree, delta = self._call(
            self._shard_of(src), ("delete_edge", src, dst))
        self._degree[src] = degree
        if existed:
            self._n_edges -= 1
        self._merge_delta(delta)
        if existed:
            self._mark_dirty(src)
        return existed

    def delete_vertex(self, src: int) -> int:
        src = int(src)
        if src < 0 or src >= self._n_vertices:
            return 0
        deleted, degree, delta = self._call(
            self._shard_of(src), ("delete_vertex", src))
        self._degree[src] = degree
        self._n_edges -= deleted
        self._merge_delta(delta)
        if deleted:
            self._mark_dirty(src)
        return deleted

    def _scatter_batch(self, cmd: str, edges: np.ndarray,
                       weights: np.ndarray | None) -> tuple[int, float]:
        """Scatter a mutation batch, gather counts/degrees/deltas.

        Sends every shard its sub-batch before reading any reply — the
        workers run concurrently; the parent's merge order (ascending
        shard index) is fixed, so the merged stats are deterministic.
        """
        n_shards = self.config.n_shards
        shard_ids = partition_of_array(edges[:, 0], n_shards,
                                       self.config.seed)
        t0 = time.perf_counter()
        sent: list[int] = []
        sub_rows: dict[int, int] = {}
        for k in range(n_shards):
            mask = shard_ids == k
            if not mask.any():
                self.last_batch_partitions[k] = AccessStats()
                continue
            sub = edges[mask]
            if cmd == "insert_batch":
                sub_w = None if weights is None else weights[mask]
                self._send(k, (cmd, sub, sub_w))
            else:
                self._send(k, (cmd, sub))
            sent.append(k)
            sub_rows[k] = int(sub.shape[0])
            if obs_hooks.enabled:
                self._shard_gauge(k, "queue_depth", int(sub.shape[0]))
        total = 0
        for k in sent:
            count, uniq, degrees, delta = self._recv(k)
            total += count
            if uniq.size:
                self._ensure_vertex(int(uniq[-1]))
                self._degree[uniq] = degrees
            self.last_batch_partitions[k] = self._merge_delta(delta)
            if self._analytics_snapshot is not None:
                self._analytics_snapshot.mark_dirty_many(uniq)
            if obs_hooks.enabled:
                self._shard_gauge(k, "queue_depth", 0)
        elapsed = time.perf_counter() - t0
        if obs_hooks.enabled:
            for k in sent:
                self._shard_gauge(
                    k, "edges_per_s",
                    sub_rows[k] / elapsed if elapsed > 0 else 0.0)
            self._publish_worker_rss()
        return total, elapsed

    def insert_batch(self, edges: np.ndarray,
                     weights: np.ndarray | None = None) -> int:
        """Insert an ``(n, 2)`` edge batch; returns the number of new edges."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        if edges.size and edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
        if not edges.shape[0]:
            return 0
        before = self.stats.snapshot() if obs_hooks.enabled else None
        new, elapsed = self._scatter_batch("insert_batch", edges, weights)
        self._n_edges += new
        if before is not None:
            obs_hooks.publish_store_delta("sharded", self.stats.delta(before))
            obs_hooks.publish_ingest("insert", "sharded",
                                     int(edges.shape[0]), elapsed)
        return new

    def delete_batch(self, edges: np.ndarray) -> int:
        """Delete a batch of edges; returns how many existed."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        # Rows that cannot exist never reach a worker: negative ids and
        # unallocated sources miss for free, same as the other backends.
        live = ((edges[:, 0] >= 0) & (edges[:, 0] < self._n_vertices)
                & (edges[:, 1] >= 0))
        edges = edges[live]
        if not edges.shape[0]:
            for k in range(self.config.n_shards):
                self.last_batch_partitions[k] = AccessStats()
            return 0
        before = self.stats.snapshot() if obs_hooks.enabled else None
        deleted, elapsed = self._scatter_batch("delete_batch", edges, None)
        self._n_edges -= deleted
        if before is not None:
            obs_hooks.publish_store_delta("sharded", self.stats.delta(before))
            obs_hooks.publish_ingest("delete", "sharded",
                                     int(edges.shape[0]), elapsed)
        return deleted

    def _publish_worker_rss(self) -> None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        for k, proc in enumerate(self._procs):
            try:
                with open(f"/proc/{proc.pid}/statm") as fh:
                    rss_pages = int(fh.read().split()[1])
            except (OSError, ValueError, IndexError):
                continue
            registry.gauge(
                f"store.shard{k}.rss_kb",
                "shard worker resident set size (KiB)",
            ).set(rss_pages * os.sysconf("SC_PAGE_SIZE") // 1024)

    @staticmethod
    def _shard_gauge(shard: int, suffix: str, value) -> None:
        from repro.obs.metrics import get_registry

        get_registry().gauge(f"store.shard{shard}.{suffix}").set(value)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _find(self, src: int, dst: int) -> float | None:
        if src < 0 or src >= self._n_vertices or dst < 0:
            return None
        weight, delta = self._call(self._shard_of(src), ("find", src, dst))
        self._merge_delta(delta)
        return weight

    def has_edge(self, src: int, dst: int) -> bool:
        return self._find(int(src), int(dst)) is not None

    def edge_weight(self, src: int, dst: int) -> float | None:
        return self._find(int(src), int(dst))

    def degree(self, src: int) -> int:
        """Live out-degree (uncharged — a parent-local cache read)."""
        src = int(src)
        return int(self._degree[src]) if 0 <= src < self._n_vertices else 0

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-neighbours of ``src``; charged by the owning shard's walk."""
        src = int(src)
        if src < 0 or src >= self._n_vertices:
            raise VertexNotFoundError(src)
        dsts, weights, delta = self._call(self._shard_of(src),
                                          ("neighbors", src))
        self._merge_delta(delta)
        return dsts, weights

    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scatter-gather frontier load with a deterministic merge.

        Sanitizes like every backend (sorted unique, negatives dropped),
        scatters each shard its owned sources (sorted sub-order), then
        reassembles the per-vertex rows **in global sorted-source
        order** — exactly the triples and exactly the summed charges of
        the serial :func:`~repro.engine.snapshot.gather_active_scalar`
        loop.  Served from the CSR snapshot instead when one is attached.
        """
        from repro.engine.snapshot import sanitize_active

        if self._analytics_snapshot is not None:
            return self._analytics_snapshot.gather_active(active)
        active = sanitize_active(active)
        # The uncharged degree pre-filter of the scalar loop, vectorized
        # against the parent-local degree cache.
        active = active[active < self._n_vertices]
        if active.size:
            active = active[self._degree[active] > 0]
        if not active.size:
            return _EMPTY_I.copy(), _EMPTY_I.copy(), _EMPTY_F.copy()
        shard_ids = partition_of_array(active, self.config.n_shards,
                                       self.config.seed)
        sent: list[tuple[int, np.ndarray]] = []
        for k in range(self.config.n_shards):
            owned = active[shard_ids == k]
            if owned.size:
                self._send(k, ("neighbors_multi", owned.tolist()))
                sent.append((k, owned))
        per_vertex: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for k, owned in sent:
            rows, delta = self._recv(k)
            self._merge_delta(delta)
            for src, (dsts, weights) in zip(owned.tolist(), rows):
                per_vertex[src] = (dsts, weights)
        srcs, dsts, weights = [], [], []
        for src in active.tolist():
            d, w = per_vertex[src]
            if d.shape[0]:
                srcs.append(np.full(d.shape[0], src, dtype=np.int64))
                dsts.append(d)
                weights.append(w)
        if not srcs:
            return _EMPTY_I.copy(), _EMPTY_I.copy(), _EMPTY_F.copy()
        return (np.concatenate(srcs), np.concatenate(dsts),
                np.concatenate(weights))

    # ------------------------------------------------------------------ #
    # full-graph exports (shared-memory path)
    # ------------------------------------------------------------------ #
    def _export_shards(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Pull every shard's edge pools through shared memory.

        Two phases, both scattered before gathering: *stage* (the worker
        materializes its charged ``edge_arrays`` and reports the size)
        and *fill* (the parent allocates one shared-memory segment per
        shard; the worker writes its pools straight into it).  The
        returned arrays are copies of the mapped views; the segments are
        unlinked before returning.
        """
        n_shards = self.config.n_shards
        for k in range(n_shards):
            self._send(k, ("edge_stage",))
        counts = []
        for k in range(n_shards):
            n, delta = self._recv(k)
            self._merge_delta(delta)
            counts.append(n)
        out: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        filling: list[tuple[int, shm_mod.SharedMemory]] = []
        for k, n in enumerate(counts):
            if not n:
                out.append((_EMPTY_I.copy(), _EMPTY_I.copy(),
                            _EMPTY_F.copy()))
                continue
            seg = shm_mod.SharedMemory(create=True, size=3 * 8 * n)
            self._send(k, ("edge_fill", seg.name))
            filling.append((k, seg))
            out.append(None)
        for k, seg in filling:
            try:
                self._recv(k)
                n = counts[k]
                buf = np.ndarray((3, n), dtype=np.int64, buffer=seg.buf)
                out[k] = (buf[0].copy(), buf[1].copy(),
                          buf[2].copy().view(np.float64))
            finally:
                seg.close()
                # When the fork-inherited resource tracker is shared with
                # the worker, the worker's attach/unregister pair already
                # removed this name; re-register so unlink's unregister
                # finds it (registration is a set add — idempotent when
                # the trackers are separate).
                resource_tracker.register(seg._name, "shared_memory")
                seg.unlink()
        return out

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All live edges, concatenated in shard-index order."""
        parts = self._export_shards()
        return (np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]))

    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Engine load path; shard rows are already original ids."""
        return self.edge_arrays()

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every live edge, in ``edge_arrays`` order."""
        src, dst, weight = self.edge_arrays()
        for s, d, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
            yield int(s), int(d), float(w)

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def _shard_violations(self, violations: list) -> None:
        """Routing audit: every shard may only hold vertices it owns,
        and the parent degree cache must match the walked rows (the
        generic audit already compares walks against ``degree``)."""
        from repro.core.verify import IntegrityViolation

        backup = self.stats.snapshot()
        for k, (src, _, _) in enumerate(self._export_shards()):
            if not src.size:
                continue
            owners = partition_of_array(np.unique(src),
                                        self.config.n_shards,
                                        self.config.seed)
            for v in np.unique(src)[owners != k].tolist():
                violations.append(IntegrityViolation(
                    V_ROUTING, int(v),
                    f"vertex {v} found in shard {k} but hashes to "
                    f"shard {self._shard_of(int(v))}"))
        self.stats.reset()
        self.stats.merge(backup)

    def fsck(self, level: str = "full", repair: bool = False):
        """Audit (and optionally self-heal) across every shard.

        The generic protocol audit runs against the parent surface
        (scatter-gather walks), plus the routing invariant: a shard only
        holds vertices that consistent-hash to it.  ``repair`` delegates
        to every shard's own ``fsck(repair=True)`` and then rebuilds the
        parent degree/edge caches from the repaired workers.
        """
        from repro.core.store import verify_store_generic
        from repro.core.verify import RepairReport

        report = verify_store_generic(self, level=level,
                                      extra_checks=self._shard_violations)
        if not repair:
            return report
        backup = self.stats.snapshot()
        rebuilt_total = 0
        for k in range(self.config.n_shards):
            self._send(k, ("fsck_repair", level))
        for k in range(self.config.n_shards):
            _, n_rebuilt = self._recv(k)
            rebuilt_total += n_rebuilt
        self._refresh_caches()
        self.stats.reset()
        self.stats.merge(backup)
        if self._analytics_snapshot is not None:
            self._analytics_snapshot.invalidate()
        final = verify_store_generic(self, level=level,
                                     extra_checks=self._shard_violations)
        return RepairReport(initial=report, final=final,
                            rebuilt_vertices=list(range(rebuilt_total)))

    def _refresh_caches(self) -> None:
        """Rebuild the parent degree/edge-count caches from the workers."""
        backup = self.stats.snapshot()
        self._degree[: self._n_vertices] = 0
        total = 0
        for src, _, _ in self._export_shards():
            if src.size:
                uniq, counts = np.unique(src, return_counts=True)
                self._ensure_vertex(int(uniq[-1]))
                self._degree[uniq] = counts
                total += int(src.shape[0])
        self._n_edges = total
        self.stats.reset()
        self.stats.merge(backup)

    def check_invariants(self) -> None:
        """Every shard's own invariants plus the parent caches (test hook)."""
        backup = self.stats.snapshot()
        for k in range(self.config.n_shards):
            self._send(k, ("check_invariants",))
        for k in range(self.config.n_shards):
            self._recv(k)
        total = 0
        for k in range(self.config.n_shards):
            self._send(k, ("n_edges",))
        for k in range(self.config.n_shards):
            total += self._recv(k)
        if total != self._n_edges:
            raise AssertionError(
                f"shard edge counts sum to {total} but the parent cache "
                f"says {self._n_edges}")
        self.stats.reset()
        self.stats.merge(backup)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _shutdown_workers(self._pipes, self._procs)


def _shutdown_workers(pipes, procs) -> None:
    """Best-effort worker teardown (also the GC finalizer)."""
    for pipe in pipes:
        try:
            pipe.send(("close",))
        except (BrokenPipeError, OSError):
            pass
    for pipe in pipes:
        try:
            pipe.recv()
        except (EOFError, OSError):
            pass
        try:
            pipe.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)


#: Violation kind for consistent-hash routing breaks (sharded fsck).
V_ROUTING = "shard-routing"
