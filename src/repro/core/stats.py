"""Instrumentation counters shared by all data structures.

Both GraphTinker and the STINGER baseline bump these counters at *block*
granularity (a Workblock fetch, an edgeblock traversal, a CAL block stream)
— never per cell — so that counting does not distort the behaviour being
measured.  The counters feed the memory-access cost model in
:mod:`repro.bench.costmodel`, which is how the benchmark harness reproduces
the paper's throughput *shapes* in pure Python (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class AccessStats:
    """Event counters for one data-structure instance.

    Attributes
    ----------
    workblock_fetches:
        Workblocks retrieved from the EdgeblockArray by the load unit
        (GraphTinker's DRAM-access granularity during updates).
    workblock_writebacks:
        Workblocks written back after a successful RHH insert or delete.
    cells_scanned:
        Edge-cells inspected inside fetched Workblocks (CPU work, not a
        DRAM event; kept for probe-distance diagnostics).
    rhh_swaps:
        Robin Hood displacement swaps performed.
    branch_descents:
        Tree-Based-Hashing descents from a Subblock into a child
        edgeblock (each is one random block access).
    branch_allocations:
        New child edgeblocks allocated in the overflow region.
    random_block_reads:
        Non-contiguous edgeblock reads (STINGER chain hops, incremental-
        mode per-vertex gathers, CAL random updates).
    seq_block_reads:
        Contiguous block reads (CAL streaming in full-processing mode).
    hash_lookups:
        Scatter-Gather-Hash table probes (O(1) hash accesses).
    cal_updates:
        Direct CAL slot writes via an edge's CAL-pointer.
    edges_inserted / edges_deleted / edges_found:
        Logical operation counts.
    tombstones_set / compaction_moves:
        Deletion bookkeeping (delete-only vs delete-and-compact).
    """

    workblock_fetches: int = 0
    workblock_writebacks: int = 0
    cells_scanned: int = 0
    rhh_swaps: int = 0
    branch_descents: int = 0
    branch_allocations: int = 0
    random_block_reads: int = 0
    seq_block_reads: int = 0
    hash_lookups: int = 0
    cal_updates: int = 0
    edges_inserted: int = 0
    edges_deleted: int = 0
    edges_found: int = 0
    tombstones_set: int = 0
    compaction_moves: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "AccessStats":
        """Return an independent copy of the current counts."""
        return AccessStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "AccessStats") -> "AccessStats":
        """Return counts accumulated since ``earlier`` (a prior snapshot)."""
        return AccessStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into ``self`` (used by partitioned instances)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __iadd__(self, other: "AccessStats") -> "AccessStats":
        """``stats += delta`` — in-place accumulation, same as :meth:`merge`."""
        if not isinstance(other, AccessStats):
            return NotImplemented
        self.merge(other)
        return self

    def __add__(self, other: "AccessStats") -> "AccessStats":
        """``a + b`` — a merged *copy*; neither operand is mutated."""
        if not isinstance(other, AccessStats):
            return NotImplemented
        merged = self.snapshot()
        merged.merge(other)
        return merged

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dict (for reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total_block_accesses(self) -> int:
        """All block-granularity memory events, random and sequential."""
        return (
            self.workblock_fetches
            + self.workblock_writebacks
            + self.branch_descents
            + self.random_block_reads
            + self.seq_block_reads
            + self.cal_updates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nz = {k: v for k, v in self.as_dict().items() if v}
        return f"AccessStats({nz})"


@dataclass
class ProbeHistogram:
    """Running mean/max of Robin-Hood probe distances (diagnostics only)."""

    count: int = 0
    total: int = 0
    max_probe: int = 0

    def record(self, probe: int) -> None:
        self.count += 1
        self.total += probe
        if probe > self.max_probe:
            self.max_probe = probe

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.max_probe = 0
