"""The formal ``Store`` protocol and the backend registry.

Every dynamic-graph backend in this repo — GraphTinker, the STINGER
baseline, the degree-tiered :class:`~repro.core.tiered.TieredStore`, and
any future backend (cuckoo, mmap) — speaks one explicit contract.  The
engine, the analytics snapshot, the durable service, persistence, the
network layer, and the benchmark harness all program against this
protocol; none of them is allowed to probe a backend with ``hasattr`` /
``isinstance`` anymore.

The contract
------------

**Determinism.**  Every method is deterministic: the same operation
sequence applied to a fresh store yields the same logical edge set, the
same neighbor *order* per vertex, and the same
:class:`~repro.core.stats.AccessStats` charges.  This is what makes the
differential oracle (`tests/test_differential.py`), the store digest,
and the snapshot charge mirror possible.

**Mutators.**  ``insert_edge(src, dst, weight)`` returns ``True`` for a
new edge and ``False`` for an in-place weight update (duplicate).
``delete_edge`` returns whether the edge existed; deleting a missing
edge (or from an unknown source) is a ``False``, never an error.
Self-loops are ordinary edges.  Negative ids are *rejected on insert*
(``ValueError`` — they collide with cell sentinels) and miss on delete.
``insert_batch`` / ``delete_batch`` are event-equivalent to the
per-edge loop over their rows and return the new/existed counts.

**Queries.**  ``degree`` / ``has_edge`` / ``edge_weight`` answer 0 /
``False`` / ``None`` for anything never inserted.  ``neighbors`` may
raise :class:`~repro.errors.VertexNotFoundError` for a *never-seen*
source, but must return correct (possibly empty) arrays for any source
it has ever allocated.  ``neighbors_many`` is the batched frontier
gather: it sanitizes its input (sorted unique, negatives dropped) and
returns ``(src, dst, weight)`` triples equal to the per-vertex loop of
:func:`repro.engine.snapshot.gather_active_scalar`.

**Snapshot hooks.**  ``enable_snapshot()`` attaches (and returns) the
incrementally-maintained CSR view; mutators must notify it of every
dirtied dense row (the dirty-row contract — uncharged bookkeeping).
The view drives rows through three protocol members:
``dense_row_count()`` (how many dense adjacency rows exist),
``row_neighbors(row)`` (the charged native walk of one dense row —
re-running it on an unchanged row must charge the identical stats
delta, which is what the charge mirror replays), and ``id_translator``
(the original↔dense mapping unit, or ``None`` when rows are original
ids).  ``full_load_is_row_sweep`` declares whether the store's full
(FP) load is the same per-row sweep — ``True`` for chain/row stores,
``False`` for a CAL-backed GraphTinker whose FP load streams in CAL
insertion order.

**Persistence.**  ``analytics_edges()`` (original ids) is the portable
representation :func:`repro.workloads.persistence.save_snapshot`
checkpoints; restoring replays it through ``insert_batch`` of a store
built from the embedded config (see :func:`store_from_config`).

**Integrity.**  ``check_invariants()`` raises ``AssertionError`` on
internal inconsistency without perturbing the access accounting;
``fsck(level=..., repair=...)`` returns a
:class:`~repro.core.verify.VerifyReport` (or ``RepairReport`` when
repairing) and is what the service's post-recovery audit calls.

Registering a backend
---------------------

Call :func:`register_backend` with a name and a factory
``(config=None, *, kernel=None, snapshot=None) -> Store``; the factory's
product is validated against the protocol at construction time
(:func:`validate_store` raises a typed
:class:`~repro.errors.StoreProtocolError` naming every missing member).
A registered backend is automatically covered by the conformance suite
(``tests/test_store_conformance.py``) and reachable from
``make_store`` / the CLI ``--system`` flags.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.core.config import (
    GTConfig,
    ShardedConfig,
    StingerConfig,
    TieredConfig,
)
from repro.core.stats import AccessStats
from repro.errors import StoreProtocolError


@runtime_checkable
class Store(Protocol):
    """Structural type of a dynamic-graph backend (see module docstring).

    The authoritative member list is :data:`STORE_PROTOCOL_MEMBERS`;
    :func:`validate_store` enforces it with a typed error.
    """

    config: Any
    stats: AccessStats

    # sizes ------------------------------------------------------------- #
    @property
    def n_vertices(self) -> int: ...
    @property
    def n_edges(self) -> int: ...

    # mutators ----------------------------------------------------------- #
    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool: ...
    def insert_batch(self, edges: np.ndarray,
                     weights: np.ndarray | None = None) -> int: ...
    def delete_edge(self, src: int, dst: int) -> bool: ...
    def delete_batch(self, edges: np.ndarray) -> int: ...
    def delete_vertex(self, src: int) -> int: ...

    # queries ------------------------------------------------------------ #
    def has_edge(self, src: int, dst: int) -> bool: ...
    def edge_weight(self, src: int, dst: int) -> float | None: ...
    def degree(self, src: int) -> int: ...
    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]: ...
    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]: ...
    def edges(self) -> Iterator[tuple[int, int, float]]: ...
    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]: ...
    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]: ...

    # dense-row / translation surface (snapshot + FP-VC sweeps) ---------- #
    def original_ids(self, dense: np.ndarray) -> np.ndarray: ...
    def dense_row_count(self) -> int: ...
    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]: ...
    @property
    def id_translator(self) -> Any | None: ...
    @property
    def full_load_is_row_sweep(self) -> bool: ...

    # analytics snapshot hooks ------------------------------------------- #
    def enable_snapshot(self): ...
    def disable_snapshot(self) -> None: ...
    @property
    def analytics_snapshot(self): ...

    # integrity ----------------------------------------------------------- #
    def check_invariants(self) -> None: ...
    def fsck(self, level: str = "full", repair: bool = False): ...


#: Every member a conforming backend must expose (the runtime contract
#: behind :class:`Store`; kept as an explicit tuple so the validator's
#: error can name exactly what is missing).
STORE_PROTOCOL_MEMBERS: tuple[str, ...] = (
    "config", "stats", "n_vertices", "n_edges",
    "insert_edge", "insert_batch", "delete_edge", "delete_batch",
    "delete_vertex",
    "has_edge", "edge_weight", "degree", "neighbors", "neighbors_many",
    "edges", "edge_arrays", "analytics_edges",
    "original_ids", "dense_row_count", "row_neighbors",
    "id_translator", "full_load_is_row_sweep",
    "enable_snapshot", "disable_snapshot", "analytics_snapshot",
    "check_invariants", "fsck",
)


def validate_store(store: Any, name: str | None = None) -> Any:
    """Assert ``store`` implements the full protocol; return it.

    Raises :class:`~repro.errors.StoreProtocolError` naming every missing
    member — so an incomplete backend fails at construction, not deep in
    an engine kernel.
    """
    missing = [m for m in STORE_PROTOCOL_MEMBERS if not hasattr(store, m)]
    if missing:
        label = name or type(store).__name__
        raise StoreProtocolError(
            f"{label} does not implement the Store protocol; missing "
            f"member{'s' if len(missing) > 1 else ''}: {', '.join(missing)}"
        )
    return store


# --------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------- #
#: name -> (factory, description).  Factories take
#: ``(config=None, *, kernel=None, snapshot=None)``.
_BACKENDS: dict[str, tuple[Callable[..., Any], str]] = {}


def register_backend(name: str, factory: Callable[..., Any],
                     description: str = "", replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    The factory must accept ``(config=None, *, kernel=None,
    snapshot=None)`` and return a protocol-complete store (the product
    is validated on every :func:`create_store` call).  Registration makes
    the backend reachable from ``make_store`` / the CLI and enrolls it in
    the conformance suite.
    """
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = (factory, description)


def backend_names() -> list[str]:
    """Registered backend names, registration order preserved."""
    return list(_BACKENDS)


def create_store(name: str, config: Any | None = None, *,
                 kernel: str | None = None,
                 snapshot: bool | None = None) -> Any:
    """Build (and protocol-validate) a registered backend by name."""
    try:
        factory, _ = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown store kind {name!r} (registered: "
            f"{', '.join(backend_names())})"
        ) from None
    return validate_store(factory(config, kernel=kernel, snapshot=snapshot),
                          name=name)


def store_from_config(config: Any | None):
    """Build the backend a config object describes (persistence/recovery).

    ``GTConfig`` -> GraphTinker, ``StingerConfig`` -> STINGER,
    ``TieredConfig`` -> TieredStore, ``ShardedConfig`` -> the
    process-per-shard :class:`~repro.core.sharded.ShardedStore`;
    ``None`` -> paper-default GraphTinker.  This is how a v2
    checkpoint's embedded writer config rebuilds the *same backend* it
    was written by.
    """
    from repro.core.graphtinker import GraphTinker
    from repro.core.tiered import TieredStore
    from repro.stinger import Stinger

    if config is None:
        return GraphTinker(GTConfig())
    if isinstance(config, GTConfig):
        return GraphTinker(config)
    if isinstance(config, StingerConfig):
        return Stinger(config)
    if isinstance(config, TieredConfig):
        return TieredStore(config)
    if isinstance(config, ShardedConfig):
        from repro.core.sharded import ShardedStore

        return ShardedStore(config)
    raise StoreProtocolError(
        f"no backend registered for config type {type(config).__name__}")


def apply_kernel(store: Any, kernel: str | None) -> bool:
    """Apply a batch-kernel override where the backend supports one.

    Only configs that declare a ``kernel`` field (GraphTinker's) take
    the override; other backends have a single batch implementation and
    silently keep it.  Returns whether the override was applied.  This
    is the one sanctioned capability probe — centralized here so call
    sites (service, harness) stay protocol-pure.
    """
    if kernel is None:
        return False
    config = getattr(store, "config", None)
    if config is None or not hasattr(config, "kernel"):
        return False
    store.config = config.with_(kernel=kernel)
    return True


# --------------------------------------------------------------------- #
# canonical content digest
# --------------------------------------------------------------------- #
def store_digest(store) -> dict:
    """Canonical content digest of a store's live edge set.

    Order-independent: the edge arrays are lexsorted by ``(src, dst)``
    before hashing, so any two stores holding the same logical edges —
    whatever physical layout, backend, or insertion order produced them
    — digest identically.  This is the equality oracle of the
    differential suites and the wire-level digest op.
    """
    src, dst, weight = store.edge_arrays()
    if src.size:
        src = store.original_ids(src)
    order = np.lexsort((dst, src))
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(src[order], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(dst[order], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(weight[order], dtype=np.float64).tobytes())
    return {"sha256": h.hexdigest(), "n_edges": int(src.shape[0])}


# --------------------------------------------------------------------- #
# generic fsck (row/chain backends without a bespoke verifier)
# --------------------------------------------------------------------- #
def verify_store_generic(store, level: str = "full",
                         extra_checks: Callable[[list], None] | None = None):
    """Protocol-level integrity audit; returns a ``VerifyReport``.

    Checks what the contract alone guarantees: per-row neighbor walks
    agree with ``degree``, rows are duplicate-free, and the per-row
    degrees sum to ``n_edges``.  ``extra_checks(violations)`` lets a
    backend append its own typed violations (e.g. TieredStore's
    tier-bound audit).  Access accounting is snapshotted and restored —
    auditing never perturbs the modeled counters.
    """
    from repro.core.verify import (
        IntegrityViolation,
        V_DEGREE,
        V_DUPLICATE,
        VerifyReport,
    )

    t0 = time.perf_counter()
    backup = store.stats.snapshot()
    violations: list = []
    total = 0
    n_rows = store.dense_row_count()
    for row in range(n_rows):
        dsts, _ = store.row_neighbors(row)
        deg = store.degree(int(store.original_ids(np.array([row]))[0]))
        if dsts.shape[0] != deg:
            violations.append(IntegrityViolation(
                V_DEGREE, row,
                f"walk found {dsts.shape[0]} edges but degree says {deg}"))
        if np.unique(dsts).shape[0] != dsts.shape[0]:
            violations.append(IntegrityViolation(
                V_DUPLICATE, row, "duplicate destinations in one row"))
        total += dsts.shape[0]
    if total != store.n_edges:
        violations.append(IntegrityViolation(
            V_DEGREE, -1,
            f"rows hold {total} live edges but n_edges says {store.n_edges}"))
    if extra_checks is not None:
        extra_checks(violations)
    store.stats.reset()
    store.stats.merge(backup)
    return VerifyReport(level=level, violations=violations,
                        n_vertices=n_rows, n_edges=store.n_edges,
                        elapsed=time.perf_counter() - t0)


# --------------------------------------------------------------------- #
# built-in backends
# --------------------------------------------------------------------- #
def _gt_factory(transform=None):
    def make(config=None, *, kernel=None, snapshot=None):
        from repro.core.graphtinker import GraphTinker

        cfg = config if config is not None else GTConfig()
        if kernel is not None:
            cfg = cfg.with_(kernel=kernel)
        if snapshot is not None:
            cfg = cfg.with_(snapshot=snapshot)
        if transform is not None:
            cfg = transform(cfg)
        return GraphTinker(cfg)
    return make


def _stinger_factory(config=None, *, kernel=None, snapshot=None):
    from dataclasses import replace

    from repro.stinger import Stinger

    cfg = config if config is not None else StingerConfig()
    if snapshot is not None:
        cfg = replace(cfg, snapshot=snapshot)
    return Stinger(cfg)


def _tiered_factory(config=None, *, kernel=None, snapshot=None):
    from repro.core.tiered import TieredStore

    cfg = config if config is not None else TieredConfig()
    if snapshot is not None:
        cfg = cfg.with_(snapshot=snapshot)
    return TieredStore(cfg)


register_backend("graphtinker", _gt_factory(),
                 "the paper's full data structure (SGH + RHH/TBH + CAL)")
register_backend("gt_nocal", _gt_factory(lambda c: c.with_(enable_cal=False)),
                 "GraphTinker ablation: no Coarse Adjacency List")
register_backend("gt_nosgh", _gt_factory(lambda c: c.with_(enable_sgh=False)),
                 "GraphTinker ablation: no Scatter-Gather Hashing")
register_backend("gt_plain",
                 _gt_factory(lambda c: c.with_(enable_cal=False,
                                               enable_sgh=False)),
                 "GraphTinker ablation: both CAL and SGH off")
register_backend("stinger", _stinger_factory,
                 "the STINGER chained-edgeblock baseline")
def _sharded_factory(config=None, *, kernel=None, snapshot=None):
    from repro.core.sharded import ShardedStore

    cfg = config if config is not None else ShardedConfig()
    if snapshot is not None:
        cfg = cfg.with_(snapshot=snapshot)
    return ShardedStore(cfg)


register_backend("tiered", _tiered_factory,
                 "degree-tiered adaptive backend (inline/small-set/hash)")
register_backend("sharded", _sharded_factory,
                 "process-per-shard parallel store (consistent-hash routed)")
