"""The degree-tiered adaptive backend (GraphTango-style representation).

Skewed streams defeat any single adjacency layout: a power-law graph is
almost all degree-≤4 vertices (where a hash table wastes space and cache
lines) plus a few hubs (where a linear scan is quadratic pain).
GraphTango's answer — adopted here — is to pick the layout *per vertex by
degree* and migrate as degrees evolve:

* **Tier 0 (inline array)** — degree ≤ ``tau1``: destinations kept in a
  tiny append-ordered array; duplicate checks are a linear scan, which at
  these sizes beats any hashing.
* **Tier 1 (small set)** — degree ≤ ``tau2``: a fixed-capacity
  open-addressing table (linear probing, tombstone deletes, power-of-two
  capacity) sized a factor above the degree, so probes stay short.
* **Tier 2 (large table)** — hubs: a full hash map from destination to
  weight; O(1) duplicate checks regardless of degree.

**Promotion / demotion with hysteresis.**  An insert that pushes a
vertex's degree above ``tau1`` (or ``tau2``) rebuilds its row one tier
up; a delete only drops it back once the degree falls to ``tau -
hysteresis``, so churn oscillating around a threshold cannot thrash
rebuilds.  Transitions preserve the row's neighbor *order* (tier-0
insertion order becomes tier-1 probe order becomes tier-2 map order
deterministically), so the store stays bit-reproducible from its
operation stream — the property every differential oracle in this repo
leans on.

**Cost accounting.**  Every access charges
:class:`~repro.core.stats.AccessStats` deterministically from the row's
*current* structure (one random block read per row touch, cells scanned
= slots inspected, one hash lookup per table probe, compaction moves for
migrations) — never from wall-clock or allocation luck.  Re-walking an
unchanged row charges the identical delta, which is exactly the
charge-mirror contract the analytics snapshot replays.

**Observability** (when :mod:`repro.obs` is enabled): transition
counters ``store.tier.promotions`` / ``store.tier.demotions`` and
per-tier vertex gauges ``store.tier.inline_vertices`` /
``small_vertices`` / ``large_vertices``; the same numbers are always
available in-process via :attr:`TieredStore.promotions` /
:attr:`demotions` / :meth:`tier_occupancy`.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.core.config import TieredConfig
from repro.errors import VertexNotFoundError
from repro.obs import hooks as obs_hooks

#: Slot-state sentinels in tier-1 tables (same vocabulary as the other
#: stores' cell encodings — and the reason negative ids are rejected).
_EMPTY = -1
_TOMB = -2
#: Knuth multiplicative-hash constant for tier-1 slot choice.
_MULT = 0x9E3779B1

#: Tier indices (also the vocabulary of :meth:`TieredStore.tier_of`).
TIER_INLINE, TIER_SMALL, TIER_LARGE = 0, 1, 2
_TIER_GAUGES = ("inline_vertices", "small_vertices", "large_vertices")


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


class _InlineRow:
    """Tier 0: append-ordered destination/weight arrays (python lists)."""

    __slots__ = ("dsts", "weights")

    def __init__(self) -> None:
        self.dsts: list[int] = []
        self.weights: list[float] = []


class _SmallTable:
    """Tier 1: fixed-capacity open-addressing set (linear probing)."""

    __slots__ = ("dst", "weight", "n_live", "n_used")

    def __init__(self, capacity: int) -> None:
        self.dst = np.full(capacity, _EMPTY, dtype=np.int64)
        self.weight = np.zeros(capacity, dtype=np.float64)
        self.n_live = 0   # live destinations
        self.n_used = 0   # live + tombstones (probe-chain occupancy)

    def probe(self, dst: int) -> tuple[bool, int, int]:
        """Locate ``dst``: ``(found, slot, probes)``.

        When not found, ``slot`` is where an insert would land (the
        first tombstone on the probe path, else the terminating EMPTY).
        The table is never full (grown before 70% occupancy), so the
        walk always terminates.
        """
        cap = self.dst.shape[0]
        mask = cap - 1
        slot = (int(dst) * _MULT) & mask
        first_tomb = -1
        probes = 0
        while True:
            probes += 1
            v = int(self.dst[slot])
            if v == dst:
                return True, slot, probes
            if v == _EMPTY:
                return False, (first_tomb if first_tomb >= 0 else slot), probes
            if v == _TOMB and first_tomb < 0:
                first_tomb = slot
            slot = (slot + 1) & mask

    def live_in_slot_order(self) -> tuple[np.ndarray, np.ndarray]:
        mask = self.dst >= 0
        return self.dst[mask], self.weight[mask]


class TieredStore:
    """Degree-tiered dynamic graph store (see module docstring).

    Rows are indexed by *original* source id (like the STINGER baseline:
    ``n_vertices`` is the highest source id ever touched plus one, and
    dense rows coincide with original ids — :meth:`original_ids` is the
    identity).

    Examples
    --------
    >>> ts = TieredStore()
    >>> ts.insert_edge(1, 2)
    True
    >>> ts.insert_edge(1, 2)   # duplicate: weight update, not a new edge
    False
    >>> ts.tier_of(1)
    0
    """

    def __init__(self, config: TieredConfig | None = None):
        from repro.core.stats import AccessStats

        self.config = config if config is not None else TieredConfig()
        self.stats = AccessStats()
        self._rows: list[object | None] = [None] * self.config.initial_vertices
        self._degree = np.zeros(self.config.initial_vertices, dtype=np.int64)
        self._n_vertices = 0
        self._n_edges = 0
        self._tier_counts = [0, 0, 0]
        #: Lifetime tier-transition counters (obs mirrors when enabled).
        self.promotions = 0
        self.demotions = 0
        self._analytics_snapshot = None
        if self.config.snapshot:
            self.enable_snapshot()

    # ------------------------------------------------------------------ #
    # analytics snapshot (engine acceleration; see repro.engine.snapshot)
    # ------------------------------------------------------------------ #
    def enable_snapshot(self):
        """Attach (and return) the incrementally-maintained CSR view.

        Same charge-mirror contract as on GraphTinker/STINGER:
        bit-identical results and modeled AccessStats, wall-clock only.
        """
        if self._analytics_snapshot is None:
            from repro.engine.snapshot import AnalyticsSnapshot

            self._analytics_snapshot = AnalyticsSnapshot(self)
        return self._analytics_snapshot

    def disable_snapshot(self) -> None:
        """Detach the CSR view (subsequent loads walk the tiers)."""
        self._analytics_snapshot = None

    @property
    def analytics_snapshot(self):
        """The attached :class:`AnalyticsSnapshot`, or ``None``."""
        return self._analytics_snapshot

    # ------------------------------------------------------------------ #
    # sizes / protocol surface
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Source ids with an allocated row-table entry."""
        return self._n_vertices

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def original_ids(self, dense: np.ndarray) -> np.ndarray:
        """Rows are original ids — the identity translation."""
        return np.asarray(dense, dtype=np.int64)

    def dense_row_count(self) -> int:
        return self._n_vertices

    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        return self.neighbors(row)

    @property
    def id_translator(self):
        """No original<->dense indirection (rows are original ids)."""
        return None

    @property
    def full_load_is_row_sweep(self) -> bool:
        """The FP load *is* the per-row sweep (no CAL-style stream)."""
        return True

    def tier_of(self, src: int) -> int | None:
        """Current tier of ``src`` (0/1/2), or ``None`` if no row exists."""
        src = int(src)
        if src >= self._n_vertices or self._rows[src] is None:
            return None
        return self._tier_index(self._rows[src])

    def tier_occupancy(self) -> dict[str, int]:
        """Vertices per tier plus lifetime transition counts."""
        return {
            "inline": self._tier_counts[TIER_INLINE],
            "small": self._tier_counts[TIER_SMALL],
            "large": self._tier_counts[TIER_LARGE],
            "promotions": self.promotions,
            "demotions": self.demotions,
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _tier_index(row) -> int:
        if isinstance(row, _InlineRow):
            return TIER_INLINE
        if isinstance(row, _SmallTable):
            return TIER_SMALL
        return TIER_LARGE

    def _ensure_vertex(self, src: int) -> None:
        cap = len(self._rows)
        if src >= cap:
            new_cap = cap
            while new_cap <= src:
                new_cap *= 2
            self._rows.extend([None] * (new_cap - cap))
            degree = np.zeros(new_cap, dtype=np.int64)
            degree[:cap] = self._degree
            self._degree = degree
        if src >= self._n_vertices:
            self._n_vertices = src + 1

    def _count_transition(self, old_tier: int, new_tier: int) -> None:
        self._tier_counts[old_tier] -= 1
        self._tier_counts[new_tier] += 1
        if new_tier > old_tier:
            self.promotions += 1
        else:
            self.demotions += 1
        if obs_hooks.enabled:
            from repro.obs.metrics import get_registry

            kind = "promotions" if new_tier > old_tier else "demotions"
            get_registry().counter(
                f"store.tier.{kind}",
                "tier transitions (row rebuilds) in the tiered store",
            ).inc()

    def _migrate(self, src: int, new_tier: int) -> None:
        """Rebuild ``src``'s row one tier up or down, preserving order.

        Charges one random read (the old row), one writeback (the new
        one), and a compaction move per migrated edge.
        """
        row = self._rows[src]
        old_tier = self._tier_index(row)
        dsts, weights = self._live_items(row)
        n = len(dsts)
        if new_tier == TIER_INLINE:
            new_row = _InlineRow()
            new_row.dsts = list(dsts)
            new_row.weights = list(weights)
        elif new_tier == TIER_SMALL:
            new_row = _SmallTable(_next_pow2(max(8, 2 * max(n, 1))))
            for d, w in zip(dsts, weights):
                _, slot, _ = new_row.probe(d)
                new_row.dst[slot] = d
                new_row.weight[slot] = w
            new_row.n_live = new_row.n_used = n
        else:
            new_row = dict(zip(dsts, weights))
        self._rows[src] = new_row
        self.stats.random_block_reads += 1
        self.stats.workblock_writebacks += 1
        self.stats.compaction_moves += n
        self._count_transition(old_tier, new_tier)

    @staticmethod
    def _live_items(row) -> tuple[list[int], list[float]]:
        """A row's live ``(dsts, weights)`` in its canonical order."""
        if isinstance(row, _InlineRow):
            return list(row.dsts), list(row.weights)
        if isinstance(row, _SmallTable):
            d, w = row.live_in_slot_order()
            return d.tolist(), w.tolist()
        return list(row.keys()), list(row.values())

    def _maybe_promote(self, src: int) -> None:
        deg = int(self._degree[src])
        tier = self._tier_index(self._rows[src])
        if tier == TIER_INLINE and deg > self.config.tau1:
            self._migrate(src, TIER_SMALL)
        elif tier == TIER_SMALL and deg > self.config.tau2:
            self._migrate(src, TIER_LARGE)

    def _maybe_demote(self, src: int) -> None:
        deg = int(self._degree[src])
        tier = self._tier_index(self._rows[src])
        h = self.config.hysteresis
        if tier == TIER_LARGE and deg <= self.config.tau2 - h:
            self._migrate(src, TIER_SMALL)
            tier = TIER_SMALL
        if tier == TIER_SMALL and deg <= self.config.tau1 - h:
            self._migrate(src, TIER_INLINE)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        """Insert ``(src, dst)``; update the weight in place if present.

        Returns ``True`` when the edge is new.  May promote the vertex a
        tier when its degree crosses the configured threshold.
        """
        src, dst, weight = int(src), int(dst), float(weight)
        if src < 0 or dst < 0:
            # Negative ids collide with the -1/-2 slot-state sentinels.
            raise ValueError(f"vertex ids must be non-negative, got ({src}, {dst})")
        self._ensure_vertex(src)
        row = self._rows[src]
        if row is None:
            row = _InlineRow()
            self._rows[src] = row
            self._tier_counts[TIER_INLINE] += 1
        is_new = True
        if isinstance(row, _InlineRow):
            self.stats.random_block_reads += 1
            try:
                i = row.dsts.index(dst)
                self.stats.cells_scanned += i + 1
                row.weights[i] = weight
                is_new = False
            except ValueError:
                self.stats.cells_scanned += len(row.dsts)
                row.dsts.append(dst)
                row.weights.append(weight)
        elif isinstance(row, _SmallTable):
            self.stats.hash_lookups += 1
            self.stats.random_block_reads += 1
            found, slot, probes = row.probe(dst)
            self.stats.cells_scanned += probes
            if found:
                row.weight[slot] = weight
                is_new = False
            else:
                if 10 * (row.n_used + 1) > 7 * row.dst.shape[0]:
                    # Occupancy (live + tombstones) past 70%: rehash in
                    # place — double when genuinely full, else just shed
                    # tombstones at the same capacity.
                    cap = row.dst.shape[0]
                    new_cap = cap * 2 if 2 * (row.n_live + 1) > cap else cap
                    rebuilt = _SmallTable(new_cap)
                    d, w = row.live_in_slot_order()
                    for dd, ww in zip(d.tolist(), w.tolist()):
                        _, s, _ = rebuilt.probe(dd)
                        rebuilt.dst[s] = dd
                        rebuilt.weight[s] = ww
                    rebuilt.n_live = rebuilt.n_used = row.n_live
                    self._rows[src] = row = rebuilt
                    self.stats.random_block_reads += 1
                    self.stats.workblock_writebacks += 1
                    self.stats.compaction_moves += row.n_live
                    _, slot, probes = row.probe(dst)
                    self.stats.cells_scanned += probes
                if int(row.dst[slot]) == _EMPTY:
                    row.n_used += 1
                row.dst[slot] = dst
                row.weight[slot] = weight
                row.n_live += 1
        else:  # TIER_LARGE dict
            self.stats.hash_lookups += 1
            self.stats.random_block_reads += 1
            self.stats.cells_scanned += 1
            is_new = dst not in row
            row[dst] = weight
        if is_new:
            self.stats.workblock_writebacks += 1
            self._degree[src] += 1
            self._n_edges += 1
            self.stats.edges_inserted += 1
            self._maybe_promote(src)
        if self._analytics_snapshot is not None:
            # Weight updates change row data too, so mark unconditionally.
            self._analytics_snapshot.mark_dirty(src)
        return is_new

    def insert_batch(self, edges: np.ndarray,
                     weights: np.ndarray | None = None) -> int:
        """Insert an ``(n, 2)`` edge batch; returns the number of new edges."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        if edges.size and edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        before = self.stats.snapshot() if obs_hooks.enabled else None
        t0 = time.perf_counter() if before is not None else 0.0
        new = 0
        for s, d, w in zip(edges[:, 0].tolist(), edges[:, 1].tolist(),
                           np.asarray(weights, dtype=np.float64).tolist()):
            if self.insert_edge(s, d, w):
                new += 1
        if before is not None:
            obs_hooks.publish_store_delta("tiered", self.stats.delta(before))
            obs_hooks.publish_ingest("insert", "tiered", int(edges.shape[0]),
                                     time.perf_counter() - t0)
            self._publish_tier_gauges()
        return new

    def delete_edge(self, src: int, dst: int) -> bool:
        """Delete ``(src, dst)``; returns whether it existed.

        May demote the vertex once its degree falls through the
        hysteresis band below a tier threshold.
        """
        src, dst = int(src), int(dst)
        if (src < 0 or src >= self._n_vertices or dst < 0
                or self._rows[src] is None):
            return False  # negative dst would match the EMPTY/TOMB slots
        row = self._rows[src]
        existed = False
        if isinstance(row, _InlineRow):
            self.stats.random_block_reads += 1
            try:
                i = row.dsts.index(dst)
                self.stats.cells_scanned += i + 1
                del row.dsts[i]
                del row.weights[i]
                self.stats.compaction_moves += 1
                existed = True
            except ValueError:
                self.stats.cells_scanned += len(row.dsts)
        elif isinstance(row, _SmallTable):
            self.stats.hash_lookups += 1
            self.stats.random_block_reads += 1
            found, slot, probes = row.probe(dst)
            self.stats.cells_scanned += probes
            if found:
                row.dst[slot] = _TOMB
                row.n_live -= 1
                self.stats.tombstones_set += 1
                existed = True
        else:
            self.stats.hash_lookups += 1
            self.stats.random_block_reads += 1
            self.stats.cells_scanned += 1
            existed = dst in row
            if existed:
                del row[dst]
        if not existed:
            return False
        self.stats.workblock_writebacks += 1
        self._degree[src] -= 1
        self._n_edges -= 1
        self.stats.edges_deleted += 1
        self._maybe_demote(src)
        if self._analytics_snapshot is not None:
            self._analytics_snapshot.mark_dirty(src)
        return True

    def delete_batch(self, edges: np.ndarray) -> int:
        """Delete a batch of edges; returns how many existed."""
        edges = np.asarray(edges, dtype=np.int64)
        before = self.stats.snapshot() if obs_hooks.enabled else None
        t0 = time.perf_counter() if before is not None else 0.0
        deleted = 0
        for s, d in zip(edges[:, 0].tolist(), edges[:, 1].tolist()):
            if self.delete_edge(s, d):
                deleted += 1
        if before is not None:
            obs_hooks.publish_store_delta("tiered", self.stats.delta(before))
            obs_hooks.publish_ingest("delete", "tiered", int(edges.shape[0]),
                                     time.perf_counter() - t0)
            self._publish_tier_gauges()
        return deleted

    def delete_vertex(self, src: int) -> int:
        """Delete every out-edge of ``src``; return how many existed.

        Runs the per-edge delete path so demotions fire exactly as a
        stream of single deletes would make them.
        """
        src = int(src)
        if src < 0 or src >= self._n_vertices or self._rows[src] is None:
            return 0
        dsts, _ = self._live_items(self._rows[src])
        deleted = 0
        for d in dsts:
            if self.delete_edge(src, int(d)):
                deleted += 1
        return deleted

    def _publish_tier_gauges(self) -> None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        for tier, suffix in enumerate(_TIER_GAUGES):
            registry.gauge(f"store.tier.{suffix}").set(self._tier_counts[tier])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _find(self, src: int, dst: int) -> float | None:
        """Charged single-edge lookup; ``None`` when absent."""
        if (src < 0 or src >= self._n_vertices or dst < 0
                or self._rows[src] is None):
            return None  # negative dst would match the EMPTY/TOMB slots
        row = self._rows[src]
        if isinstance(row, _InlineRow):
            self.stats.random_block_reads += 1
            try:
                i = row.dsts.index(dst)
                self.stats.cells_scanned += i + 1
                self.stats.edges_found += 1
                return row.weights[i]
            except ValueError:
                self.stats.cells_scanned += len(row.dsts)
                return None
        if isinstance(row, _SmallTable):
            self.stats.hash_lookups += 1
            self.stats.random_block_reads += 1
            found, slot, probes = row.probe(dst)
            self.stats.cells_scanned += probes
            if found:
                self.stats.edges_found += 1
                return float(row.weight[slot])
            return None
        self.stats.hash_lookups += 1
        self.stats.random_block_reads += 1
        self.stats.cells_scanned += 1
        if dst in row:
            self.stats.edges_found += 1
            return row[dst]
        return None

    def has_edge(self, src: int, dst: int) -> bool:
        return self._find(int(src), int(dst)) is not None

    def edge_weight(self, src: int, dst: int) -> float | None:
        return self._find(int(src), int(dst))

    def degree(self, src: int) -> int:
        """Live out-degree (uncharged — a direct degree-array read)."""
        src = int(src)
        return int(self._degree[src]) if 0 <= src < self._n_vertices else 0

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-neighbours of ``src`` as ``(dst, weight)`` arrays.

        Freshly-allocated arrays every call (safe to cache), in the
        row's canonical order; the charge depends only on the row's
        current structure — the determinism the snapshot's charge
        mirror measures and replays.
        """
        src = int(src)
        if src < 0 or src >= self._n_vertices:
            raise VertexNotFoundError(src)
        row = self._rows[src]
        if row is None:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        self.stats.random_block_reads += 1
        if isinstance(row, _InlineRow):
            self.stats.cells_scanned += len(row.dsts)
            return (np.asarray(row.dsts, dtype=np.int64),
                    np.asarray(row.weights, dtype=np.float64))
        if isinstance(row, _SmallTable):
            self.stats.cells_scanned += row.dst.shape[0]
            d, w = row.live_in_slot_order()
            return d.copy(), w.copy()
        self.stats.cells_scanned += len(row)
        return (np.fromiter(row.keys(), dtype=np.int64, count=len(row)),
                np.fromiter(row.values(), dtype=np.float64, count=len(row)))

    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched frontier gather: ``(src, dst, weight)`` for many sources.

        Sanitized exactly like the other backends (sorted unique,
        negatives dropped); served from the CSR snapshot when attached,
        else the per-vertex reference loop — bit-identical charges
        either way.
        """
        from repro.engine.snapshot import gather_active_scalar, sanitize_active

        if self._analytics_snapshot is not None:
            return self._analytics_snapshot.gather_active(active)
        return gather_active_scalar(self, sanitize_active(active))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every live edge as ``(src, dst, weight)``."""
        for src in range(self._n_vertices):
            if self._rows[src] is None:
                continue
            dsts, weights = self.neighbors(src)
            for d, w in zip(dsts.tolist(), weights.tolist()):
                yield src, int(d), float(w)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All live edges as arrays — the tiered FP load path.

        Literally the per-row :meth:`neighbors` sweep, so its summed
        charge equals the sum of the per-row walks (what
        ``full_load_is_row_sweep`` promises the snapshot).
        """
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for src in range(self._n_vertices):
            if self._rows[src] is None:
                continue
            d, w = self.neighbors(src)
            if d.shape[0]:
                srcs.append(np.full(d.shape[0], src, dtype=np.int64))
                dsts.append(d)
                weights.append(w)
        if not srcs:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(weights)

    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Engine load path; tiered rows are already original ids."""
        return self.edge_arrays()

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def _tier_violations(self, violations: list) -> None:
        """Append tier-assignment violations (the hysteresis invariant)."""
        from repro.core.verify import IntegrityViolation

        tau1, tau2, h = self.config.tau1, self.config.tau2, self.config.hysteresis
        for src in range(self._n_vertices):
            row = self._rows[src]
            if row is None:
                continue
            deg = int(self._degree[src])
            tier = self._tier_index(row)
            ok = (
                (tier == TIER_INLINE and deg <= tau1)
                or (tier == TIER_SMALL and tau1 - h < deg <= tau2)
                or (tier == TIER_LARGE and deg > tau2 - h)
            )
            if not ok:
                violations.append(IntegrityViolation(
                    V_TIER, src,
                    f"tier {tier} holds degree {deg} outside its "
                    f"hysteresis band (tau1={tau1}, tau2={tau2}, h={h})"))

    def fsck(self, level: str = "full", repair: bool = False):
        """Audit (and optionally self-heal) the tiered invariants.

        On top of the generic protocol audit (degrees, duplicates, edge
        counts) this checks the tier-assignment invariant: a row's tier
        must hold its degree inside the hysteresis band.  ``repair``
        rebuilds every implicated row into its canonical tier and
        recounts degrees/edges, returning a
        :class:`~repro.core.verify.RepairReport`.
        """
        from repro.core.store import verify_store_generic
        from repro.core.verify import RepairReport

        report = verify_store_generic(self, level=level,
                                      extra_checks=self._tier_violations)
        if not repair:
            return report
        backup = self.stats.snapshot()
        rebuilt: list[int] = []
        total = 0
        for src in range(self._n_vertices):
            row = self._rows[src]
            if row is None:
                continue
            dsts, weights = self._live_items(row)
            deg = len(dsts)
            # Canonical tier for the actual degree, rebuilt from the live
            # items (also deduplicates and recounts a corrupted row).
            seen: dict[int, float] = {}
            for d, w in zip(dsts, weights):
                seen[int(d)] = float(w)
            deg = len(seen)
            old_tier = self._tier_index(row)
            if deg <= self.config.tau1:
                new_row: object = _InlineRow()
                new_row.dsts = list(seen.keys())
                new_row.weights = list(seen.values())
                new_tier = TIER_INLINE
            elif deg <= self.config.tau2:
                new_row = _SmallTable(_next_pow2(max(8, 2 * deg)))
                for d, w in seen.items():
                    _, slot, _ = new_row.probe(d)
                    new_row.dst[slot] = d
                    new_row.weight[slot] = w
                new_row.n_live = new_row.n_used = deg
                new_tier = TIER_SMALL
            else:
                new_row = dict(seen)
                new_tier = TIER_LARGE
            if new_tier != old_tier or deg != int(self._degree[src]):
                rebuilt.append(src)
            self._rows[src] = new_row
            self._tier_counts[old_tier] -= 1
            self._tier_counts[new_tier] += 1
            self._degree[src] = deg
            total += deg
        self._n_edges = total
        self.stats.reset()
        self.stats.merge(backup)
        if self._analytics_snapshot is not None:
            self._analytics_snapshot.invalidate()
        final = verify_store_generic(self, level=level,
                                     extra_checks=self._tier_violations)
        return RepairReport(initial=report, final=final,
                            rebuilt_vertices=rebuilt)

    def check_invariants(self) -> None:
        """Audit degrees, duplicate-freedom, and tier bounds (test hook)."""
        backup = self.stats.snapshot()
        total = 0
        tau1, tau2, h = self.config.tau1, self.config.tau2, self.config.hysteresis
        counts = [0, 0, 0]
        for src in range(self._n_vertices):
            row = self._rows[src]
            if row is None:
                continue
            tier = self._tier_index(row)
            counts[tier] += 1
            dsts, _ = self.neighbors(src)
            deg = int(self._degree[src])
            if dsts.shape[0] != deg:
                raise AssertionError(
                    f"degree mismatch for vertex {src}: "
                    f"{dsts.shape[0]} live cells vs degree {deg}")
            if np.unique(dsts).shape[0] != dsts.shape[0]:
                raise AssertionError(f"duplicate edges for vertex {src}")
            ok = (
                (tier == TIER_INLINE and deg <= tau1)
                or (tier == TIER_SMALL and tau1 - h < deg <= tau2)
                or (tier == TIER_LARGE and deg > tau2 - h)
            )
            if not ok:
                raise AssertionError(
                    f"vertex {src}: tier {tier} outside hysteresis band "
                    f"for degree {deg}")
            total += deg
        if total != self._n_edges:
            raise AssertionError("edge-count mismatch")
        if counts != self._tier_counts:
            raise AssertionError(
                f"tier occupancy counters drifted: {self._tier_counts} "
                f"recounted as {counts}")
        self.stats.reset()
        self.stats.merge(backup)


#: Violation kind for tier-assignment breaks (tiered-store fsck).
V_TIER = "tier-assignment"
