"""GraphTinker's interface components (paper Fig. 2).

The paper decomposes the data structure's operation into cooperating
units: the Scatter-Gather Hashing unit, the *load* unit (fetches the
relevant Workblocks for the incoming edge), the *find-edge* and
*insert-edge* units (FIND / UPDATE modes of the RHH process), the
*inference* and *interval* units (control flow across Workblock
retrievals of the vertex under inspection), and the *writeback* unit.

In this implementation the per-Workblock mechanics live in
:mod:`repro.core.robin_hood` and the descent control flow in
:mod:`repro.core.edgeblock_array`; this module exposes the same
decomposition as an explicit, stepwise pipeline over one update.  It is
functionally equivalent to :meth:`GraphTinker.insert_edge` but surfaces
each unit transition, which the test suite uses to pin the control-flow
contract and which serves as executable documentation of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import robin_hood as rhh
from repro.core.graphtinker import GraphTinker
from repro.core.hashing import initial_bucket, subblock_index
from repro.core.edgeblock_array import MAIN, OVERFLOW


@dataclass
class UnitTrace:
    """Record of one update's flow through the Fig. 2 units.

    Each entry of ``steps`` is ``(unit, detail)`` in execution order,
    e.g. ``("sgh", "34 -> 0")``, ``("load", "gen0 block M0 sb3")``,
    ``("insert-edge", "slot 5")``, ``("writeback", "1 workblock")``.
    """

    steps: list[tuple[str, str]] = field(default_factory=list)

    def record(self, unit: str, detail: str) -> None:
        self.steps.append((unit, detail))

    def units_used(self) -> list[str]:
        return [u for u, _ in self.steps]


class GraphTinkerUnits:
    """Stepwise (traced) driver over a :class:`GraphTinker` instance."""

    def __init__(self, gt: GraphTinker):
        self.gt = gt

    def insert_edge_traced(self, src: int, dst: int, weight: float = 1.0) -> tuple[bool, UnitTrace]:
        """Insert one edge, returning ``(is_new, trace)``.

        Behaviour (final structure state) is identical to
        :meth:`GraphTinker.insert_edge`; only the bookkeeping differs.
        """
        gt = self.gt
        cfg = gt.config
        trace = UnitTrace()

        # --- Scatter-Gather Hashing unit --------------------------------
        if gt.sgh is not None:
            dense_src = gt.sgh.hash_id(src)
            trace.record("sgh", f"{src} -> {dense_src}")
        else:
            dense_src = int(src)
            trace.record("sgh", "bypassed")

        eba = gt.eba
        eba.ensure_vertex(dense_src)
        nsb = cfg.subblocks_per_block

        # --- find-edge unit: FIND mode over the whole descent chain. ----
        existing = eba.find(dense_src, dst)
        if existing is not None:
            trace.record("find-edge", f"hit at gen-chain {tuple(existing)}")
            row = (eba.main if existing.region == MAIN else eba.overflow).row(existing.block)
            row["weight"][existing.slot] = float(weight)
            eba.stats.workblock_writebacks += 1
            trace.record("writeback", "weight update")
            if gt.cal is not None:
                cal_block, cal_slot = eba.get_cal_pointer(existing)
                if cal_block >= 0:
                    gt.cal.update_weight(cal_block, cal_slot, float(weight))
                    trace.record("writeback", "CAL weight update")
            return False, trace
        trace.record("find-edge", "miss (all generations)")

        region, block = MAIN, dense_src
        f_dst, f_weight = int(dst), float(weight)
        f_cal_block = f_cal_slot = -1
        arg_location = None
        arg_is_new = True

        for gen in range(cfg.max_generations):
            # --- interval unit: selects the Subblock for this generation.
            sb = subblock_index(f_dst, gen, nsb, cfg.seed)
            ib = initial_bucket(f_dst, gen, cfg.subblock, cfg.seed)
            trace.record("interval", f"gen{gen} sb{sb} bucket{ib}")

            # --- load unit: retrieves the Subblock's Workblocks.
            cells = eba._subblock_cells(region, block, sb)
            tag = "M" if region == MAIN else "O"
            trace.record("load", f"gen{gen} block {tag}{block} sb{sb}")

            # --- find-edge / insert-edge units: the RHH process.
            res = rhh.rhh_insert(
                cells, f_dst, f_weight, ib, cfg.workblock, eba.stats,
                eba._rhh_on, f_cal_block, f_cal_slot,
            )
            assert res.status != rhh.UPDATED, "FIND stage already ruled out duplicates"
            if res.status == rhh.INSERTED:
                trace.record("insert-edge", f"slot {res.slot}")
                trace.record("writeback", "1 workblock")
                if arg_location is None:
                    arg_location = (region, block, sb * cfg.subblock + res.slot)
                eba._degrees[dense_src] += 1
                eba.stats.edges_inserted += 1
                break
            # --- inference unit: decides to continue in a child edgeblock.
            trace.record("inference", f"gen{gen} congested -> descend")
            if arg_location is None and res.slot >= 0:
                arg_location = (region, block, sb * cfg.subblock + res.slot)
            region, block = eba._descend(region, block, sb, allocate=True)
            f_dst, f_weight = res.overflow_dst, res.overflow_weight
            f_cal_block, f_cal_slot = res.overflow_cal_block, res.overflow_cal_slot
        else:  # pragma: no cover - mirrors EdgeblockArray.insert guard
            raise RuntimeError("max_generations exhausted")

        # --- facade-level bookkeeping (degree + CAL copy), as in
        #     GraphTinker.insert_edge.
        from repro.core.edgeblock_array import EdgeLocation

        loc = EdgeLocation(*arg_location)
        gt.vpa.add_degree(dense_src, 1)
        if gt.cal is not None:
            cal_block, cal_slot = gt.cal.append(dense_src, int(dst), float(weight))
            eba.set_cal_pointer(loc, cal_block, cal_slot)
            trace.record("writeback", f"CAL copy @({cal_block},{cal_slot})")
        return arg_is_new, trace

    def delete_edge_traced(self, src: int, dst: int) -> tuple[bool, UnitTrace]:
        """Delete one edge, returning ``(deleted, trace)``.

        Exercises the FIND mode of the find-edge unit (deletion must
        locate the edge through the same Workblock-retrieval pipeline),
        then the writeback unit for the tombstone and CAL invalidation.
        Behaviourally identical to :meth:`GraphTinker.delete_edge`.
        """
        gt = self.gt
        trace = UnitTrace()

        if gt.sgh is not None:
            dense_src = gt.sgh.try_lookup(src)
            if dense_src is None:
                trace.record("sgh", f"{src} unknown")
                return False, trace
            trace.record("sgh", f"{src} -> {dense_src}")
        else:
            dense_src = int(src)
            trace.record("sgh", "bypassed")

        eba = gt.eba
        trace.record("load", f"FIND-mode descent for dst {dst}")
        cal_ptr = eba.delete(dense_src, dst)
        if cal_ptr is None:
            trace.record("find-edge", "miss (all generations)")
            return False, trace
        trace.record("find-edge", "hit")
        trace.record("writeback", "tombstone")
        gt.vpa.add_degree(dense_src, -1)
        if gt.cal is not None and cal_ptr[0] >= 0:
            if gt.config.compact_on_delete:
                moved = gt.cal.compact_delete(*cal_ptr)
                trace.record("writeback", "CAL compact-delete")
                if moved is not None:
                    m_src, m_dst, _, _ = moved
                    loc = eba.find(m_src, m_dst)
                    assert loc is not None, "CAL copy without an owner"
                    eba.set_cal_pointer(loc, *cal_ptr)
                    trace.record("writeback", "re-point moved CAL copy")
            else:
                gt.cal.invalidate(*cal_ptr)
                trace.record("writeback", "CAL invalidate")
        return True, trace
