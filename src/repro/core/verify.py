"""Online store integrity checking ("fsck") and self-healing repair.

A dynamic-graph store that serves traffic for weeks accumulates risk that
crash recovery alone cannot cover: a bit flip in an EdgeblockArray slot, a
degree counter that drifted, a CAL copy that no longer matches its owner.
This module walks every structure of a :class:`~repro.core.graphtinker.
GraphTinker` instance and checks the invariants the rest of the code base
silently relies on:

* every live edge-cell sits in the Subblock its destination hashes to at
  the cell's Tree-Based-Hashing generation — along its *whole* descent
  path, so FIND can actually reach it;
* in Robin-Hood mode, each cell's stored probe distance matches its
  wrapped distance from the destination's initial bucket, and no EMPTY
  cell interrupts the probe path (which would make the edge unreachable);
* per-vertex degree counters (EdgeblockArray and VertexPropertyArray)
  equal the number of live cells in the vertex's edgeblock tree, and no
  destination appears twice in one tree (no duplicate/ghost edges);
* every edge-cell's CAL-pointer resolves to a live CAL slot holding the
  same ``(src, dst, weight)``, every live CAL slot is owned by exactly
  one cell, and the CAL's live count matches the EdgeblockArray's;
* the SGH forward/reverse renaming tables are mutually inverse;
* the overflow pool's free-list is sane: no freed block is referenced by
  a child pointer, no live block is shared by two parents or orphaned.

Violations are classified into typed :class:`IntegrityViolation` records.
:func:`repair_graph` self-heals by *rebuilding the affected vertex's edge
set*: the EdgeblockArray and the CAL are mutually redundant copies of
every edge, so a damaged cell is reconciled against its CAL copy (and
vice versa) using the hash-placement rules as the tiebreaker, the
vertex's tree is wiped, and the reconciled edges are reinserted through
the normal insert path (which also rehashes a damaged block's survivors).

Auditing and repairing never perturb :class:`~repro.core.stats.
AccessStats` — counts are snapshotted and restored, exactly like
``GraphTinker.check_invariants`` — and publish ``verify.*`` metrics and a
``verify.fsck`` span through :mod:`repro.obs` when observability is up.

See docs/robustness.md for the full invariant/repair catalogue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core.edgeblock_array import MAIN, OVERFLOW
from repro.core.hashing import initial_bucket, subblock_index
from repro.core.pool import EMPTY, TOMBSTONE
from repro.obs import hooks as obs_hooks

#: Violation kinds (the ``IntegrityViolation.kind`` vocabulary).
V_DEGREE = "degree-mismatch"            # EBA degree counter vs live cells
V_VPA_DEGREE = "vpa-degree-mismatch"    # VertexPropertyArray degree drifted
V_DUPLICATE = "duplicate-edge"          # same dst twice in one vertex tree
V_CORRUPT_CELL = "corrupt-cell"         # dst is not a valid id or sentinel
V_MISPLACED = "misplaced-edge"          # Subblock/probe placement broken
V_UNREACHABLE = "unreachable-edge"      # EMPTY cell interrupts probe path
V_CAL_DANGLING = "cal-pointer-dangling"  # CAL-pointer outside the CAL
V_CAL_MISMATCH = "cal-copy-mismatch"    # CAL copy disagrees with owner
V_CAL_GHOST = "cal-ghost-copy"          # live CAL slot without an owner
V_CAL_COUNT = "cal-count-mismatch"      # CAL live count vs EBA live count
V_SGH = "sgh-mapping"                   # forward/reverse tables disagree
V_POOL = "pool-freelist"                # freed/orphaned/shared blocks

#: Checks cheap enough for the bounded post-recovery fsck.
QUICK_KINDS = (V_DEGREE, V_VPA_DEGREE, V_DUPLICATE, V_CORRUPT_CELL,
               V_CAL_COUNT, V_SGH, V_POOL)

LEVELS = ("quick", "full")


@dataclass
class IntegrityViolation:
    """One detected invariant violation.

    ``vertex`` is the *dense* source id of the affected vertex (``-1``
    for store-global violations such as pool free-list damage), and
    ``where`` names the physical location (region/block/slot) when one
    exists, so an operator can correlate with raw dumps.
    """

    kind: str
    vertex: int
    detail: str
    where: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        loc = f" @{self.where}" if self.where else ""
        who = f" v{self.vertex}" if self.vertex >= 0 else ""
        return f"[{self.kind}]{who}{loc}: {self.detail}"


@dataclass
class VerifyReport:
    """Outcome of one fsck pass."""

    level: str
    violations: list[IntegrityViolation] = field(default_factory=list)
    n_vertices: int = 0
    n_edges: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def affected_vertices(self) -> list[int]:
        """Dense ids of vertices named by at least one violation."""
        return sorted({v.vertex for v in self.violations if v.vertex >= 0})

    def summary(self) -> str:
        if self.ok:
            return (f"fsck[{self.level}] clean: {self.n_vertices} vertices, "
                    f"{self.n_edges} edges checked in {self.elapsed * 1e3:.1f} ms")
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.by_kind().items()))
        return (f"fsck[{self.level}] FAILED: {len(self.violations)} "
                f"violations ({kinds}) over {self.n_vertices} vertices")


@dataclass
class RepairReport:
    """Outcome of one self-healing pass."""

    initial: VerifyReport
    final: VerifyReport
    rebuilt_vertices: list[int] = field(default_factory=list)
    recounted_vertices: list[int] = field(default_factory=list)
    freed_blocks: int = 0
    sgh_fixes: int = 0
    actions: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.final.ok


# --------------------------------------------------------------------- #
# structure walking
# --------------------------------------------------------------------- #
@dataclass
class _CellInfo:
    """One live edge-cell as seen by the sweep."""

    region: int
    block: int
    slot: int            # cell index within the block row
    generation: int
    dst: int
    weight: float
    cal_block: int
    cal_slot: int
    placement_ok: bool = True


def _freed_overflow(eba) -> set[int]:
    return set(eba.overflow._free)


def _walk_vertex(gt, src: int, freed: set[int],
                 emit) -> list[_CellInfo]:
    """Collect live cells of one vertex's edgeblock tree, checking
    placement/probe rules along the way (``emit`` receives violations)."""
    eba = gt.eba
    cfg = gt.config
    nsb = cfg.subblocks_per_block
    sb_size = cfg.subblock
    rhh_on = eba._rhh_on
    cells_out: list[_CellInfo] = []
    # (region, block, generation, path) where path is a tuple of
    # (generation, subblock) constraints every edge below must satisfy.
    stack: list[tuple[int, int, int, tuple[tuple[int, int], ...]]] = [
        (MAIN, src, 0, ())]
    seen_blocks: set[tuple[int, int]] = set()
    while stack:
        region, block, gen, path = stack.pop()
        if (region, block) in seen_blocks:
            emit(IntegrityViolation(
                V_POOL, src, f"edgeblock cycle through block {block}",
                where=f"r{region}b{block}"))
            continue
        seen_blocks.add((region, block))
        row = eba._pool(region).row(block)
        dsts = row["dst"]
        for slot in np.flatnonzero(dsts != EMPTY).tolist():
            dst = int(dsts[slot])
            if dst == int(TOMBSTONE):
                continue
            where = f"r{region}b{block}s{slot}"
            if dst < 0:
                emit(IntegrityViolation(
                    V_CORRUPT_CELL, src,
                    f"dst {dst} is neither a vertex id nor a sentinel",
                    where=where))
                continue
            sb = slot // sb_size
            info = _CellInfo(region, block, slot, gen, dst,
                             float(row["weight"][slot]),
                             int(row["cal_block"][slot]),
                             int(row["cal_slot"][slot]))
            # Placement: the cell's own generation plus every ancestor
            # generation it descended through must hash consistently,
            # otherwise rhh_find can never reach it.
            if subblock_index(dst, gen, nsb, cfg.seed) != sb:
                info.placement_ok = False
                emit(IntegrityViolation(
                    V_MISPLACED, src,
                    f"dst {dst} sits in subblock {sb} but hashes to "
                    f"{subblock_index(dst, gen, nsb, cfg.seed)} at "
                    f"generation {gen}", where=where))
            else:
                for anc_gen, anc_sb in path:
                    if subblock_index(dst, anc_gen, nsb, cfg.seed) != anc_sb:
                        info.placement_ok = False
                        emit(IntegrityViolation(
                            V_MISPLACED, src,
                            f"dst {dst} descended through subblock "
                            f"{anc_sb} at generation {anc_gen} but hashes "
                            f"elsewhere — unreachable", where=where))
                        break
            if info.placement_ok and rhh_on:
                ib = initial_bucket(dst, gen, sb_size, cfg.seed)
                in_sb = slot - sb * sb_size
                dist = in_sb - ib
                if dist < 0:
                    dist += sb_size
                if int(row["probe"][slot]) != dist:
                    info.placement_ok = False
                    emit(IntegrityViolation(
                        V_MISPLACED, src,
                        f"dst {dst} stores probe {int(row['probe'][slot])} "
                        f"but sits {dist} past its initial bucket {ib}",
                        where=where))
                else:
                    for step in range(dist):
                        probe_slot = sb * sb_size + (ib + step) % sb_size
                        if int(dsts[probe_slot]) == int(EMPTY):
                            info.placement_ok = False
                            emit(IntegrityViolation(
                                V_UNREACHABLE, src,
                                f"dst {dst} lies beyond an EMPTY cell on "
                                f"its probe path (FIND stops early)",
                                where=where))
                            break
            cells_out.append(info)
        children = eba._children(region).row(block)
        for sb in np.flatnonzero(children >= 0).tolist():
            child = int(children[sb])
            where = f"r{region}b{block}sb{sb}"
            if child >= eba.overflow.high_water:
                emit(IntegrityViolation(
                    V_POOL, src,
                    f"child pointer -> overflow block {child} which was "
                    f"never allocated", where=where))
                continue
            if child in freed:
                emit(IntegrityViolation(
                    V_POOL, src,
                    f"child pointer -> freed overflow block {child}",
                    where=where))
                continue
            stack.append((OVERFLOW, child, gen + 1, path + ((gen, sb),)))
    return cells_out


def _quick_vertex_count(gt, src: int) -> tuple[int, int]:
    """(live cells, duplicate count) of one vertex, vectorised."""
    eba = gt.eba
    freed = _freed_overflow(eba)
    live = 0
    dup = 0
    seen: list[np.ndarray] = []
    stack = [(MAIN, src)]
    visited: set[tuple[int, int]] = set()
    while stack:
        region, block = stack.pop()
        if (region, block) in visited:
            continue  # cycle: the full walker reports it
        visited.add((region, block))
        row = eba._pool(region).row(block)
        mask = row["dst"] >= 0
        live += int(mask.sum())
        if mask.any():
            seen.append(row["dst"][mask])
        children = eba._children(region).row(block)
        for child in children[children >= 0].tolist():
            if 0 <= child < eba.overflow.high_water and child not in freed:
                stack.append((OVERFLOW, int(child)))
    if seen:
        all_dsts = np.concatenate(seen)
        dup = all_dsts.shape[0] - int(np.unique(all_dsts).shape[0])
    return live, dup


# --------------------------------------------------------------------- #
# the fsck
# --------------------------------------------------------------------- #
def verify_graph(gt, level: str = "full") -> VerifyReport:
    """Audit every structural invariant of ``gt``; never mutates it.

    ``level="quick"`` runs the bounded post-recovery subset (degree /
    duplicate / count / SGH / free-list checks, all vectorised per
    block); ``"full"`` additionally checks per-cell hash placement,
    probe-path reachability, and every CAL pointer both ways.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown fsck level {level!r} (choose from {LEVELS})")
    stats_backup = gt.stats.snapshot()
    started = time.monotonic()
    report = VerifyReport(level=level, n_vertices=gt.eba.n_vertices)
    try:
        with obs.span("verify.fsck", level=level):
            _run_checks(gt, level, report)
        report.elapsed = time.monotonic() - started
        _publish(report)
    finally:
        # Auditing must not perturb the access accounting.
        gt.stats.reset()
        gt.stats.merge(stats_backup)
    return report


def _run_checks(gt, level: str, report: VerifyReport) -> None:
    eba = gt.eba
    emit = report.violations.append
    freed = _freed_overflow(eba)

    _check_pools(gt, freed, emit)
    _check_sgh(gt, emit)

    total_live = 0
    cal_owners: dict[tuple[int, int], tuple[int, int]] = {}
    for src in range(eba.n_vertices):
        if level == "quick":
            live, dup = _quick_vertex_count(gt, src)
            if dup:
                emit(IntegrityViolation(
                    V_DUPLICATE, src, f"{dup} duplicate destination(s)"))
            neg = _quick_corrupt_cells(gt, src, freed)
            if neg:
                emit(IntegrityViolation(
                    V_CORRUPT_CELL, src,
                    f"{neg} cell(s) hold invalid destination values"))
        else:
            cells = _walk_vertex(gt, src, freed, emit)
            live = len(cells)
            dsts = [c.dst for c in cells]
            if len(set(dsts)) != len(dsts):
                counts: dict[int, int] = {}
                for d in dsts:
                    counts[d] = counts.get(d, 0) + 1
                dups = sorted(d for d, n in counts.items() if n > 1)
                emit(IntegrityViolation(
                    V_DUPLICATE, src,
                    f"destination(s) {dups[:8]} stored more than once"))
            if gt.cal is not None:
                _check_cal_pointers(gt, src, cells, cal_owners, emit)
        if live != eba.degree(src):
            emit(IntegrityViolation(
                V_DEGREE, src,
                f"degree counter says {eba.degree(src)} but the tree "
                f"holds {live} live cells"))
        if gt.vpa.degree(src) != eba.degree(src):
            emit(IntegrityViolation(
                V_VPA_DEGREE, src,
                f"VertexPropertyArray degree {gt.vpa.degree(src)} != "
                f"EdgeblockArray degree {eba.degree(src)}"))
        total_live += live
    report.n_edges = total_live

    if gt.cal is not None:
        _check_cal_global(gt, total_live, cal_owners if level == "full" else None,
                          emit)


def _quick_corrupt_cells(gt, src: int, freed: set[int]) -> int:
    """Count cells whose dst is below the TOMBSTONE sentinel (bit damage)."""
    eba = gt.eba
    bad = 0
    stack = [(MAIN, src)]
    visited: set[tuple[int, int]] = set()
    while stack:
        region, block = stack.pop()
        if (region, block) in visited:
            continue
        visited.add((region, block))
        row = eba._pool(region).row(block)
        bad += int((row["dst"] < int(TOMBSTONE)).sum())
        children = eba._children(region).row(block)
        for child in children[children >= 0].tolist():
            if 0 <= child < eba.overflow.high_water and child not in freed:
                stack.append((OVERFLOW, int(child)))
    return bad


def _check_cal_pointers(gt, src: int, cells: list[_CellInfo],
                        cal_owners: dict, emit) -> None:
    cal = gt.cal
    freed_cal = set(cal.pool._free)
    for c in cells:
        where = f"r{c.region}b{c.block}s{c.slot}"
        b, s = c.cal_block, c.cal_slot
        if not (0 <= b < cal.pool.high_water) or b in freed_cal \
                or not (0 <= s < gt.config.cal_block_size):
            emit(IntegrityViolation(
                V_CAL_DANGLING, src,
                f"edge ({src}, {c.dst}) points at CAL ({b}, {s}) which "
                f"does not exist", where=where))
            continue
        if (b, s) in cal_owners:
            o_src, o_dst = cal_owners[(b, s)]
            emit(IntegrityViolation(
                V_CAL_MISMATCH, src,
                f"edge ({src}, {c.dst}) shares CAL slot ({b}, {s}) with "
                f"edge ({o_src}, {o_dst})", where=where))
            continue
        cal_owners[(b, s)] = (src, c.dst)
        cs, cd, cw = cal.read_slot(b, s)
        if cs != src or cd != c.dst:
            emit(IntegrityViolation(
                V_CAL_MISMATCH, src,
                f"edge ({src}, {c.dst}) owns CAL slot ({b}, {s}) which "
                f"holds ({cs}, {cd})", where=where))
        elif cw != c.weight:
            emit(IntegrityViolation(
                V_CAL_MISMATCH, src,
                f"edge ({src}, {c.dst}) weight {c.weight} but its CAL "
                f"copy says {cw}", where=where))


def _live_cal_slots(cal):
    """Yield ``(block, slot, src, dst, weight)`` for every live CAL slot."""
    from repro.core.cal import CAL_INVALID

    freed = set(cal.pool._free)
    for block in range(cal.pool.high_water):
        if block in freed:
            continue
        row = cal.pool.row(block)
        for slot in np.flatnonzero(row["src"] != CAL_INVALID).tolist():
            yield (block, slot, int(row["src"][slot]), int(row["dst"][slot]),
                   float(row["weight"][slot]))


def _check_cal_global(gt, eba_live: int, cal_owners: dict | None,
                      emit) -> None:
    cal = gt.cal
    actual_live = 0
    for block, slot, src, dst, _w in _live_cal_slots(cal):
        actual_live += 1
        if cal_owners is not None and (block, slot) not in cal_owners:
            vertex = src if 0 <= src < gt.eba.n_vertices else -1
            emit(IntegrityViolation(
                V_CAL_GHOST, vertex,
                f"live CAL slot ({block}, {slot}) = ({src}, {dst}) has "
                f"no owning edge-cell", where=f"cal{block}s{slot}"))
    if cal.n_edges != actual_live:
        emit(IntegrityViolation(
            V_CAL_COUNT, -1,
            f"CAL count says {cal.n_edges} live copies but {actual_live} "
            f"slots are live"))
    if actual_live != eba_live:
        emit(IntegrityViolation(
            V_CAL_COUNT, -1,
            f"CAL holds {actual_live} live copies but the EdgeblockArray "
            f"holds {eba_live} live edges"))


def _check_sgh(gt, emit) -> None:
    if gt.sgh is None:
        return
    sgh = gt.sgh
    if len(sgh) != gt.eba.n_vertices:
        emit(IntegrityViolation(
            V_SGH, -1,
            f"SGH maps {len(sgh)} vertices but the main region holds "
            f"{gt.eba.n_vertices} rows"))
    reverse = sgh._reverse
    for orig, dense in sgh._forward.items():
        if not (0 <= dense < len(sgh)):
            emit(IntegrityViolation(
                V_SGH, -1, f"original {orig} maps to out-of-range dense "
                           f"id {dense}"))
        elif int(reverse[dense]) != orig:
            emit(IntegrityViolation(
                V_SGH, dense,
                f"forward says {orig} -> {dense} but reverse[{dense}] = "
                f"{int(reverse[dense])}"))


def _check_pools(gt, freed: set[int], emit) -> None:
    eba = gt.eba
    if eba.main._free:
        emit(IntegrityViolation(
            V_POOL, -1,
            f"main-region free-list is not empty ({len(eba.main._free)} "
            f"entries) — top-parent rows are never freed"))
    if len(freed) != len(eba.overflow._free):
        emit(IntegrityViolation(
            V_POOL, -1, "overflow free-list holds duplicate entries"))
    for idx in freed:
        if not (0 <= idx < eba.overflow.high_water):
            emit(IntegrityViolation(
                V_POOL, -1,
                f"overflow free-list entry {idx} was never allocated"))
    # Reference counting: every live overflow block must be the child of
    # exactly one (block, subblock); anything else is a leak or a share.
    refs: dict[int, int] = {}
    for matrix in (eba._main_children, eba._overflow_children):
        data = matrix._data
        for child in data[data >= 0].tolist():
            refs[child] = refs.get(child, 0) + 1
    for child, n in refs.items():
        if n > 1:
            emit(IntegrityViolation(
                V_POOL, -1,
                f"overflow block {child} is referenced by {n} parents"))
    for block in range(eba.overflow.high_water):
        if block not in freed and block not in refs:
            emit(IntegrityViolation(
                V_POOL, -1,
                f"overflow block {block} is allocated but unreachable "
                f"(orphan)"))


def _publish(report: VerifyReport) -> None:
    if not obs_hooks.enabled:
        return
    registry = obs.get_registry()
    registry.counter("verify.runs").inc()
    registry.counter("verify.vertices").inc(report.n_vertices)
    registry.counter("verify.edges").inc(report.n_edges)
    registry.gauge("verify.last_violations").set(len(report.violations))
    for kind, n in report.by_kind().items():
        registry.counter(f"verify.violation.{kind}").inc(n)


# --------------------------------------------------------------------- #
# self-healing repair
# --------------------------------------------------------------------- #
def repair_graph(gt, report: VerifyReport | None = None) -> RepairReport:
    """Self-heal ``gt`` from the violations in ``report``.

    Strategy (docs/robustness.md):

    * degree-only damage is fixed by recounting the vertex's live cells;
    * anything structural rebuilds the vertex: its true edge set is
      reconciled from the EdgeblockArray cells and their CAL copies
      (hash-placement validity decides which copy to trust when they
      disagree; unclaimed live CAL copies recover edges whose cells were
      wiped), the vertex's tree and CAL copies are cleared, and the
      reconciled edges are reinserted through the normal insert path;
    * SGH reverse entries are rebuilt from the forward table;
    * orphaned overflow blocks are returned to the pool.

    Stores running delete-and-compact rebuild wholesale (the CAL dense-
    chain invariant cannot survive per-vertex hole-punching).  A final
    full fsck is embedded in the returned :class:`RepairReport`.
    """
    if report is None:
        report = verify_graph(gt, level="full")
    elif report.level != "full":
        # Repair plans need per-cell evidence; re-audit at full depth.
        report = verify_graph(gt, level="full")
    stats_backup = gt.stats.snapshot()
    out = RepairReport(initial=report, final=report)
    try:
        with obs.span("verify.repair", violations=len(report.violations)):
            if not report.ok:
                _apply_repairs(gt, report, out)
                # Repairs move cells behind the stores' mutation hooks, so
                # any attached analytics snapshot must re-measure from
                # scratch rather than trust its dirty-row tracking.
                snap = getattr(gt, "analytics_snapshot", None)
                if snap is not None:
                    snap.invalidate()
                out.final = verify_graph(gt, level="full")
            _publish_repair(out)
    finally:
        gt.stats.reset()
        gt.stats.merge(stats_backup)
    return out


def _apply_repairs(gt, report: VerifyReport, out: RepairReport) -> None:
    _repair_sgh(gt, out)

    degree_kinds = {V_DEGREE, V_VPA_DEGREE}
    by_vertex: dict[int, set[str]] = {}
    for v in report.violations:
        if v.vertex >= 0:
            by_vertex.setdefault(v.vertex, set()).add(v.kind)

    if gt.config.compact_on_delete and any(
            kinds - degree_kinds for kinds in by_vertex.values()):
        _rebuild_store(gt, out)
        return

    plans: dict[int, dict[int, float]] = {}
    owners = _global_cal_owners(gt) if gt.cal is not None else {}
    for vertex, kinds in sorted(by_vertex.items()):
        if kinds <= degree_kinds:
            _recount_vertex(gt, vertex)
            out.recounted_vertices.append(vertex)
            out.actions.append(f"recounted degree of vertex {vertex}")
        else:
            plans[vertex] = _reconcile_vertex(gt, vertex, owners)
    for vertex, merged in plans.items():
        _wipe_vertex(gt, vertex, out, owners)
        original = gt.original_id(vertex)
        for dst in sorted(merged):
            gt.insert_edge(original, dst, merged[dst])
        out.rebuilt_vertices.append(vertex)
        out.actions.append(
            f"rebuilt vertex {vertex} with {len(merged)} reconciled edges")
    _free_orphans(gt, out)
    _recount_cal(gt)


def _global_cal_owners(gt) -> dict[tuple[int, int], list[tuple[int, int, float]]]:
    """Map every resolvable CAL-pointer to the ``(src, dst, w)`` of each
    edge-cell claiming it (normally exactly one; corruption can make it
    zero or several)."""
    eba = gt.eba
    cal = gt.cal
    freed = _freed_overflow(eba)
    freed_cal = set(cal.pool._free)
    owners: dict[tuple[int, int], list[tuple[int, int, float]]] = {}
    for src in range(eba.n_vertices):
        stack = [(MAIN, src)]
        visited: set[tuple[int, int]] = set()
        while stack:
            region, block = stack.pop()
            if (region, block) in visited:
                continue
            visited.add((region, block))
            row = eba._pool(region).row(block)
            for slot in np.flatnonzero(row["dst"] >= 0).tolist():
                b = int(row["cal_block"][slot])
                s = int(row["cal_slot"][slot])
                if 0 <= b < cal.pool.high_water and b not in freed_cal \
                        and 0 <= s < gt.config.cal_block_size:
                    owners.setdefault((b, s), []).append(
                        (src, int(row["dst"][slot]),
                         float(row["weight"][slot])))
            children = eba._children(region).row(block)
            for child in children[children >= 0].tolist():
                if 0 <= child < eba.overflow.high_water and child not in freed:
                    stack.append((OVERFLOW, int(child)))
    return owners


def _reconcile_vertex(gt, vertex: int, owners: dict) -> dict[int, float]:
    """Compute the trusted edge set ``{dst: weight}`` of one vertex.

    The EdgeblockArray cell and its CAL copy are redundant; when they
    disagree, the copy whose placement rules still hold wins (a flipped
    destination almost surely fails the hash-placement check, a flipped
    CAL slot leaves the cell's placement intact).
    """
    cells = _walk_vertex(gt, vertex, _freed_overflow(gt.eba), lambda _v: None)
    cal = gt.cal
    merged: dict[int, float] = {}
    claimed: set[tuple[int, int]] = set()
    cal_mine: dict[tuple[int, int], tuple[int, float]] = {}
    if cal is not None:
        for block, slot, src, dst, w in _live_cal_slots(cal):
            if src == vertex:
                cal_mine[(block, slot)] = (dst, w)
    for c in cells:
        ptr = (c.cal_block, c.cal_slot)
        entry = cal_mine.get(ptr)
        if entry is not None and entry[0] == c.dst:
            # Copies agree on the edge; on a weight mismatch neither side
            # is provably right, so the CAL copy wins deterministically.
            merged[c.dst] = entry[1]
            claimed.add(ptr)
        elif c.placement_ok:
            merged[c.dst] = c.weight          # CAL side wrong or dangling
            if entry is not None:
                claimed.add(ptr)
        elif entry is not None:
            merged[entry[0]] = entry[1]       # cell flipped; CAL copy wins
            claimed.add(ptr)
        elif cal is None:
            # No redundant copy to consult: keep the id and let the
            # reinsertion rehash it into a consistent placement.
            merged[c.dst] = c.weight
    # Live CAL copies of this vertex that no cell claims recover edges
    # whose cells were wiped — unless some *other* vertex's cell owns the
    # slot (then the slot's src is the flipped field, not the cell).
    for ptr, (dst, w) in cal_mine.items():
        if ptr in claimed:
            continue
        if any(o[0] != vertex for o in owners.get(ptr, [])):
            continue          # the slot's src field is the flipped copy
        merged.setdefault(dst, w)
    return merged


def _recount_vertex(gt, vertex: int) -> None:
    live, _dup = _quick_vertex_count(gt, vertex)
    gt.eba._degrees[vertex] = live
    gt.vpa.ensure(vertex)
    gt.vpa._degree[vertex] = live


def _wipe_vertex(gt, vertex: int, out: RepairReport,
                 owners: dict | None = None) -> None:
    """Erase one vertex's tree, CAL copies, and degree counters.

    CAL copies are retired two ways: every slot a cell of this vertex
    *points at* (catches slots whose ``src`` field was flipped to some
    other vertex — they must not survive as ghosts), and every live slot
    whose ``src`` says this vertex (catches copies whose owning cell was
    destroyed).  A pointed-at slot that some *other* vertex's cell also
    claims is left alone: there the flipped field was this vertex's cell
    pointer, and the slot is the other vertex's legitimate copy.
    """
    from repro.core.pool import blank_edge_cells

    eba = gt.eba
    cal = gt.cal
    freed = _freed_overflow(eba)
    freed_cal = set(cal.pool._free) if cal is not None else set()
    subtree: list[int] = []
    pointed: set[tuple[int, int]] = set()
    stack = [(MAIN, vertex)]
    visited: set[tuple[int, int]] = set()
    while stack:
        region, block = stack.pop()
        if (region, block) in visited:
            continue
        visited.add((region, block))
        if cal is not None:
            row = eba._pool(region).row(block)
            for slot in np.flatnonzero(row["dst"] >= 0).tolist():
                b = int(row["cal_block"][slot])
                s = int(row["cal_slot"][slot])
                if 0 <= b < cal.pool.high_water and b not in freed_cal \
                        and 0 <= s < gt.config.cal_block_size:
                    pointed.add((b, s))
        children = eba._children(region).row(block)
        for child in children[children >= 0].tolist():
            if 0 <= child < eba.overflow.high_water and child not in freed:
                subtree.append(int(child))
                stack.append((OVERFLOW, int(child)))
    eba.main.row(vertex)[:] = blank_edge_cells(gt.config.pagewidth)
    eba._main_children.clear_row(vertex)
    for block in dict.fromkeys(subtree):      # dedup, preserve order
        eba._overflow_children.clear_row(block)
        eba.overflow.row(block)[:] = blank_edge_cells(gt.config.pagewidth)
        eba.overflow.free(block)
        out.freed_blocks += 1
    eba._degrees[vertex] = 0
    gt.vpa.ensure(vertex)
    gt.vpa._degree[vertex] = 0
    if cal is not None:
        for b, s in pointed:
            if owners is not None and any(
                    o[0] != vertex for o in owners.get((b, s), [])):
                continue
            cal.invalidate(b, s)
        for block, slot, src, _dst, _w in list(_live_cal_slots(cal)):
            if src == vertex:
                cal.invalidate(block, slot)


def _recount_cal(gt) -> None:
    """Re-derive the CAL's live counters from the slots themselves.

    Rebuild actions invalidate and append copies through the normal CAL
    API, but a corruption that *directly* zapped a slot's ``src`` field
    bypassed the counter bookkeeping; recounting squares the ledger.
    """
    cal = gt.cal
    if cal is None:
        return
    from repro.core.cal import CAL_INVALID

    freed = set(cal.pool._free)
    total = 0
    for block in range(cal.pool.high_water):
        if block in freed:
            continue
        n = int((cal.pool.row(block)["src"] != CAL_INVALID).sum())
        cal._valid_count[block] = n
        total += n
    cal._n_valid = total


def _repair_sgh(gt, out: RepairReport) -> None:
    if gt.sgh is None:
        return
    sgh = gt.sgh
    for orig, dense in sgh._forward.items():
        if 0 <= dense < len(sgh) and int(sgh._reverse[dense]) != orig:
            sgh._reverse[dense] = orig
            out.sgh_fixes += 1
            out.actions.append(
                f"restored SGH reverse[{dense}] = {orig} from the forward "
                f"table")


def _free_orphans(gt, out: RepairReport) -> None:
    eba = gt.eba
    freed = _freed_overflow(eba)
    refs: set[int] = set()
    for matrix in (eba._main_children, eba._overflow_children):
        data = matrix._data
        refs.update(data[data >= 0].tolist())
    for block in range(eba.overflow.high_water):
        if block not in freed and block not in refs:
            eba._overflow_children.clear_row(block)
            eba.overflow.free(block)
            out.freed_blocks += 1
            out.actions.append(f"freed orphan overflow block {block}")


def _rebuild_store(gt, out: RepairReport) -> None:
    """Wholesale rebuild: reconcile every vertex, re-create the stores.

    Used for delete-and-compact configurations, where per-vertex hole
    punching would break the CAL dense-chain invariant.
    """
    from repro.core.cal import CoarseAdjacencyList
    from repro.core.edgeblock_array import EdgeblockArray
    from repro.core.vertex_array import VertexPropertyArray

    owners = _global_cal_owners(gt) if gt.cal is not None else {}
    plans = {v: _reconcile_vertex(gt, v, owners)
             for v in range(gt.eba.n_vertices)}
    n_vertices = gt.eba.n_vertices
    gt.eba = EdgeblockArray(gt.config, gt.stats)
    gt.cal = (CoarseAdjacencyList(gt.config, gt.stats)
              if gt.config.enable_cal else None)
    gt.vpa = VertexPropertyArray(gt.config.initial_vertices)
    if n_vertices:
        # Re-allocate every dense row up front: vertices left with zero
        # edges must keep their rows so SGH ids stay aligned.
        gt.eba.ensure_vertex(n_vertices - 1)
    for vertex in range(n_vertices):
        original = gt.original_id(vertex)
        merged = plans[vertex]
        for dst in sorted(merged):
            gt.insert_edge(original, dst, merged[dst])
        out.rebuilt_vertices.append(vertex)
    out.actions.append(
        f"rebuilt entire store ({n_vertices} vertices) — delete-and-"
        f"compact stores repair wholesale")


def _publish_repair(out: RepairReport) -> None:
    if not obs_hooks.enabled:
        return
    registry = obs.get_registry()
    registry.counter("verify.repairs").inc()
    registry.counter("verify.rebuilt_vertices").inc(len(out.rebuilt_vertices))
    registry.counter("verify.recounted_vertices").inc(
        len(out.recounted_vertices))
    registry.counter("verify.freed_blocks").inc(out.freed_blocks)
    registry.gauge("verify.repair_ok").set(1 if out.ok else 0)
