"""The VertexPropertyArray (paper Sec. III.B).

Holds per-vertex state — degree, a general-purpose ``value`` (algorithm
property such as BFS level or SSSP distance), and flag bits — indexed by
the dense (SGH-hashed) vertex id.  Implemented as parallel flat NumPy
arrays grown by doubling, so the engine's apply phase can commit whole
property vectors with single vectorised assignments.
"""

from __future__ import annotations

import numpy as np

#: Flag bit: vertex is active in the current engine iteration.
FLAG_ACTIVE = np.uint8(1)
#: Flag bit: vertex was touched by the latest update batch (inconsistent).
FLAG_INCONSISTENT = np.uint8(2)


class VertexPropertyArray:
    """Dense per-vertex property storage."""

    __slots__ = ("_degree", "_value", "_flags", "_count")

    def __init__(self, initial_capacity: int = 16):
        cap = max(1, initial_capacity)
        self._degree = np.zeros(cap, dtype=np.int64)
        self._value = np.full(cap, np.inf, dtype=np.float64)
        self._flags = np.zeros(cap, dtype=np.uint8)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _grow_to(self, n: int) -> None:
        cap = self._degree.shape[0]
        if n <= cap:
            return
        new_cap = cap
        while new_cap < n:
            new_cap *= 2
        degree = np.zeros(new_cap, dtype=np.int64)
        value = np.full(new_cap, np.inf, dtype=np.float64)
        flags = np.zeros(new_cap, dtype=np.uint8)
        degree[:cap] = self._degree
        value[:cap] = self._value
        flags[:cap] = self._flags
        self._degree, self._value, self._flags = degree, value, flags

    def ensure(self, vid: int) -> None:
        """Make dense ids ``0..vid`` addressable (new slots zeroed/inf)."""
        if vid >= self._count:
            self._grow_to(vid + 1)
            self._count = vid + 1

    # -- degrees -------------------------------------------------------- #
    def add_degree(self, vid: int, delta: int) -> None:
        self.ensure(vid)
        self._degree[vid] += delta

    def degree(self, vid: int) -> int:
        return int(self._degree[vid]) if vid < self._count else 0

    @property
    def degrees(self) -> np.ndarray:
        """Writable view of all degrees (length = vertex count)."""
        return self._degree[: self._count]

    # -- values --------------------------------------------------------- #
    @property
    def values(self) -> np.ndarray:
        """Writable view of the per-vertex property values."""
        return self._value[: self._count]

    def set_values(self, values: np.ndarray) -> None:
        """Replace all property values (length must match count)."""
        if values.shape[0] != self._count:
            raise ValueError("value vector length mismatch")
        self._value[: self._count] = values

    def reset_values(self, fill: float = np.inf) -> None:
        self._value[: self._count] = fill

    # -- flags ---------------------------------------------------------- #
    @property
    def flags(self) -> np.ndarray:
        return self._flags[: self._count]

    def set_flag(self, vids: np.ndarray, flag: np.uint8) -> None:
        if len(vids):
            self.ensure(int(np.max(vids)))
        self._flags[vids] |= flag

    def clear_flag(self, flag: np.uint8) -> None:
        self._flags[: self._count] &= ~flag

    def flagged(self, flag: np.uint8) -> np.ndarray:
        """Dense ids currently carrying ``flag``."""
        return np.flatnonzero(self._flags[: self._count] & flag)
