"""The hybrid graph engine: edge-centric GAS over dynamic stores."""

from repro.engine.gas import GASProgram
from repro.engine.hybrid import (
    ComputeResult,
    HybridEngine,
    IterationRecord,
    POLICY_FULL,
    POLICY_HYBRID,
    POLICY_INCREMENTAL,
)
from repro.engine.modes import FULL, INCREMENTAL
from repro.engine.algorithms import BFS, SSSP, ConnectedComponents, PageRank, HeatSimulation

__all__ = [
    "BFS",
    "SSSP",
    "ConnectedComponents",
    "ComputeResult",
    "FULL",
    "GASProgram",
    "HeatSimulation",
    "HybridEngine",
    "INCREMENTAL",
    "IterationRecord",
    "POLICY_FULL",
    "POLICY_HYBRID",
    "POLICY_INCREMENTAL",
    "PageRank",
]
