"""GAS algorithm programs: the paper's three benchmarks plus extensions."""

from repro.engine.algorithms.bfs import BFS
from repro.engine.algorithms.sssp import SSSP
from repro.engine.algorithms.sswp import SSWP
from repro.engine.algorithms.cc import ConnectedComponents
from repro.engine.algorithms.pagerank import PageRank
from repro.engine.algorithms.heat import HeatSimulation

__all__ = ["BFS", "SSSP", "SSWP", "ConnectedComponents", "PageRank", "HeatSimulation"]
