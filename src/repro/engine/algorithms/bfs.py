"""Breadth-first search as an edge-centric GAS program.

Vertex property = BFS level (hop distance from the root); an edge's
message is ``level(src) + 1`` and the reduction keeps the minimum, so the
fixed point is exactly the BFS levels.  Monotone under insertions: new
edges can only shorten levels, which is what makes incremental processing
after a batch insert sound.
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


class BFS(GASProgram):
    """BFS levels from one or more roots."""

    name = "bfs"
    undirected = False
    monotone = True
    needs_weights = False

    def initial_value(self) -> float:
        return np.inf

    def edge_messages(self, src_values, weights, src=None):
        return src_values + 1.0
