"""Weakly-connected components as an edge-centric GAS program.

Classic label propagation: every vertex starts with its own id as label
and edges propagate the minimum label.  At the fixed point every vertex
carries the smallest vertex id of its component.

``undirected = True`` declares weak-connectivity semantics: the update
stream must be *symmetrised* (both directions of each edge inserted, as
when ingesting a symmetric UF-collection matrix — use
``repro.workloads.streams.symmetrize``), which keeps incremental mode
sound, and per the paper's Set-Inconsistency-Vertices unit both endpoints
of each updated edge become inconsistent after a batch (Sec. IV.C).
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


class ConnectedComponents(GASProgram):
    """Minimum-label weakly-connected components."""

    name = "cc"
    undirected = True
    monotone = True
    needs_weights = False

    def initial_value(self) -> float:
        # Labels are seeded per-vertex in `seed`; inf marks never-seen
        # slots so growth keeps untouched vertices inert.
        return np.inf

    def init_state(self, n_vertices: int) -> np.ndarray:
        return np.arange(n_vertices, dtype=np.float64)

    def seed(self, values: np.ndarray, roots: np.ndarray) -> np.ndarray:
        # CC needs no roots: every vertex is its own seed.  The initially
        # active set is every vertex (the caller usually passes the
        # inconsistent set instead after a batch update).
        return np.arange(values.shape[0], dtype=np.int64)

    def grow_state(self, values: np.ndarray, n_vertices: int) -> np.ndarray:
        if n_vertices <= values.shape[0]:
            return values
        grown = np.arange(n_vertices, dtype=np.float64)
        grown[: values.shape[0]] = values
        return grown

    def edge_messages(self, src_values, weights, src=None):
        return src_values

    def message_filter(self, src_values: np.ndarray) -> np.ndarray:
        return np.isfinite(src_values)
