"""Heat (diffusion) simulation as a stationary GAS program.

The paper cites heat simulation as a canonical GAS workload (Sec. IV.A).
Each iteration performs one explicit Jacobi step of the graph heat
equation: a vertex moves toward the mean temperature of its in-neighbours
with diffusivity ``alpha``.  Like PageRank it activates every vertex each
iteration, so the hybrid engine pins it to full-processing mode.
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


class HeatSimulation(GASProgram):
    """Explicit graph heat diffusion with fixed step count."""

    name = "heat"
    undirected = False
    monotone = False
    needs_weights = False

    def __init__(self, alpha: float = 0.3, n_steps: int = 20):
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        self.alpha = alpha
        self.n_steps = n_steps
        self._step = 0
        self._indeg: np.ndarray | None = None

    def initial_value(self) -> float:
        return 0.0

    def seed(self, values: np.ndarray, roots: np.ndarray) -> np.ndarray:
        """Roots are heat sources pinned at temperature 1."""
        self._step = 0
        self._sources = np.asarray(roots, dtype=np.int64)
        values[self._sources] = 1.0
        return np.arange(values.shape[0], dtype=np.int64)

    def begin_iteration(self, values, src, dst) -> None:
        # In-degrees: heat is gathered at each edge's *destination*.
        self._indeg = np.bincount(dst, minlength=values.shape[0]).astype(np.float64)

    def make_vtemp(self, values: np.ndarray) -> np.ndarray:
        return np.zeros_like(values)

    def edge_messages(self, src_values, weights, src=None):
        return src_values

    def message_filter(self, src_values: np.ndarray) -> np.ndarray:
        return np.ones(src_values.shape[0], dtype=bool)

    def scatter_reduce(self, vtemp: np.ndarray, dst: np.ndarray, messages: np.ndarray) -> None:
        # NB: heat flows along the edge direction: dst gathers from src.
        np.add.at(vtemp, dst, messages)

    def apply(self, values: np.ndarray, vtemp: np.ndarray) -> np.ndarray:
        assert self._indeg is not None
        indeg = self._indeg
        mean_in = np.divide(vtemp, indeg, out=np.zeros_like(vtemp), where=indeg > 0)
        new = values + self.alpha * (mean_in - values)
        new[indeg == 0] = values[indeg == 0]
        if hasattr(self, "_sources"):
            new[self._sources] = 1.0  # pinned boundary condition
        values[:] = new
        self._step += 1
        if self._step >= self.n_steps:
            return np.empty(0, dtype=np.int64)
        return np.arange(values.shape[0], dtype=np.int64)
