"""PageRank as a stationary (full-processing-only) GAS program.

PageRank activates *every* vertex in every iteration, so incremental
processing "is not an option" (paper Sec. IV.B) and the hybrid engine
pins it to full-processing mode.  Included as the paper's future-work /
extension workload: it exercises the CAL streaming path with a sum
reduction instead of a min reduction.
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


class PageRank(GASProgram):
    """Damped PageRank over the live edge set.

    The property vector holds the current rank.  One engine iteration
    performs ``rank' = (1 - d)/N + d * (A^T (rank / outdeg) + dangling)``.
    Convergence is by L1 delta against ``tol`` (the engine keeps iterating
    while the program reports changed vertices).
    """

    name = "pagerank"
    undirected = False
    monotone = False  # forces full-processing mode
    needs_weights = False

    def __init__(self, damping: float = 0.85, tol: float = 1e-10):
        if not (0.0 < damping < 1.0):
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping
        self.tol = tol
        self._outdeg: np.ndarray | None = None
        self._n: int = 0

    def initial_value(self) -> float:
        return 0.0

    def init_state(self, n_vertices: int) -> np.ndarray:
        if n_vertices == 0:
            return np.empty(0, dtype=np.float64)
        return np.full(n_vertices, 1.0 / n_vertices, dtype=np.float64)

    def seed(self, values: np.ndarray, roots: np.ndarray) -> np.ndarray:
        # Rootless: every vertex participates.
        return np.arange(values.shape[0], dtype=np.int64)

    def grow_state(self, values: np.ndarray, n_vertices: int) -> np.ndarray:
        if n_vertices <= values.shape[0]:
            return values
        # Re-normalise mass over the larger vertex set.
        grown = np.full(n_vertices, 1.0 / n_vertices, dtype=np.float64)
        if values.shape[0]:
            grown[: values.shape[0]] = values * (values.shape[0] / n_vertices)
        return grown

    # -- iteration hooks -------------------------------------------------
    def begin_iteration(self, values, src, dst=None) -> None:
        """Cache out-degrees of the loaded edge set for this iteration."""
        self._n = values.shape[0]
        outdeg = np.bincount(src, minlength=self._n).astype(np.float64)
        self._outdeg = outdeg

    def edge_messages(self, src_values, weights, src=None):
        """Rank mass carried along each edge: rank(src)/outdeg(src)."""
        assert self._outdeg is not None and src is not None, "begin_iteration not called"
        deg = self._outdeg[src]
        return src_values / np.maximum(deg, 1.0)

    def message_filter(self, src_values: np.ndarray) -> np.ndarray:
        return np.ones(src_values.shape[0], dtype=bool)

    def make_vtemp(self, values: np.ndarray) -> np.ndarray:
        """Sum-reduction buffer starts at zero, not at the old values."""
        return np.zeros_like(values)

    def scatter_reduce(self, vtemp: np.ndarray, dst: np.ndarray, messages: np.ndarray) -> None:
        np.add.at(vtemp, dst, messages)

    def apply(self, values: np.ndarray, vtemp: np.ndarray) -> np.ndarray:
        n = values.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        assert self._outdeg is not None
        dangling = values[self._outdeg == 0].sum()
        new = (1.0 - self.damping) / n + self.damping * (vtemp + dangling / n)
        delta = np.abs(new - values).sum()
        values[:] = new
        if delta < self.tol:
            return np.empty(0, dtype=np.int64)
        return np.arange(n, dtype=np.int64)
