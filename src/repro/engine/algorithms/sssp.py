"""Single-source shortest paths as an edge-centric GAS program.

Vertex property = tentative distance; message = ``dist(src) + w(edge)``;
min-reduction.  This is Bellman-Ford in GAS form: each engine iteration
relaxes every loaded edge (full mode) or the active frontier's edges
(incremental mode), converging to shortest distances for non-negative
weights.
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


class SSSP(GASProgram):
    """Shortest distances from one or more roots (non-negative weights)."""

    name = "sssp"
    undirected = False
    monotone = True
    needs_weights = True

    def initial_value(self) -> float:
        return np.inf

    def edge_messages(self, src_values, weights, src=None):
        return src_values + weights
