"""Single-source widest path (SSWP) as an edge-centric GAS program.

The widest (maximum-bottleneck) path problem: the property of a vertex is
the largest capacity ``c`` such that a path from the root exists whose
minimum edge weight is ``c``.  A classic GAS workload alongside BFS/SSSP
(e.g. in Graphicionado's benchmark set [21]); included here as an
extension to demonstrate that the engine's monotone machinery is not
hard-wired to min-reductions:

* message along an edge: ``min(width(src), w(edge))``;
* reduction: ``max``;
* apply: commit increases.

Monotone under insertions (new edges can only widen paths), so all three
engine policies apply.
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


class SSWP(GASProgram):
    """Widest-path widths from one or more roots (positive weights)."""

    name = "sswp"
    undirected = False
    monotone = True
    needs_weights = True

    def initial_value(self) -> float:
        # Unreached vertices have width 0 (no path at all).
        return 0.0

    def seed(self, values: np.ndarray, roots: np.ndarray) -> np.ndarray:
        values[roots] = np.inf  # the root reaches itself at any width
        return np.asarray(roots, dtype=np.int64)

    def edge_messages(self, src_values, weights, src=None):
        return np.minimum(src_values, weights)

    def message_filter(self, src_values: np.ndarray) -> np.ndarray:
        return src_values > 0.0

    def scatter_reduce(self, vtemp: np.ndarray, dst: np.ndarray, messages: np.ndarray) -> None:
        np.maximum.at(vtemp, dst, messages)

    def apply(self, values: np.ndarray, vtemp: np.ndarray) -> np.ndarray:
        changed = np.flatnonzero(vtemp > values)
        if changed.size:
            values[changed] = vtemp[changed]
        return changed
