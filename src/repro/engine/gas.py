"""The Edge-Centric Gather-Apply-Scatter abstraction (paper Sec. IV.A).

A graph algorithm conformable to the edge-centric paradigm supplies three
functions and leaves the rest of the engine untouched:

* ``processEdge`` — compute a message from a source vertex's property
  across an edge (here: :meth:`GASProgram.edge_messages`, vectorised over
  whole edge arrays);
* ``reduce`` — combine messages destined for the same vertex into the
  VTempProperty buffer (here: :meth:`GASProgram.scatter_reduce`, an
  ``at``-style scatter reduction);
* ``apply`` — commit the buffered properties to the VPropertyArray and
  emit the next active-vertex set (here: :meth:`GASProgram.apply`).

Programs operate on the *original* vertex-id space; property vectors are
flat float64 arrays indexed by vertex id (the engine grows them as the
graph grows).  Monotone programs (min-reductions: BFS, SSSP, CC) support
incremental processing; non-monotone ones (PageRank, heat) force full
processing, exactly the "otherwise, incremental processing is not an
option" caveat of Sec. IV.B.
"""

from __future__ import annotations

import abc

import numpy as np


class GASProgram(abc.ABC):
    """Base class for edge-centric GAS algorithm definitions.

    Class attributes
    ----------------
    name:
        Short identifier used in reports ("bfs", "sssp", "cc", ...).
    undirected:
        Declares undirected-graph semantics (weakly-connected
        components): both endpoints of an updated edge become
        inconsistent, and the program REQUIRES the update stream to be
        symmetrised (both directions inserted — how symmetric UF-
        collection matrices are ingested; see
        ``repro.workloads.streams.symmetrize``).  Storing both directions
        is what keeps incremental mode sound: a vertex's improved label
        reaches every neighbour through that vertex's own out-edges.
    monotone:
        Whether per-vertex properties only ever improve under the
        reduction; required for incremental/hybrid execution.
    needs_weights:
        Whether ``edge_messages`` consumes edge weights.
    """

    name: str = "gas"
    undirected: bool = False
    monotone: bool = True
    needs_weights: bool = False

    # -- state initialisation ------------------------------------------- #
    @abc.abstractmethod
    def initial_value(self) -> float:
        """Fill value of a fresh (untouched) vertex property."""

    def init_state(self, n_vertices: int) -> np.ndarray:
        """Fresh property vector over ``n_vertices`` slots."""
        return np.full(n_vertices, self.initial_value(), dtype=np.float64)

    def seed(self, values: np.ndarray, roots: np.ndarray) -> np.ndarray:
        """Install root properties; return the initially active vertices.

        Default: roots get property 0 (BFS/SSSP-style sources).
        """
        values[roots] = 0.0
        return np.asarray(roots, dtype=np.int64)

    def grow_state(self, values: np.ndarray, n_vertices: int) -> np.ndarray:
        """Extend a property vector when the graph grows.

        New slots take the initial value; programs whose initial state is
        per-vertex (CC's identity labels) override this.
        """
        if n_vertices <= values.shape[0]:
            return values
        grown = np.full(n_vertices, self.initial_value(), dtype=np.float64)
        grown[: values.shape[0]] = values
        return grown

    # -- the three user-defined functions ------------------------------- #
    @abc.abstractmethod
    def edge_messages(
        self,
        src_values: np.ndarray,
        weights: np.ndarray,
        src: np.ndarray | None = None,
    ) -> np.ndarray:
        """processEdge: message carried to each edge's destination.

        ``src`` (raw source ids, aligned with ``src_values``) is provided
        for programs whose message needs per-source state beyond the
        property value (PageRank divides by cached out-degree).
        """

    def scatter_reduce(self, vtemp: np.ndarray, dst: np.ndarray, messages: np.ndarray) -> None:
        """reduce: fold messages into the VTempProperty buffer (min)."""
        np.minimum.at(vtemp, dst, messages)

    def apply(self, values: np.ndarray, vtemp: np.ndarray) -> np.ndarray:
        """apply: commit improved properties; return changed vertex ids.

        The default commit keeps the better (smaller) property and
        activates exactly the vertices whose property changed — the
        next-iteration active set of Sec. IV.A.
        """
        changed = np.flatnonzero(vtemp < values)
        if changed.size:
            values[changed] = vtemp[changed]
        return changed

    # -- per-iteration hooks (defaults suit monotone programs) ---------- #
    def begin_iteration(
        self, values: np.ndarray, src: np.ndarray, dst: np.ndarray
    ) -> None:
        """Called once per iteration with the loaded edge endpoints.

        Stationary programs (PageRank, heat) cache degree vectors here;
        monotone programs need nothing.
        """

    def make_vtemp(self, values: np.ndarray) -> np.ndarray:
        """Fresh VTempProperty buffer for one iteration.

        Min-reduction programs start from the committed values (a message
        only wins by improving); sum-reduction programs override to start
        from zero.
        """
        return values.copy()

    # -- dynamic-graph hooks -------------------------------------------- #
    def inconsistent_vertices(self, batch: np.ndarray) -> np.ndarray:
        """Set-Inconsistency-Vertices unit (paper Sec. IV.C).

        Default (BFS/SSSP): the *source* vertices of the update batch.
        Undirected programs (CC) take both endpoints.
        """
        if self.undirected:
            return np.unique(batch.reshape(-1))
        return np.unique(batch[:, 0])

    def message_filter(self, src_values: np.ndarray) -> np.ndarray:
        """Mask of edges whose source can emit a useful message.

        Sources still at the initial (unreached) property cannot improve
        anything under a monotone min-reduction; skipping them is pure
        arithmetic savings (the edges are still loaded and accounted).
        """
        return np.isfinite(src_values)
