"""The hybrid graph engine (paper Sec. IV).

Drives an edge-centric GAS program over a dynamic store, choosing between
full processing (FP) and incremental processing (IP) *for every
iteration*.  The Inference-Box unit computes, during the apply phase of
iteration *i*, the predictor

    T = A / E        (A = active vertices for iteration i+1,
                      E = edges loaded so far)

and selects FP for iteration *i+1* when ``T > threshold`` (0.02 in the
paper), IP otherwise.  Fixed-mode execution ("full" / "incremental") is
available for the per-mode comparison of Figs. 11-13, and a non-monotone
program (PageRank, heat) is always run in FP mode since incremental
processing is then not an option.

The engine keeps per-iteration traces — mode chosen, active-vertex count,
edges processed, access-counter deltas — which are how the benchmark
harness computes modeled throughputs and prediction-accuracy figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EngineConfig
from repro.core.stats import AccessStats
from repro.engine import modes
from repro.engine.gas import GASProgram
from repro.engine.inconsistency import inconsistent_vertices
from repro.errors import EngineError
from repro.obs import hooks as obs_hooks
from repro.obs.tracing import span as obs_span

#: Engine mode-policy names.
POLICY_FULL = "full"
POLICY_INCREMENTAL = "incremental"
POLICY_HYBRID = "hybrid"
#: Fixed vertex-centric full processing (paper Sec. IV.A): every
#: iteration loads via :func:`~repro.engine.modes.load_edges_full_vertex_centric`.
POLICY_FULL_VC = "full_vc"
_POLICIES = (POLICY_FULL, POLICY_INCREMENTAL, POLICY_HYBRID, POLICY_FULL_VC)


@dataclass
class IterationRecord:
    """Trace of one processing+apply iteration."""

    index: int
    mode: str
    n_active: int
    edges_processed: int
    n_changed: int
    predictor: float
    stats_delta: AccessStats


@dataclass
class ComputeResult:
    """Outcome of one :meth:`HybridEngine.compute` invocation."""

    iterations: list[IterationRecord] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def edges_processed(self) -> int:
        return sum(r.edges_processed for r in self.iterations)

    def modes_used(self) -> list[str]:
        return [r.mode for r in self.iterations]

    def merged_stats(self) -> AccessStats:
        merged = AccessStats()
        for r in self.iterations:
            merged.merge(r.stats_delta)
        return merged


class HybridEngine:
    """Hybrid FP/IP graph engine over a dynamic store.

    Parameters
    ----------
    store:
        A :class:`~repro.core.graphtinker.GraphTinker` or
        :class:`~repro.stinger.Stinger` instance (anything satisfying
        :class:`~repro.engine.modes.Store`).
    program:
        The GAS algorithm to run.
    config:
        Threshold / iteration limits.
    policy:
        ``"hybrid"`` (default), ``"full"``, or ``"incremental"``.

    Examples
    --------
    >>> from repro import GraphTinker
    >>> from repro.engine import HybridEngine
    >>> from repro.engine.algorithms import BFS
    >>> gt = GraphTinker()
    >>> _ = gt.insert_batch([[0, 1], [1, 2], [2, 3]])
    >>> eng = HybridEngine(gt, BFS())
    >>> eng.reset(roots=[0])
    >>> _ = eng.compute()
    >>> eng.value_of(3)
    3.0
    """

    def __init__(
        self,
        store,
        program: GASProgram,
        config: EngineConfig | None = None,
        policy: str = POLICY_HYBRID,
    ):
        if policy not in _POLICIES:
            raise EngineError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
        if not program.monotone and policy == POLICY_INCREMENTAL:
            raise EngineError(
                f"{program.name} is not monotone; incremental processing is not an option"
            )
        self.store = store
        self.program = program
        self.config = config if config is not None else EngineConfig()
        self.policy = policy
        self.values = program.init_state(0)
        self._active = np.empty(0, dtype=np.int64)
        self._next_mode = modes.FULL
        self.history: list[ComputeResult] = []

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #
    def _grow_values(self, max_vid: int) -> None:
        if max_vid >= self.values.shape[0]:
            self.values = self.program.grow_state(self.values, max_vid + 1)

    def reset(self, roots: np.ndarray | list[int] | None = None) -> None:
        """Reinitialise the analysis state (store contents untouched).

        Sizes the property vector to the current vertex-id horizon, seeds
        the program's roots and installs the initial active set.
        """
        horizon = self._vertex_horizon()
        self.values = self.program.init_state(horizon)
        if roots is None:
            roots = np.empty(0, dtype=np.int64)
        roots = np.asarray(roots, dtype=np.int64)
        if roots.size:
            self._grow_values(int(roots.max()))
        self._active = self.program.seed(self.values, roots)
        self._next_mode, _ = self.predict_mode(self._active.size, self._active)

    def _vertex_horizon(self) -> int:
        """One past the largest vertex id the engine must address."""
        src, dst, _ = self._peek_edges()
        horizon = 0
        if src.size:
            horizon = int(max(src.max(), dst.max())) + 1
        return horizon

    def _peek_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Load all edges without disturbing the access accounting."""
        backup = self.store.stats.snapshot()
        triple = modes.load_edges_full(self.store)
        self.store.stats.reset()
        self.store.stats.merge(backup)
        return triple

    def value_of(self, vertex: int) -> float:
        """Committed property of ``vertex`` (initial value if untouched)."""
        if vertex >= self.values.shape[0]:
            return self.program.initial_value()
        return float(self.values[vertex])

    @property
    def active_vertices(self) -> np.ndarray:
        """The pending active set (next iteration's frontier)."""
        return self._active

    # ------------------------------------------------------------------ #
    # the inference box
    # ------------------------------------------------------------------ #
    def predict_mode(
        self, n_active: int, active: np.ndarray | None = None
    ) -> tuple[str, float]:
        """Inference-Box decision for the next iteration.

        Returns ``(mode, T)``.  With the default ``"ratio"`` predictor,
        ``T = A / E`` (paper Sec. IV.B); FP when ``T`` exceeds the
        configured threshold (paper: 0.02), IP otherwise.  With the
        ``"degree"`` predictor (the paper's future-work heuristic),
        ``T = D / E`` where ``D`` is the active vertices' total
        out-degree — a direct estimate of incremental-mode work.
        """
        if self.policy == POLICY_FULL_VC:
            return modes.FULL_VC, float("nan")
        if not self.program.monotone:
            return modes.FULL, float("inf")
        if self.policy == POLICY_FULL:
            return modes.FULL, float("nan")
        if self.policy == POLICY_INCREMENTAL:
            return modes.INCREMENTAL, float("nan")
        n_edges = self.store.n_edges
        if n_edges == 0:
            return modes.INCREMENTAL, 0.0
        if self.config.predictor == "degree" and active is not None:
            # The degree sum is collected during the apply phase; one
            # degree probe per active vertex.
            numerator = float(
                sum(self.store.degree(int(v)) for v in active.tolist())
            )
        else:
            numerator = float(n_active)
        predictor = numerator / n_edges
        mode = modes.FULL if predictor > self.config.threshold else modes.INCREMENTAL
        return mode, predictor

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def update_and_compute(
        self, batch: np.ndarray, weights: np.ndarray | None = None
    ) -> ComputeResult:
        """Apply an insert batch, set inconsistency vertices, and iterate.

        This is the paper's evaluation loop step: load one batch into the
        store, mark the affected vertices, run the analysis to a fixed
        point (Sec. V.B, "after each batch insertion, the graph engine
        runs the given graph analytics algorithm on the current state").
        """
        batch = np.asarray(batch, dtype=np.int64)
        self.store.insert_batch(batch, weights)
        self.mark_inconsistent(batch)
        return self.compute()

    def mark_inconsistent(self, batch: np.ndarray) -> None:
        """Fold a batch's inconsistency vertices into the active set."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            return
        vids = inconsistent_vertices(self.program, batch)
        if vids.size:
            self._grow_values(int(vids.max()))
        self._active = np.union1d(self._active, vids)
        mode, _ = self.predict_mode(self._active.size, self._active)
        self._next_mode = mode

    def compute(self) -> ComputeResult:
        """Iterate the GAS program to a fixed point from the active set."""
        with obs_span("engine.compute", stats=self.store.stats,
                      program=self.program.name, policy=self.policy,
                      snapshot=getattr(self.store, "analytics_snapshot", None)
                      is not None):
            result = ComputeResult()
            iteration = 0
            while self._active.size:
                if iteration >= self.config.max_iterations:
                    raise EngineError(
                        f"no fixed point within {self.config.max_iterations} iterations"
                    )
                record = self._iterate_once(iteration, self._next_mode)
                result.iterations.append(record)
                iteration += 1
            self.history.append(result)
        if obs_hooks.enabled and result.iterations:
            self._publish_result(result)
        return result

    _MODE_METRIC = {
        modes.FULL: "full",
        modes.INCREMENTAL: "incremental",
        modes.FULL_VC: "full_vc",
    }

    def _publish_result(self, result: ComputeResult) -> None:
        """Count the inference box's per-iteration mode decisions."""
        from repro.obs.metrics import get_registry

        registry = get_registry()
        for record in result.iterations:
            suffix = self._MODE_METRIC.get(record.mode, record.mode)
            registry.counter(f"engine.mode.{suffix}").inc()
        registry.counter("engine.iterations").inc(result.n_iterations)
        registry.counter("engine.edges_processed").inc(result.edges_processed)
        last = result.iterations[-1].predictor
        if last == last and last != float("inf"):  # skip NaN/inf predictors
            registry.gauge("engine.predictor").set(last)

    def _iterate_once(self, index: int, mode: str) -> IterationRecord:
        """One processing + apply phase in the given mode.

        Each iteration is one compute-mode decision; when tracing is on it
        is recorded as an ``engine.<mode>`` span nested under the
        enclosing ``engine.compute`` span.
        """
        with obs_span(f"engine.{mode}", stats=self.store.stats,
                      iteration=index) as sp:
            record = self._iterate_once_inner(index, mode)
            sp.set_attr("n_active", record.n_active)
            sp.set_attr("edges_processed", record.edges_processed)
        return record

    def _iterate_once_inner(self, index: int, mode: str) -> IterationRecord:
        program = self.program
        store = self.store
        before = store.stats.snapshot()
        active = self._active

        # ---- processing phase (LoadEdges + pipeline) -------------------
        if mode == modes.FULL:
            src, dst, weight = modes.load_edges_full(store)
        elif mode == modes.FULL_VC:
            src, dst, weight = modes.load_edges_full_vertex_centric(store)
        else:
            src, dst, weight = modes.load_edges_incremental(store, active)
        edges_processed = int(src.shape[0])
        if edges_processed:
            self._grow_values(int(max(src.max(), dst.max())))
        values = self.values
        vtemp = program.make_vtemp(values)
        program.begin_iteration(values, src, dst)
        if edges_processed:
            # Undirected programs (CC) rely on the stream being
            # symmetrised (see GASProgram.undirected): a single forward
            # scatter is then correct in *both* modes, which is what
            # makes per-iteration mode flipping sound.
            self._scatter(program, values, vtemp, src, dst, weight)

        # ---- apply phase (commit + next active set) ---------------------
        changed = program.apply(values, vtemp)
        self._active = changed

        # ---- inference box: pick the mode for iteration i+1 -------------
        next_mode, predictor = self.predict_mode(changed.size, changed)
        self._next_mode = next_mode

        return IterationRecord(
            index=index,
            mode=mode,
            n_active=int(active.size),
            edges_processed=edges_processed,
            n_changed=int(changed.size),
            predictor=predictor,
            stats_delta=store.stats.delta(before),
        )

    @staticmethod
    def _scatter(
        program: GASProgram,
        values: np.ndarray,
        vtemp: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
    ) -> None:
        src_values = values[src]
        mask = program.message_filter(src_values)
        if not mask.any():
            return
        if not mask.all():
            src, dst, weight = src[mask], dst[mask], weight[mask]
            src_values = src_values[mask]
        messages = program.edge_messages(src_values, weight, src)
        program.scatter_reduce(vtemp, dst, messages)
