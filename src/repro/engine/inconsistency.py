"""The Set-Inconsistency-Vertices unit (paper Sec. IV.C).

After every batch update and before graph processing starts, the vertices
whose properties may have changed because of the update — the
*inconsistency vertices* — must be identified; they become the first
active set.  The membership rule is algorithm-dependent (the paper's
examples: batch sources for BFS, both endpoints for weakly-connected
components), and the unit "is automatically generated depending on the
algorithm to be run" — here, derived from the program's declared
directionality, with an override hook on the program itself.
"""

from __future__ import annotations

import numpy as np

from repro.engine.gas import GASProgram


def inconsistent_vertices(program: GASProgram, batch: np.ndarray) -> np.ndarray:
    """Initial active set implied by an update batch for ``program``.

    Delegates to :meth:`GASProgram.inconsistent_vertices` (default:
    sources for directed programs, both endpoints for undirected ones).
    """
    batch = np.asarray(batch, dtype=np.int64)
    if batch.size == 0:
        return np.empty(0, dtype=np.int64)
    return program.inconsistent_vertices(batch.reshape(-1, 2))
