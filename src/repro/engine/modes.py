"""Execution modes: full-processing (FP) and incremental-processing (IP).

The two load paths of the paper's LoadEdges unit (Sec. IV.C):

* **FP** streams the *entire* live edge set from the CAL EdgeblockArray —
  contiguous block reads, no per-vertex indirection, but work proportional
  to |E| regardless of how few vertices are active.
* **IP** gathers only the out-edges of the *active* vertices from the
  EdgeblockArray — work proportional to the frontier, but every vertex
  visit costs non-contiguous block reads.

Both produce the same ``(src, dst, weight)`` triple arrays for the GAS
processing phase, so an iteration computes identical results under either
mode; only the access pattern (and hence cost) differs.  That equivalence
is what lets the hybrid engine flip modes per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core.store import Store
from repro.engine.snapshot import gather_active_scalar, sanitize_active

#: Mode identifiers (also used in iteration traces and reports).
FULL = "FP"
INCREMENTAL = "IP"
#: Vertex-centric full processing (paper Sec. IV.A future work): iterate
#: *vertices* and gather each one's out-edges from the EdgeblockArray,
#: instead of streaming the edge set from the CAL.
FULL_VC = "FP-VC"


def load_edges_full(store: Store) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """FP load: stream every live edge (original ids).

    For GraphTinker this goes through the CAL (sequential block reads);
    for STINGER it sweeps every vertex chain (random block reads) — the
    structural difference behind the Figs. 11-13 gap.

    Per-cell inspection costs are charged inside the stores' retrieval
    paths (every *slot* of every block visited, occupied or not), which
    is what makes full mode not free when the frontier is tiny and what
    makes sparse layouts pay — the trade-offs the paper's T = A/E
    threshold and PAGEWIDTH sweeps measure.

    When the store carries an analytics snapshot *and* its native full
    load is itself the per-vertex sweep (STINGER, CAL-less GraphTinker),
    the sweep is served from the CSR mirror — bit-identical data and
    charges, one gather instead of a Python loop.  A CAL-backed
    GraphTinker streams in CAL insertion order, which the CSR view does
    not reproduce, so that path stays native.
    """
    snap = store.analytics_snapshot
    if snap is not None and snap.serves_full:
        return snap.gather_all()
    return store.analytics_edges()


def load_edges_full_vertex_centric(
    store: Store,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """VC full load: visit every vertex, gathering its out-edges.

    The vertex-centric framing of the GAS model (paper Sec. IV.A) whose
    efficiency the paper leaves to future work.  On GraphTinker this
    reads the EdgeblockArray per vertex (random block reads over
    PAGEWIDTH-wide blocks) rather than streaming the CAL, so comparing it
    against :func:`load_edges_full` quantifies exactly what the
    edge-centric + CAL combination buys — see
    ``benchmarks/bench_vertex_centric.py``.

    With an analytics snapshot attached the sweep is one CSR gather —
    the per-vertex order and per-row charges are exactly those of the
    loop below, so traces and AccessStats stay bit-identical.
    """
    snap = store.analytics_snapshot
    if snap is not None:
        return snap.gather_all()
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for dense in range(store.dense_row_count()):
        dst, weight = store.row_neighbors(dense)
        if dst.shape[0]:
            srcs.append(np.full(dst.shape[0], dense, dtype=np.int64))
            dsts.append(dst)
            weights.append(weight)
    if not srcs:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
    return (
        store.original_ids(np.concatenate(srcs)),
        np.concatenate(dsts),
        np.concatenate(weights),
    )


def load_edges_incremental(
    store: Store, active: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """IP load: gather the out-edges of the active vertices only.

    Vertices with no out-edges (pure sinks, or ids never inserted as a
    source) contribute nothing; GraphTinker resolves them with one SGH
    probe, STINGER with one Logical-Vertex-Array read.

    The frontier is sanitized first — duplicates must not double-gather
    (or double-charge) a vertex, and negative ids are dropped rather
    than allowed to index degree arrays from the end.  Stores exposing
    ``neighbors_many`` (GraphTinker, STINGER) serve the whole gather in
    one batched call, vectorized when their analytics snapshot is
    attached; the scalar fallback runs the identical per-vertex loop.
    """
    return store.neighbors_many(active)
