"""Path reconstruction from converged BFS/SSSP property vectors.

The engine computes distance/level vectors; users usually also want the
actual route.  Rather than burdening the hot scatter loop with parent
tracking, parents are recovered *after* convergence with one vectorised
pass over the live edge set: an edge (u, v, w) is a *witness* for v iff
``value[u] + cost(u, v) == value[v]``, i.e. it lies on some optimal path.
Walking witnesses backwards from a target yields an optimal path in
O(path length) dictionary hops.

Works unchanged for BFS (cost = 1) and SSSP (cost = w); both are
min-plus fixed points, which is exactly the witness condition.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EngineError


def predecessor_map(
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    values: np.ndarray,
    unit_cost: bool = False,
    tol: float = 1e-9,
) -> dict[int, int]:
    """Map every optimally-reached vertex to one optimal predecessor.

    Parameters
    ----------
    src, dst, weight:
        The live edge arrays (``store.analytics_edges()``).
    values:
        The converged property vector (levels or distances).
    unit_cost:
        True for BFS semantics (every edge costs 1), False to use
        ``weight`` (SSSP).
    """
    if src.size == 0:
        return {}
    horizon = values.shape[0]
    mask = (src < horizon) & (dst < horizon)
    s, d, w = src[mask], dst[mask], weight[mask]
    cost = np.ones_like(w) if unit_cost else w
    sv = values[s]
    finite = np.isfinite(sv) & np.isfinite(values[d])
    s, d, cost, sv = s[finite], d[finite], cost[finite], sv[finite]
    witness = np.abs(sv + cost - values[d]) <= tol
    out: dict[int, int] = {}
    for u, v in zip(s[witness].tolist(), d[witness].tolist()):
        out.setdefault(v, u)  # first witness wins; any witness is optimal
    return out


def reconstruct_path(
    store,
    values: np.ndarray,
    root: int,
    target: int,
    unit_cost: bool = False,
) -> list[int]:
    """Return one optimal path ``[root, ..., target]``.

    Raises
    ------
    EngineError
        If ``target`` is unreached (infinite property) or the witness
        walk cannot close the path (stale ``values`` for this store).
    """
    if target >= values.shape[0] or not np.isfinite(values[target]):
        raise EngineError(f"vertex {target} is not reached from {root}")
    if target == root:
        return [root]
    src, dst, weight = store.analytics_edges()
    parents = predecessor_map(src, dst, weight, values, unit_cost=unit_cost)
    path = [target]
    seen = {target}
    node = target
    while node != root:
        node = parents.get(node)
        if node is None or node in seen:
            raise EngineError(
                "no witness chain back to the root — the value vector does "
                "not correspond to this store's current edge set"
            )
        seen.add(node)
        path.append(node)
    path.reverse()
    return path


def path_cost(store, path: list[int], unit_cost: bool = False) -> float:
    """Total cost of a concrete path through the store's current edges."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        w = store.edge_weight(u, v)
        if w is None:
            raise EngineError(f"path edge ({u}, {v}) is not in the store")
        total += 1.0 if unit_cost else w
    return total
