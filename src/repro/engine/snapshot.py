"""The analytics snapshot layer — an incrementally-maintained CSR view.

Every incremental / vertex-centric analytics load used to gather frontier
edges through a per-vertex Python loop over the store's retrieval path
(`eba.neighbors` tree walks for GraphTinker, chain walks for STINGER) —
the dominant wall-clock cost of BFS/SSSP/CC once ingest is vectorized.
This module keeps a CSR mirror of the store next to it — degree-prefix
offsets plus dense neighbor/weight arrays — so a whole frontier becomes
one fancy-indexing gather.  It is the update-format/analysis-format
hybrid of GraphTango and DGAP's CSR-like analysis view, adapted to the
reproduction's cost-model discipline.

**The charge-mirror contract** (same license as the PR-4 batch kernels):
the snapshot must be *behaviourally invisible*.  With the feature on or
off the engine produces bit-identical vertex properties, iteration
traces, AND bit-identical modeled :class:`~repro.core.stats.AccessStats`
— the only permitted effect is wall-clock speed.  This works because the
stores' retrieval paths charge deterministically per vertex: walking a
vertex's edgeblock tree (or STINGER chain) costs the same counter bumps
every time as long as that vertex's structure is unchanged.  So each CSR
row carries the exact ``AccessStats`` delta one native per-vertex
retrieval would charge (measured by running the native walk once, with
the live counters snapshotted and restored), and a batched gather replays
the summed charges of exactly the rows the native loop would have
visited.

**Dirty tracking**: stores mark a dense row dirty on every mutation that
touches it (single-edge calls mark inline; batch kernels mark the batch's
source set).  A gather first *syncs*: new vertices extend the row table,
dirty rows are re-measured (data, order, and charge all come from the
native walk, so row contents are bit-identical to a fresh per-vertex
call), and the flat CSR arrays are rebuilt once.  Steady-state churn
therefore patches only touched rows and pays one concatenation per
batch, not one tree walk per frontier vertex per iteration.

Observability (when :mod:`repro.obs` is enabled):

* ``engine.snapshot.hits`` — gathers served from the snapshot,
* ``engine.snapshot.rebuilds`` — flat CSR rebuilds,
* ``engine.snapshot.patched_rows`` — dirty rows re-measured.
"""

from __future__ import annotations

import bisect
from dataclasses import fields as _dataclass_fields

import numpy as np

from repro.core.stats import AccessStats
from repro.obs import hooks as obs_hooks

#: AccessStats field names, in declaration order — the columns of the
#: per-row charge matrix.
STAT_FIELDS: tuple[str, ...] = tuple(f.name for f in _dataclass_fields(AccessStats))
_N_FIELDS = len(STAT_FIELDS)


def _empty_triple() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    empty_i = np.empty(0, dtype=np.int64)
    return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)


def sanitize_active(active: np.ndarray) -> np.ndarray:
    """Deduplicate and validate a frontier: sorted unique, non-negative.

    Duplicate frontier ids must not double-gather (or double-charge) a
    vertex's edges, and negative ids are dropped outright — they are
    reserved sentinels in the stores and would otherwise index degree
    arrays from the end.  Engine-produced active sets are already sorted
    and unique (``np.flatnonzero`` / ``np.union1d``), so for engine
    traffic this is an order-preserving no-op.
    """
    active = np.unique(np.asarray(active, dtype=np.int64).reshape(-1))
    if active.size and active[0] < 0:
        active = active[np.searchsorted(active, 0):]
    return active


def gather_active_scalar(store, active: np.ndarray):
    """Reference per-vertex frontier gather (the pre-snapshot load path).

    ``active`` must already be sanitized.  One ``degree`` probe per
    active vertex, one ``neighbors`` walk per vertex that has out-edges —
    the exact call (and therefore charge) sequence the snapshot's batched
    gather mirrors.
    """
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for v in active.tolist():
        if store.degree(v) == 0:
            continue
        dst, weight = store.neighbors(v)
        if dst.shape[0]:
            srcs.append(np.full(dst.shape[0], v, dtype=np.int64))
            dsts.append(dst)
            weights.append(weight)
    if not srcs:
        return _empty_triple()
    return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(weights)


class AnalyticsSnapshot:
    """Incrementally-maintained CSR view over one store.

    Works for any backend implementing the snapshot-row surface of the
    :class:`repro.core.store.Store` protocol — ``dense_row_count()`` /
    ``row_neighbors()`` for the charged native walks, ``id_translator``
    for the original<->dense mapping (``None`` on raw-id stores), and
    ``full_load_is_row_sweep`` to say whether the FP load is this same
    sweep.  Attach via the stores' ``enable_snapshot()`` or the
    ``snapshot=True`` config flag.
    """

    def __init__(self, store):
        self.store = store
        self._rows_dst: list[np.ndarray] = []
        self._rows_weight: list[np.ndarray] = []
        self._charges = np.zeros((0, _N_FIELDS), dtype=np.int64)
        self._dirty: set[int] = set()
        self._all_dirty = False
        self._flat_ok = False
        self._indptr = np.zeros(1, dtype=np.int64)
        self._dst = np.empty(0, dtype=np.int64)
        self._weight = np.empty(0, dtype=np.float64)
        # Serving-tier patch overlay: rows re-measured since the last
        # flat rebuild, mapped to their current (dst, weight) arrays.
        # Lets `sync()` stay O(dirty rows) instead of paying the O(E)
        # concatenation per call; the flat rebuild amortizes over many
        # syncs (see `sync`).
        self._overlay: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Round-robin resume point for budgeted syncs (`max_rows`): the
        # next capped sync starts measuring at the first dirty row >=
        # this cursor, so sustained churn on low rows cannot starve high
        # ones.
        self._patch_cursor = 0
        # original -> dense translation cache (GraphTinker + SGH only)
        self._xlat_count = -1
        self._xlat_originals = np.empty(0, dtype=np.int64)
        self._xlat_dense = np.empty(0, dtype=np.int64)
        #: lifetime counters (mirrored to obs metrics when enabled)
        self.hits = 0
        self.rebuilds = 0
        self.patched_rows = 0
        #: Monotonic view version: bumped every time a sync changes the
        #: published view (rows patched into the overlay, rows appended,
        #: or the flat arrays rebuilt).  0 means "never synced" — a
        #: reader holding generation g knows the view reflects every
        #: mutation applied before the sync that produced g, and nothing
        #: after.
        self.generation = 0

    # ------------------------------------------------------------------ #
    # dirty tracking (store hooks)
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return len(self._rows_dst)

    def _store_rows(self) -> int:
        return self.store.dense_row_count()

    def mark_dirty(self, row: int) -> None:
        """One mutation touched dense row ``row``; re-measure it on next use."""
        self._dirty.add(int(row))

    def mark_dirty_many(self, rows: np.ndarray) -> None:
        """Batch-kernel hook: mark every touched dense row at once."""
        self._dirty.update(np.unique(np.asarray(rows, dtype=np.int64)).tolist())

    def invalidate(self) -> None:
        """Drop everything cached (e.g. after an fsck repair rebuilt rows)."""
        self._all_dirty = True
        self._flat_ok = False
        self._xlat_count = -1

    def rebase_generation(self, floor: int) -> None:
        """Force the generation strictly above ``floor``.

        A replica resync replaces the whole store — and with it this
        snapshot — but clients assert generation monotonicity per
        connection, so the replacement snapshot must not restart the
        count below what readers already observed.
        """
        if int(floor) >= self.generation:
            self.generation = int(floor) + 1

    @property
    def pending_rows(self) -> int:
        """Rows the next sync will re-measure (observable staleness)."""
        if self._all_dirty:
            return len(self._rows_dst)
        new_rows = max(0, self._store_rows() - len(self._rows_dst))
        return len(self._dirty) + new_rows

    # ------------------------------------------------------------------ #
    # lock-free read-path accessors (repro.net serving tier)
    # ------------------------------------------------------------------ #
    def sync(self, *, rebuild_ratio: float = 0.05,
             rebuild_min: int = 1024,
             max_rows: int | None = None) -> int:
        """Bring the *serving* view current; return the new generation.

        Cheap by design: dirty rows are re-measured and patched into the
        overlay (O(changed rows)), and the O(E) flat rebuild only runs
        when the overlay has grown past ``max(rebuild_min, rebuild_ratio
        * n_rows)`` — so a serving tier syncing after every applied
        micro-batch pays for what changed, not for the whole graph.

        ``max_rows`` bounds the per-call patch work: at most that many
        dirty rows are re-measured (round-robin across the row space),
        the rest stay dirty for the next sync.  A capped sync trades
        strict freshness ("view reflects everything applied before it")
        for a hard ceiling on how long the caller's lock is held —
        :attr:`pending_rows` says how much backlog remains, and repeated
        capped syncs drain it.  The returned generation stays monotonic
        either way.

        Call under whatever lock serializes store mutations (the service
        holds its store lock).
        """
        patched = self._sync_rows(max_rows=max_rows)
        if patched:
            for row in patched:
                self._overlay[row] = (self._rows_dst[row],
                                      self._rows_weight[row])
            self.generation += 1
        if not self._flat_ok and len(self._overlay) >= max(
                rebuild_min, int(rebuild_ratio * len(self._rows_dst))):
            self._rebuild_flat()
        return self.generation

    def view_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The last-rebuilt flat CSR triple ``(indptr, dst, weight)``.

        Arrays are *replaced*, never mutated in place, on rebuild — so a
        caller that captured references under the store lock can keep
        reading them lock-free while mutations continue; it simply sees
        the generation it captured.  Call :meth:`sync` first, and layer
        :meth:`overlay_rows` on top — rows patched since the rebuild are
        only current there.
        """
        return self._indptr, self._dst, self._weight

    def overlay_rows(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Copy of the patch overlay: dense row -> ``(dst, weight)``.

        The returned dict is the caller's to keep (a shallow copy; the
        arrays themselves are replaced-not-mutated on re-measure, same
        license as :meth:`view_arrays`).  A row present here shadows its
        flat-CSR slice; a row ``>= len(indptr) - 1`` that is absent has
        no edges yet.
        """
        return dict(self._overlay)

    def translation(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted original ids and their dense rows (GraphTinker + SGH).

        The same replace-don't-mutate license as :meth:`view_arrays`:
        refresh under the store lock, then read the captured arrays
        lock-free.  Uncharged (serving-tier reads live outside the
        modeled cost world).
        """
        self._refresh_xlat()
        return self._xlat_originals, self._xlat_dense

    # ------------------------------------------------------------------ #
    # sync: patch dirty rows, rebuild the flat CSR arrays
    # ------------------------------------------------------------------ #
    def _measure_row(self, row: int) -> None:
        """Re-run the native per-vertex walk for ``row``, capturing its data
        and the exact AccessStats delta it charges (then restoring the
        live counters — measuring must not perturb the accounting)."""
        stats = self.store.stats
        before = [getattr(stats, name) for name in STAT_FIELDS]
        dst, weight = self.store.row_neighbors(row)
        for i, name in enumerate(STAT_FIELDS):
            self._charges[row, i] = getattr(stats, name) - before[i]
            setattr(stats, name, before[i])
        self._rows_dst[row] = dst
        self._rows_weight[row] = weight

    def _sync_rows(self, max_rows: int | None = None) -> set[int]:
        """Grow the row table and re-measure dirty rows (no flat rebuild).

        With ``max_rows`` set, at most that many dirty rows are measured
        per call, resuming round-robin from :attr:`_patch_cursor`; the
        remainder stays in ``_dirty``.  Returns the set of rows whose
        cached arrays changed; the flat CSR is stale (``_flat_ok``
        False) whenever that set is nonempty.
        """
        n_store = self._store_rows()
        n = len(self._rows_dst)
        if n_store > n:
            for row in range(n, n_store):
                self._rows_dst.append(np.empty(0, dtype=np.int64))
                self._rows_weight.append(np.empty(0, dtype=np.float64))
                self._dirty.add(row)
            self._charges = np.vstack(
                [self._charges, np.zeros((n_store - n, _N_FIELDS), dtype=np.int64)]
            )
            self._flat_ok = False
        if self._all_dirty:
            self._dirty.update(range(len(self._rows_dst)))
            self._all_dirty = False
        patched: set[int] = set()
        if self._dirty:
            if max_rows is not None and len(self._dirty) > max_rows:
                rows_sorted = sorted(self._dirty)
                i = bisect.bisect_left(rows_sorted, self._patch_cursor)
                todo = (rows_sorted[i:] + rows_sorted[:i])[:max_rows]
                self._patch_cursor = todo[-1] + 1
                self._dirty.difference_update(todo)
                patched = set(todo)
            else:
                todo = sorted(self._dirty)
                patched = self._dirty
                self._dirty = set()
            for row in todo:
                self._measure_row(row)
            self.patched_rows += len(patched)
            if obs_hooks.enabled:
                self._counter("patched_rows", len(patched))
                from repro.obs.metrics import get_registry

                get_registry().quantile(
                    "engine.snapshot.patch_rows",
                    "rows re-measured per snapshot sync",
                ).record(len(patched))
            self._flat_ok = False
        return patched

    def _rebuild_flat(self) -> None:
        """Concatenate the row cache into fresh flat CSR arrays.

        The O(E) step: new ``indptr/dst/weight`` arrays are built and
        *swapped in* (never written in place), the overlay they absorb
        is cleared, and the generation advances.
        """
        counts = np.fromiter(
            (a.shape[0] for a in self._rows_dst),
            dtype=np.int64, count=len(self._rows_dst),
        )
        self._indptr = np.zeros(counts.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        if self._rows_dst:
            self._dst = np.concatenate(self._rows_dst)
            self._weight = np.concatenate(self._rows_weight)
        else:
            self._dst = np.empty(0, dtype=np.int64)
            self._weight = np.empty(0, dtype=np.float64)
        self._overlay = {}
        self._flat_ok = True
        self.rebuilds += 1
        self.generation += 1
        if obs_hooks.enabled:
            self._counter("rebuilds", 1)

    def _sync(self) -> None:
        """Engine-path sync: rows current AND flat arrays current."""
        self._sync_rows()
        if not self._flat_ok:
            self._rebuild_flat()

    @staticmethod
    def _counter(suffix: str, by: int) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(f"engine.snapshot.{suffix}").inc(by)

    def _count_hit(self) -> None:
        self.hits += 1
        if obs_hooks.enabled:
            self._counter("hits", 1)

    # ------------------------------------------------------------------ #
    # charge replay
    # ------------------------------------------------------------------ #
    def _apply_charge(self, vec: np.ndarray) -> None:
        stats = self.store.stats
        for i, name in enumerate(STAT_FIELDS):
            value = int(vec[i])
            if value:
                setattr(stats, name, getattr(stats, name) + value)

    # ------------------------------------------------------------------ #
    # CSR gathers
    # ------------------------------------------------------------------ #
    def _take_rows(
        self, rows: np.ndarray, src_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather the CSR segments of ``rows``; sources repeat ``src_ids``."""
        starts = self._indptr[rows]
        counts = self._indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _empty_triple()
        ends = np.cumsum(counts)
        base = np.repeat(starts - (ends - counts), counts)
        idx = base + np.arange(total, dtype=np.int64)
        return np.repeat(src_ids, counts), self._dst[idx], self._weight[idx]

    def _refresh_xlat(self) -> None:
        sgh = self.store.id_translator
        if self._xlat_count != len(sgh):
            originals = sgh.reverse_view()
            order = np.argsort(originals, kind="stable")
            self._xlat_originals = originals[order].copy()
            self._xlat_dense = order.astype(np.int64)
            self._xlat_count = len(sgh)

    def _translate(self, active: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Uncharged original->dense lookup for a sorted frontier.

        Returns ``(found_mask, dense_rows_of_found)``; ids the SGH has
        never seen (or whose dense row is not yet allocated) come back
        not-found, matching the native ``degree() == 0`` skip.
        """
        self._refresh_xlat()
        table = self._xlat_originals
        if table.size == 0:
            return np.zeros(active.shape[0], dtype=bool), np.empty(0, dtype=np.int64)
        pos = np.searchsorted(table, active)
        pos_c = np.minimum(pos, table.shape[0] - 1)
        found = table[pos_c] == active
        rows = self._xlat_dense[pos_c[found]]
        in_range = rows < self.n_rows
        if not in_range.all():
            # An SGH entry without an allocated row (interrupted insert):
            # the native path sees degree 0 and skips it.
            keep = np.flatnonzero(found)[in_range]
            found = np.zeros(active.shape[0], dtype=bool)
            found[keep] = True
            rows = rows[in_range]
        return found, rows

    def gather_active(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched incremental-mode gather (the ``neighbors_many`` core).

        Bit-identical data, order, and modeled charges to
        :func:`gather_active_scalar` on the same (sanitized) frontier:
        one SGH probe per active id for the ``degree`` check, one more
        per vertex actually gathered, and each gathered vertex's full
        native walk charge.
        """
        active = sanitize_active(active)
        self._sync()
        self._count_hit()
        if active.size == 0:
            return _empty_triple()
        stats = self.store.stats
        if self.store.id_translator is not None:
            found, rows = self._translate(active)
            counts = self._indptr[rows + 1] - self._indptr[rows]
            nonzero = counts > 0
            # degree() probes every active id once; neighbors() probes
            # again for each vertex that has edges to gather.
            stats.hash_lookups += int(active.size) + int(nonzero.sum())
            rows_nz = rows[nonzero]
            srcs_nz = active[found][nonzero]
        else:
            rows = active[active < self.n_rows]
            counts = self._indptr[rows + 1] - self._indptr[rows]
            nonzero = counts > 0
            rows_nz = rows[nonzero]
            srcs_nz = rows_nz
        if rows_nz.size:
            self._apply_charge(self._charges[rows_nz].sum(axis=0))
        return self._take_rows(rows_nz, srcs_nz)

    def gather_all(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full per-vertex sweep: FP-VC on GraphTinker, FP/FP-VC on STINGER
        (and FP on a CAL-less GraphTinker, whose full load is the same
        per-vertex EdgeblockArray sweep).

        The native sweep walks *every* dense row — empty rows included —
        so the summed charge covers all rows, while the output keeps only
        rows with live edges.  Sources come out translated to original
        ids (the identity on raw-id stores).
        """
        self._sync()
        self._count_hit()
        n = self.n_rows
        if n == 0:
            return _empty_triple()
        self._apply_charge(self._charges[:n].sum(axis=0))
        counts = self._indptr[1:] - self._indptr[:-1]
        rows = np.flatnonzero(counts > 0)
        src, dst, weight = self._take_rows(rows, rows)
        src = self.store.original_ids(src)
        return src, dst, weight

    @property
    def serves_full(self) -> bool:
        """Whether the FP (edge-centric full) load is this same sweep.

        True for STINGER / TieredStore (their full load *is* the
        per-vertex row sweep) and for a CAL-less GraphTinker; a
        CAL-backed GraphTinker streams full loads from the CAL in
        insertion order, which the CSR view does not reproduce, so that
        path stays native.  Answered by the store itself through the
        protocol's ``full_load_is_row_sweep``.
        """
        return self.store.full_load_is_row_sweep
