"""Exception hierarchy for the ``repro`` package.

Every error raised on a public code path derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class StoreProtocolError(ReproError, TypeError):
    """A backend does not implement the full :class:`repro.core.store.Store`
    contract.

    Raised at registration/construction time — naming every missing
    member — so an incomplete backend fails loudly up front instead of
    deep inside an engine kernel with an ``AttributeError``.
    """


class CapacityError(ReproError):
    """A fixed-capacity structure could not accommodate an element.

    This is an internal signal in most cases (e.g. a congested Subblock
    triggers a branch-out rather than surfacing the error), but it becomes
    user-visible when a hard capacity cap (``max_generations``) is exhausted.
    """


class VertexNotFoundError(ReproError, KeyError):
    """The requested vertex does not exist in the structure."""


class EdgeNotFoundError(ReproError, KeyError):
    """The requested edge does not exist in the structure."""


class EngineError(ReproError):
    """The graph engine was driven with an inconsistent request."""


class WorkloadError(ReproError, ValueError):
    """A workload/dataset request could not be satisfied."""


class ServiceError(ReproError):
    """The durable graph service hit an unrecoverable condition.

    Raised for corrupt write-ahead-log records (CRC mismatch with intact
    data after them), a sequence gap between a checkpoint and the
    surviving WAL tail, queue-full backpressure timeouts, and submissions
    to a stopped service.  Messages name the offending file/offset or
    sequence numbers so an operator can act on them.  Overload conditions
    raise the typed subclasses below so callers (and the network layer)
    can map them without parsing messages.
    """


class ShardCrashError(ServiceError):
    """A shard worker process of a sharded store died.

    Raised when a command pipe to a worker breaks (the worker was
    ``kill -9``-ed, OOM-killed, or crashed) or when a dispatched command
    never gets a response.  The surviving shards' state is intact; the
    recovery action is to discard the parent store and re-open the
    service directory — per-shard WAL segments replay independently, so
    only the crashed shard's tail is re-applied.
    """


class ShedError(ServiceError):
    """A read was shed because the ingest queue is over the shed mark.

    Transient by construction: the read was rejected *instead of*
    queueing behind a saturated flusher, so retrying after a backoff is
    the intended client response.
    """


class BreakerOpenError(ServiceError):
    """The service's circuit breaker is open; work was fast-failed.

    Raised both for new submissions while open and for queued tickets
    that were failed when the breaker tripped.  Clears after
    ``breaker_reset`` seconds once the underlying fault stops recurring.
    """


class QueueFullError(ServiceError):
    """Backpressure timeout: the bounded ingest queue stayed full."""


class StaleReadError(ServiceError):
    """A replica shed a read because its replication lag exceeds the SLO.

    Transient by construction, like :class:`ShedError`: the replica
    refused to serve an answer staler than its configured bound instead
    of lying about freshness.  Clients should retry elsewhere (another
    replica, or the writer) — the :class:`~repro.net.client.ReplicaSet`
    router does exactly that.
    """


class NotWriterError(ServiceError):
    """A mutation was sent to a read replica.

    Replicas apply mutations only from their upstream WAL stream; a
    client-side router (``ReplicaSet``) sends writes to the writer and
    never sees this.  Not retryable against the *same* node — the
    correct response is rerouting, not backoff.
    """


class ReplicationError(ServiceError):
    """The WAL-shipping replication stream hit an unrecoverable state.

    Raised for upstream/replica cursor divergence (sequence or
    cumulative-edge mismatch on an applied record) and digest
    cross-check failures after catch-up.  The replica's recovery action
    is a full resync from the writer's live state.
    """


class CursorGapError(ReplicationError):
    """A subscription cursor points below the writer's retained WAL.

    Checkpoints prune WAL segments; a replica that was down long enough
    can come back with a cursor older than the oldest surviving segment
    (or, after a writer-side reset, *ahead* of the writer's log).  The
    missing records cannot be streamed — the subscriber must take the
    full-resync path instead.
    """


class NetError(ReproError):
    """A network-layer failure talking to (or serving) a graph service.

    Covers transport-level failures the typed remote errors cannot:
    exhausted reconnect attempts, a server that vanished mid-request,
    or a remote fault with no more specific mapping.
    """


class ProtocolError(NetError):
    """The wire protocol was violated (bad frame, codec, or version).

    Raised for garbage/truncated frame prefixes, oversized declared
    lengths, unknown codec bytes, undecodable payloads, and protocol
    version mismatches during the hello handshake.
    """
