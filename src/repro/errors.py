"""Exception hierarchy for the ``repro`` package.

Every error raised on a public code path derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class CapacityError(ReproError):
    """A fixed-capacity structure could not accommodate an element.

    This is an internal signal in most cases (e.g. a congested Subblock
    triggers a branch-out rather than surfacing the error), but it becomes
    user-visible when a hard capacity cap (``max_generations``) is exhausted.
    """


class VertexNotFoundError(ReproError, KeyError):
    """The requested vertex does not exist in the structure."""


class EdgeNotFoundError(ReproError, KeyError):
    """The requested edge does not exist in the structure."""


class EngineError(ReproError):
    """The graph engine was driven with an inconsistent request."""


class WorkloadError(ReproError, ValueError):
    """A workload/dataset request could not be satisfied."""


class ServiceError(ReproError):
    """The durable graph service hit an unrecoverable condition.

    Raised for corrupt write-ahead-log records (CRC mismatch with intact
    data after them), a sequence gap between a checkpoint and the
    surviving WAL tail, queue-full backpressure timeouts, and submissions
    to a stopped service.  Messages name the offending file/offset or
    sequence numbers so an operator can act on them.
    """
