"""Network front-end: the wire protocol and serving tier.

``repro.net`` turns one durable :class:`~repro.service.GraphService`
into a network service:

* :mod:`repro.net.frames` — length-prefixed frame codec (JSON default,
  msgpack when available) shared by every peer.
* :mod:`repro.net.protocol` — protocol version, op table, typed error
  code ↔ exception mapping, the canonical state digest.
* :mod:`repro.net.readpath` — immutable CSR :class:`ReadView` captures
  and the lock-free graph queries served from them.
* :mod:`repro.net.server` — the asyncio :class:`GraphServer` (and the
  thread-hosted :class:`ServerThread` wrapper).
* :mod:`repro.net.client` / :mod:`repro.net.aioclient` — sync and async
  clients with typed remote errors and transient-error retry.
* :mod:`repro.net.loadgen` — the closed-loop load generator behind
  ``python -m repro loadgen`` and ``BENCH_net_serve.json``.
* :mod:`repro.net.replication` — WAL-shipping read replicas:
  :class:`ReplicaService` (applies shipped records, serves reads),
  :class:`ReplicationLink` (the pull/apply/resync thread) and the
  composed :class:`ReplicaServer` behind ``python -m repro
  serve-replica``.
* :mod:`repro.net.chaos` — :class:`ChaosProxy`, the frame-aware
  fault-injecting proxy the replication chaos suite runs through.

See docs/network.md for the protocol spec, replication cursor rules and
staleness semantics.
"""

from repro.net.aioclient import AsyncGraphClient
from repro.net.chaos import ChaosProxy
from repro.net.client import GraphClient, ReplicaSet
from repro.net.frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    MSGPACK_AVAILABLE,
    encode_frame,
    read_frame,
    supported_codecs,
)
from repro.net.loadgen import LoadStats, loadgen_record, run_loadgen
from repro.net.protocol import (
    FAILOVER_CODES,
    OPS,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    store_digest,
    wal_record_from_wire,
    wal_record_to_wire,
)
from repro.net.readpath import ReadView, capture_view, capture_view_locked
from repro.net.replication import ReplicaServer, ReplicaService, ReplicationLink
from repro.net.server import GraphServer, ServerThread

__all__ = [
    "AsyncGraphClient",
    "ChaosProxy",
    "DEFAULT_MAX_FRAME",
    "FAILOVER_CODES",
    "FrameDecoder",
    "GraphClient",
    "GraphServer",
    "LoadStats",
    "MSGPACK_AVAILABLE",
    "OPS",
    "PROTOCOL_VERSION",
    "RETRYABLE_CODES",
    "ReadView",
    "ReplicaServer",
    "ReplicaService",
    "ReplicaSet",
    "ReplicationLink",
    "ServerThread",
    "capture_view",
    "capture_view_locked",
    "encode_frame",
    "loadgen_record",
    "read_frame",
    "run_loadgen",
    "store_digest",
    "supported_codecs",
    "wal_record_from_wire",
    "wal_record_to_wire",
]
