"""AsyncGraphClient: the asyncio twin of :class:`~repro.net.client.GraphClient`.

Shares everything that matters with the sync client — the frame codec
(:mod:`repro.net.frames`), the hello handshake, the typed error mapping
(:func:`~repro.net.protocol.raise_remote_error`) and the transient-error
retry policy — but speaks over asyncio streams, so one event loop can
hold many server connections (the natural shape for an async
application embedding the serving tier, or for tests exercising true
concurrency against one server).

The API is deliberately the method-for-method mirror of the sync
client's typed surface; only the ``await`` differs.
"""

from __future__ import annotations

import asyncio
import random

from repro.errors import NetError, ProtocolError, ReproError
from repro.net.frames import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    _decode_payload,
    encode_frame,
    parse_header,
    supported_codecs,
)
from repro.net.protocol import (
    E_UNAVAILABLE,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    json_safe,
    raise_remote_error,
)
from repro.net.client import (
    DEFAULT_BACKOFF,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_RETRIES,
)


class AsyncGraphClient:
    """One asyncio connection to a :class:`~repro.net.server.GraphServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 rng: random.Random | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.max_frame = max_frame
        self._rng = rng or random.Random()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        self.codec = "json"
        self.last_generation: int | None = None
        self.last_applied_seq: int | None = None
        self.last_staleness: dict | None = None
        self.n_retries = 0

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    async def connect(self) -> "AsyncGraphClient":
        if self._writer is not None:
            return self
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout)
        except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
            await self._unavailable(f"connect failed: {exc!r}", exc)
        hello = await self._roundtrip("hello", {
            "proto": PROTOCOL_VERSION, "codecs": supported_codecs()})
        self.codec = hello["codec"]
        return self

    async def _unavailable(self, message: str,
                           cause: BaseException | None = None):
        """Close and raise a retryable ``UNAVAILABLE`` transport error
        (same classification as the sync client)."""
        await self.close()
        exc = NetError(
            f"[{E_UNAVAILABLE}] {self.host}:{self.port}: {message}")
        exc.code = E_UNAVAILABLE
        raise exc from cause

    async def close(self) -> None:
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncGraphClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # frame plumbing
    # ------------------------------------------------------------------ #
    async def _read_frame(self):
        header = await self._reader.readexactly(HEADER_SIZE)
        codec_id, length = parse_header(header, max_frame=self.max_frame)
        payload = (await self._reader.readexactly(length)) if length else b""
        return _decode_payload(payload, codec_id)

    async def _roundtrip(self, op: str, args: dict) -> dict:
        if self._writer is None:
            await self.connect()
        self._next_id += 1
        request_id = self._next_id
        frame = encode_frame(
            {"id": request_id, "op": op, "args": json_safe(args)},
            self.codec, max_frame=self.max_frame)
        try:
            self._writer.write(frame)
            await self._writer.drain()
            response = await asyncio.wait_for(self._read_frame(),
                                              self.timeout)
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, OSError) as exc:
            await self._unavailable(f"request failed: {exc!r}", exc)
        if not isinstance(response, dict):
            raise ProtocolError(
                f"response must be an object, got {type(response).__name__}")
        got = response.get("id")
        if got is not None and got != request_id:
            raise ProtocolError(
                f"response id {got} does not match request id {request_id}")
        if not response.get("ok"):
            raise_remote_error(response.get("error") or {})
        generation = response.get("generation")
        if generation is not None:
            self.last_generation = generation
        applied_seq = response.get("applied_seq")
        if applied_seq is not None:
            self.last_applied_seq = applied_seq
            self.last_staleness = response.get("staleness")
        return response.get("result") or {}

    async def call(self, op: str, args: dict | None = None) -> dict:
        """One request with transient-error retry/backoff."""
        args = args or {}
        attempt = 0
        while True:
            try:
                return await self._roundtrip(op, args)
            except ReproError as exc:
                code = getattr(exc, "code", None)
                if code not in RETRYABLE_CODES or attempt >= self.retries:
                    raise
                attempt += 1
                self.n_retries += 1
                delay = min(self.backoff_cap,
                            self.backoff * (2 ** (attempt - 1)))
                await asyncio.sleep(delay * (0.5 + self._rng.random()))

    # ------------------------------------------------------------------ #
    # typed API (mirror of the sync client)
    # ------------------------------------------------------------------ #
    async def ping(self) -> dict:
        return await self.call("ping")

    async def health(self) -> dict:
        return await self.call("health")

    async def metrics(self) -> dict:
        return await self.call("metrics")

    async def digest(self) -> dict:
        return await self.call("digest")

    async def refresh(self) -> dict:
        """Force the server to re-capture its read view (read-your-writes)."""
        return await self.call("refresh")

    async def insert_edges(self, edges, weights=None, *,
                           wait: bool = True) -> dict:
        args = {"edges": edges, "wait": wait}
        if weights is not None:
            args["weights"] = weights
        return await self.call("insert_edges", args)

    async def delete_edges(self, edges, *, wait: bool = True) -> dict:
        return await self.call("delete_edges", {"edges": edges, "wait": wait})

    async def degree(self, src: int) -> int:
        return int((await self.call("degree", {"src": int(src)}))["degree"])

    async def neighbors(self, src: int) -> dict:
        return await self.call("neighbors", {"src": int(src)})

    async def khop(self, src: int, k: int, limit: int | None = None) -> dict:
        args = {"src": int(src), "k": int(k)}
        if limit is not None:
            args["limit"] = int(limit)
        return await self.call("khop", args)

    async def shortest_path(self, src: int, dst: int, *,
                            weighted: bool = True,
                            limit: int | None = None) -> dict:
        args = {"src": int(src), "dst": int(dst), "weighted": weighted}
        if limit is not None:
            args["limit"] = int(limit)
        return await self.call("shortest_path", args)
