"""Deterministic network-fault injection for replication testing.

:class:`ChaosProxy` is a threaded TCP forwarder that sits between a
client (usually a :class:`~repro.net.replication.ReplicationLink` or a
:class:`~repro.net.client.GraphClient`) and an upstream
:class:`~repro.net.server.GraphServer`.  Unlike a byte-level proxy it
understands the frame protocol (:mod:`repro.net.frames`): it reassembles
each 8-byte-header frame before forwarding, so faults land on *message*
boundaries and a given schedule produces the same fault sequence on
every run regardless of TCP segmentation.

Faults come from two places:

* a **schedule** — a list of ``{"at_frame": N, "action": ...}`` entries
  handed to the constructor.  The proxy keeps one global counter of
  frames forwarded (both directions); when the counter reaches
  ``at_frame`` the entry fires exactly once.  Actions:

  - ``{"action": "cut"}`` — close both sockets of the connection that
    carried the triggering frame (the frame itself is still delivered).
    The client sees a reset and must reconnect.
  - ``{"action": "drop"}`` — silently discard the triggering frame.  In
    a request/response protocol the peer stalls until its timeout.
  - ``{"action": "delay", "delay_s": 0.2}`` — hold the triggering frame
    for ``delay_s`` before forwarding it.
  - ``{"action": "partition", "duration_s": 1.0}`` — kill every live
    connection and refuse new ones for ``duration_s``.

* **manual controls** — :meth:`partition` / :meth:`heal` /
  :meth:`cut_all` for tests that want to script faults around their own
  assertions instead of frame counts.

The proxy never rewrites payloads; a fault is always "the network was
bad", never "the data was wrong" — data corruption is the WAL CRC
layer's department (see ``tests/test_wal.py``).
"""

from __future__ import annotations

import socket
import threading
import time

from repro.net.frames import DEFAULT_MAX_FRAME, HEADER_SIZE, parse_header

__all__ = ["ChaosProxy"]

#: Poll interval for halt/kill checks inside blocking socket reads.
_POLL_S = 0.1

_ACTIONS = ("cut", "drop", "delay", "partition")


class _Pipe:
    """One proxied connection: a client socket, an upstream socket, and
    two pump threads moving whole frames between them."""

    def __init__(self, proxy: "ChaosProxy", client: socket.socket,
                 upstream: socket.socket) -> None:
        self.proxy = proxy
        self.client = client
        self.upstream = upstream
        self.dead = threading.Event()
        self.threads = [
            threading.Thread(target=self._pump, args=(client, upstream),
                             name="chaos-c2u", daemon=True),
            threading.Thread(target=self._pump, args=(upstream, client),
                             name="chaos-u2c", daemon=True),
        ]

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def kill(self) -> None:
        """Close both sockets; pumps notice and exit."""
        if self.dead.is_set():
            return
        self.dead.set()
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # ----------------------------------------------------------------- #

    def _read_exact(self, sock: socket.socket, n: int) -> bytes | None:
        """Read exactly ``n`` bytes or return None on EOF/kill/halt."""
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            if self.dead.is_set() or self.proxy._halt.is_set():
                return None
            try:
                chunk = sock.recv(min(remaining, 65536))
            except socket.timeout:
                continue
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            src.settimeout(_POLL_S)
        except OSError:
            pass
        try:
            while not self.dead.is_set() and not self.proxy._halt.is_set():
                header = self._read_exact(src, HEADER_SIZE)
                if header is None:
                    break
                try:
                    _, length = parse_header(
                        header, max_frame=self.proxy.max_frame)
                except Exception:
                    break  # unparseable stream: treat as connection death
                payload = self._read_exact(src, length)
                if payload is None:
                    break
                verdict = self.proxy._on_frame(self)
                if verdict == "drop":
                    continue
                if self.dead.is_set():
                    break
                try:
                    dst.sendall(header + payload)
                except OSError:
                    break
        finally:
            self.kill()
            self.proxy._forget(self)


class ChaosProxy:
    """Frame-aware fault-injecting TCP proxy (see module docstring)."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 host: str = "127.0.0.1", port: int = 0,
                 schedule: list[dict] | None = None,
                 max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.host = host
        self.max_frame = max_frame
        self._lock = threading.Lock()
        self._halt = threading.Event()
        self._pipes: set[_Pipe] = set()
        self._partition_until: float | None = None  # None = not partitioned
        self._schedule: list[dict] = []
        for entry in schedule or []:
            action = entry.get("action")
            if action not in _ACTIONS:
                raise ValueError(f"unknown chaos action {action!r} "
                                 f"(expected one of {_ACTIONS})")
            at_frame = int(entry.get("at_frame", 0))
            if at_frame < 1:
                raise ValueError(f"at_frame must be >= 1, got {at_frame}")
            self._schedule.append(dict(entry, at_frame=at_frame))
        self._schedule.sort(key=lambda e: e["at_frame"])
        # counters (read them for assertions; written under self._lock)
        self.n_accepted = 0
        self.n_refused = 0
        self.n_frames = 0
        self.n_cut = 0
        self.n_dropped = 0
        self.n_delayed = 0
        self.n_partitions = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(16)
        self._listener.settimeout(_POLL_S)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True)

    # ----------------------------------------------------------------- #
    # lifecycle
    # ----------------------------------------------------------------- #

    def start(self) -> "ChaosProxy":
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._halt.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.cut_all()
        if self._accept_thread.is_alive():
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ----------------------------------------------------------------- #
    # manual fault controls
    # ----------------------------------------------------------------- #

    def cut_all(self) -> None:
        """Kill every live proxied connection (new ones still accepted)."""
        with self._lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.kill()

    def partition(self, duration_s: float | None = None) -> None:
        """Kill live connections and refuse new ones.

        With ``duration_s`` the partition heals itself; without, it
        lasts until :meth:`heal`.
        """
        with self._lock:
            if duration_s is None:
                self._partition_until = float("inf")
            else:
                self._partition_until = time.monotonic() + float(duration_s)
            self.n_partitions += 1
        self.cut_all()

    def heal(self) -> None:
        """End a partition started by :meth:`partition`."""
        with self._lock:
            self._partition_until = None

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned_locked()

    def _partitioned_locked(self) -> bool:
        if self._partition_until is None:
            return False
        if time.monotonic() >= self._partition_until:
            self._partition_until = None
            return False
        return True

    # ----------------------------------------------------------------- #
    # internals
    # ----------------------------------------------------------------- #

    def _accept_loop(self) -> None:
        while not self._halt.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                refused = self._partitioned_locked()
                if refused:
                    self.n_refused += 1
            if refused:
                try:
                    client.close()
                except OSError:
                    pass
                continue
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0)
            except OSError:
                with self._lock:
                    self.n_refused += 1
                try:
                    client.close()
                except OSError:
                    pass
                continue
            pipe = _Pipe(self, client, upstream)
            with self._lock:
                self.n_accepted += 1
                self._pipes.add(pipe)
            pipe.start()

    def _forget(self, pipe: _Pipe) -> None:
        with self._lock:
            self._pipes.discard(pipe)

    def _on_frame(self, pipe: _Pipe) -> str:
        """Count one forwarded frame; fire due schedule entries.

        Returns ``"drop"`` when the frame must not be forwarded,
        ``"forward"`` otherwise.  Delays happen inline (in the pump
        thread) so only the affected connection stalls.
        """
        fired: list[dict] = []
        with self._lock:
            self.n_frames += 1
            while self._schedule and self._schedule[0]["at_frame"] <= self.n_frames:
                fired.append(self._schedule.pop(0))
        verdict = "forward"
        for entry in fired:
            action = entry["action"]
            if action == "cut":
                with self._lock:
                    self.n_cut += 1
                pipe.kill()
            elif action == "drop":
                with self._lock:
                    self.n_dropped += 1
                verdict = "drop"
            elif action == "delay":
                with self._lock:
                    self.n_delayed += 1
                time.sleep(float(entry.get("delay_s", 0.1)))
            elif action == "partition":
                self.partition(entry.get("duration_s"))
        return verdict
