"""Synchronous GraphClient: typed, retrying access to a GraphServer.

The client is a thin, explicit wrapper over one TCP connection: every
call sends one request frame and reads one response frame, re-raising
remote error frames as the *same* typed exceptions the server-side
service raised (:class:`~repro.errors.ShedError`,
:class:`~repro.errors.BreakerOpenError`, …) — see
:data:`repro.net.protocol.CODE_TO_EXCEPTION`.

Two throughput affordances on top of that:

* **Retry with backoff** — error codes in
  :data:`~repro.net.protocol.RETRYABLE_CODES` (shed reads, open breaker,
  full queue) are transient by the service's own declaration; with
  ``retries > 0`` the client sleeps an exponentially growing, jittered
  backoff and retries the request before surfacing the error.
* **Pipelined batch submit** — :meth:`submit_edges_pipelined` writes a
  window of mutation frames before reading the first response, hiding
  the round-trip latency that a strict request/response loop would pay
  per batch.  The server processes each connection's frames in order, so
  responses come back in request order.

Thread safety: one client = one socket = one user thread.  Share nothing
— open one client per worker (the load generator does exactly that).
"""

from __future__ import annotations

import random
import socket
import time

from collections import deque

from repro.errors import NetError, ProtocolError, ReproError
from repro.net.frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    encode_frame,
    supported_codecs,
)
from repro.net.protocol import (
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    json_safe,
    raise_remote_error,
)

#: Default retry/backoff shape for transient (shed/breaker/queue) errors.
DEFAULT_RETRIES = 0
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class GraphClient:
    """One blocking connection to a :class:`~repro.net.server.GraphServer`.

    Usable as a context manager; :meth:`connect` is implicit on first
    use.  ``retries`` applies to transient error codes only — protocol
    and bad-request errors never retry.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 rng: random.Random | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.max_frame = max_frame
        self._rng = rng or random.Random()
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._ready: deque = deque()
        self._next_id = 0
        self.codec = "json"
        #: generation of the last read response — never decreases on one
        #: connection (the server's view version is monotonic).
        self.last_generation: int | None = None
        self.n_retries = 0  # lifetime transient retries (introspection)

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "GraphClient":
        if self._sock is not None:
            return self
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        hello = self._roundtrip("hello", {
            "proto": PROTOCOL_VERSION, "codecs": supported_codecs()})
        self.codec = hello["codec"]
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._decoder = FrameDecoder(max_frame=self.max_frame)
                self._ready.clear()

    def __enter__(self) -> "GraphClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # frame plumbing
    # ------------------------------------------------------------------ #
    def _request_frame(self, op: str, args: dict) -> tuple[int, bytes]:
        self._next_id += 1
        request_id = self._next_id
        frame = encode_frame(
            {"id": request_id, "op": op, "args": json_safe(args)},
            self.codec, max_frame=self.max_frame)
        return request_id, frame

    def _recv_frame(self):
        """One decoded frame from the buffered stream (None on clean EOF).

        Reads the socket in large chunks through a persistent
        :class:`FrameDecoder` instead of issuing one ``recv`` per header
        and one per payload — on a loaded box the saved syscalls and
        wakeups are a measurable share of small-request latency.
        """
        while not self._ready:
            data = self._sock.recv(1 << 16)
            if not data:
                if self._decoder.at_boundary:
                    return None
                raise ProtocolError("connection closed mid-frame")
            self._decoder.feed(data)
            self._ready.extend(self._decoder.frames())
        return self._ready.popleft()

    def _read_response(self, request_id: int) -> dict:
        response = self._recv_frame()
        if response is None:
            raise NetError("server closed the connection mid-request")
        if not isinstance(response, dict):
            raise ProtocolError(
                f"response must be an object, got {type(response).__name__}")
        got = response.get("id")
        if got is not None and got != request_id:
            raise ProtocolError(
                f"response id {got} does not match request id {request_id} "
                f"(pipelining desync)")
        if not response.get("ok"):
            raise_remote_error(response.get("error") or {})
        generation = response.get("generation")
        if generation is not None:
            self.last_generation = generation
        return response

    def _roundtrip(self, op: str, args: dict) -> dict:
        if self._sock is None:
            self.connect()
        request_id, frame = self._request_frame(op, args)
        try:
            self._sock.sendall(frame)
            response = self._read_response(request_id)
        except (ConnectionError, socket.timeout, OSError) as exc:
            self.close()
            if isinstance(exc, ReproError):
                raise
            raise NetError(f"connection to {self.host}:{self.port} "
                           f"failed: {exc}") from exc
        return response.get("result") or {}

    def call(self, op: str, args: dict | None = None) -> dict:
        """One request with transient-error retry/backoff."""
        args = args or {}
        attempt = 0
        while True:
            try:
                return self._roundtrip(op, args)
            except ReproError as exc:
                code = getattr(exc, "code", None)
                if code not in RETRYABLE_CODES or attempt >= self.retries:
                    raise
                attempt += 1
                self.n_retries += 1
                delay = min(self.backoff_cap,
                            self.backoff * (2 ** (attempt - 1)))
                time.sleep(delay * (0.5 + self._rng.random()))

    # ------------------------------------------------------------------ #
    # typed API
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.call("ping")

    def health(self) -> dict:
        return self.call("health")

    def metrics(self) -> dict:
        return self.call("metrics")

    def digest(self) -> dict:
        return self.call("digest")

    def refresh(self) -> dict:
        """Force the server to re-capture its read view (read-your-writes)."""
        return self.call("refresh")

    def insert_edges(self, edges, weights=None, *, wait: bool = True) -> dict:
        args = {"edges": edges, "wait": wait}
        if weights is not None:
            args["weights"] = weights
        return self.call("insert_edges", args)

    def delete_edges(self, edges, *, wait: bool = True) -> dict:
        return self.call("delete_edges", {"edges": edges, "wait": wait})

    def degree(self, src: int) -> int:
        return int(self.call("degree", {"src": int(src)})["degree"])

    def neighbors(self, src: int) -> dict:
        return self.call("neighbors", {"src": int(src)})

    def khop(self, src: int, k: int, limit: int | None = None) -> dict:
        args = {"src": int(src), "k": int(k)}
        if limit is not None:
            args["limit"] = int(limit)
        return self.call("khop", args)

    def shortest_path(self, src: int, dst: int, *, weighted: bool = True,
                      limit: int | None = None) -> dict:
        args = {"src": int(src), "dst": int(dst), "weighted": weighted}
        if limit is not None:
            args["limit"] = int(limit)
        return self.call("shortest_path", args)

    # ------------------------------------------------------------------ #
    # pipelined submission
    # ------------------------------------------------------------------ #
    def submit_edges_pipelined(self, batches, *, op: str = "insert_edges",
                               window: int = 8) -> list[dict]:
        """Submit many mutation batches with up to ``window`` in flight.

        Writes frames ahead of reading responses (the server answers in
        request order), so the WAL-sync latency of consecutive batches
        overlaps instead of serialising.  Returns one result dict per
        batch, in submission order.  A remote error on any batch raises
        after the preceding results are drained — the caller knows every
        batch before the failed one is durable.
        """
        if self._sock is None:
            self.connect()
        batches = list(batches)
        in_flight: list[int] = []
        results: list[dict] = []
        try:
            for edges in batches:
                request_id, frame = self._request_frame(
                    op, {"edges": json_safe(edges), "wait": True})
                self._sock.sendall(frame)
                in_flight.append(request_id)
                if len(in_flight) >= window:
                    results.append(
                        self._read_response(in_flight.pop(0)).get("result"))
            while in_flight:
                results.append(
                    self._read_response(in_flight.pop(0)).get("result"))
        except (ConnectionError, socket.timeout, OSError) as exc:
            self.close()
            if isinstance(exc, ReproError):
                raise
            raise NetError(f"connection to {self.host}:{self.port} "
                           f"failed mid-pipeline: {exc}") from exc
        return results
