"""Synchronous GraphClient: typed, retrying access to a GraphServer.

The client is a thin, explicit wrapper over one TCP connection: every
call sends one request frame and reads one response frame, re-raising
remote error frames as the *same* typed exceptions the server-side
service raised (:class:`~repro.errors.ShedError`,
:class:`~repro.errors.BreakerOpenError`, …) — see
:data:`repro.net.protocol.CODE_TO_EXCEPTION`.

Two throughput affordances on top of that:

* **Retry with backoff** — error codes in
  :data:`~repro.net.protocol.RETRYABLE_CODES` (shed reads, open breaker,
  full queue) are transient by the service's own declaration; with
  ``retries > 0`` the client sleeps an exponentially growing, jittered
  backoff and retries the request before surfacing the error.
* **Pipelined batch submit** — :meth:`submit_edges_pipelined` writes a
  window of mutation frames before reading the first response, hiding
  the round-trip latency that a strict request/response loop would pay
  per batch.  The server processes each connection's frames in order, so
  responses come back in request order.

Transport failures — connection refused/reset, a peer that vanished
mid-frame or mid-handshake — are classified as the synthetic retryable
code ``UNAVAILABLE`` (the socket is closed first, so a retry
reconnects).  A client built with ``port_file=`` re-resolves the port
from that file on every reconnect, which is what lets a long-running
load generator survive a server restart onto a fresh ephemeral port.

:class:`ReplicaSet` builds failover routing on top: reads rotate across
replicas and fall back to the writer, writes always go to the writer,
and acked writes raise a per-set ``applied_seq`` floor that stale
replicas are checked against (read-your-writes).

Thread safety: one client = one socket = one user thread.  Share nothing
— open one client per worker (the load generator does exactly that).
"""

from __future__ import annotations

import random
import socket
import time

from collections import deque
from pathlib import Path

from repro.errors import NetError, ProtocolError, ReproError
from repro.net.frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    encode_frame,
    supported_codecs,
)
from repro.net.protocol import (
    E_UNAVAILABLE,
    FAILOVER_CODES,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    json_safe,
    raise_remote_error,
)

#: Default retry/backoff shape for transient (shed/breaker/queue) errors.
DEFAULT_RETRIES = 0
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class GraphClient:
    """One blocking connection to a :class:`~repro.net.server.GraphServer`.

    Usable as a context manager; :meth:`connect` is implicit on first
    use.  ``retries`` applies to transient error codes only — protocol
    and bad-request errors never retry.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 port_file: str | Path | None = None,
                 rng: random.Random | None = None):
        self.host = host
        self.port = port
        #: When set, every (re)connect re-reads the port from this file
        #: — a restarted server publishes its fresh ephemeral port there,
        #: so clients follow it instead of dying on the stale port.
        self.port_file = Path(port_file) if port_file is not None else None
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.max_frame = max_frame
        self._rng = rng or random.Random()
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._ready: deque = deque()
        self._next_id = 0
        self.codec = "json"
        #: generation of the last read response — never decreases on one
        #: connection (the server's view version is monotonic).
        self.last_generation: int | None = None
        #: WAL cursor of the last read response's view.  Unlike
        #: ``generation`` this is comparable *across* nodes (writer and
        #: replicas share the writer's sequence space), which is what
        #: :class:`ReplicaSet` floors read-your-writes on.
        self.last_applied_seq: int | None = None
        #: staleness block of the last read answered by a replica
        #: (``None`` when talking to a writer).
        self.last_staleness: dict | None = None
        self.n_retries = 0  # lifetime transient retries (introspection)

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "GraphClient":
        if self._sock is not None:
            return self
        if self.port_file is not None:
            try:
                self.port = int(self.port_file.read_text().strip())
            except (OSError, ValueError) as exc:
                self._unavailable(
                    f"port file {self.port_file} unreadable: {exc}", exc)
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except (ConnectionError, socket.timeout, OSError) as exc:
            self._unavailable(f"connect failed: {exc}", exc)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        # The hello handshake itself can hit a peer that accepted the
        # connection and died (restart race): that is the same
        # retryable condition as a refused connect, not a protocol bug.
        hello = self._roundtrip("hello", {
            "proto": PROTOCOL_VERSION, "codecs": supported_codecs()})
        self.codec = hello["codec"]
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._decoder = FrameDecoder(max_frame=self.max_frame)
                self._ready.clear()

    def __enter__(self) -> "GraphClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # frame plumbing
    # ------------------------------------------------------------------ #
    def _unavailable(self, message: str,
                     cause: BaseException | None = None):
        """Close and raise a retryable ``UNAVAILABLE`` transport error."""
        self.close()
        exc = NetError(
            f"[{E_UNAVAILABLE}] {self.host}:{self.port}: {message}")
        exc.code = E_UNAVAILABLE
        raise exc from cause

    def _request_frame(self, op: str, args: dict) -> tuple[int, bytes]:
        self._next_id += 1
        request_id = self._next_id
        frame = encode_frame(
            {"id": request_id, "op": op, "args": json_safe(args)},
            self.codec, max_frame=self.max_frame)
        return request_id, frame

    def _recv_frame(self):
        """One decoded frame from the buffered stream (None on clean EOF).

        Reads the socket in large chunks through a persistent
        :class:`FrameDecoder` instead of issuing one ``recv`` per header
        and one per payload — on a loaded box the saved syscalls and
        wakeups are a measurable share of small-request latency.
        """
        while not self._ready:
            data = self._sock.recv(1 << 16)
            if not data:
                if self._decoder.at_boundary:
                    return None
                # The peer died mid-frame (kill, RST after close) — a
                # transport fault, not a protocol violation by a live
                # server: retryable, so a reconnect can reach a
                # restarted peer.
                self._unavailable("connection closed mid-frame")
            self._decoder.feed(data)
            self._ready.extend(self._decoder.frames())
        return self._ready.popleft()

    def _read_response(self, request_id: int) -> dict:
        response = self._recv_frame()
        if response is None:
            self._unavailable("server closed the connection mid-request")
        if not isinstance(response, dict):
            raise ProtocolError(
                f"response must be an object, got {type(response).__name__}")
        got = response.get("id")
        if got is not None and got != request_id:
            raise ProtocolError(
                f"response id {got} does not match request id {request_id} "
                f"(pipelining desync)")
        if not response.get("ok"):
            raise_remote_error(response.get("error") or {})
        generation = response.get("generation")
        if generation is not None:
            self.last_generation = generation
        applied_seq = response.get("applied_seq")
        if applied_seq is not None:
            self.last_applied_seq = applied_seq
            self.last_staleness = response.get("staleness")
        return response

    def _roundtrip(self, op: str, args: dict) -> dict:
        if self._sock is None:
            self.connect()
        request_id, frame = self._request_frame(op, args)
        try:
            self._sock.sendall(frame)
            response = self._read_response(request_id)
        except (ConnectionError, socket.timeout, OSError) as exc:
            if isinstance(exc, ReproError):
                raise
            self._unavailable(f"request failed: {exc}", exc)
        return response.get("result") or {}

    def call(self, op: str, args: dict | None = None) -> dict:
        """One request with transient-error retry/backoff."""
        args = args or {}
        attempt = 0
        while True:
            try:
                return self._roundtrip(op, args)
            except ReproError as exc:
                code = getattr(exc, "code", None)
                if code not in RETRYABLE_CODES or attempt >= self.retries:
                    raise
                attempt += 1
                self.n_retries += 1
                delay = min(self.backoff_cap,
                            self.backoff * (2 ** (attempt - 1)))
                time.sleep(delay * (0.5 + self._rng.random()))

    # ------------------------------------------------------------------ #
    # typed API
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.call("ping")

    def health(self) -> dict:
        return self.call("health")

    def metrics(self) -> dict:
        return self.call("metrics")

    def digest(self) -> dict:
        return self.call("digest")

    def refresh(self) -> dict:
        """Force the server to re-capture its read view (read-your-writes)."""
        return self.call("refresh")

    def insert_edges(self, edges, weights=None, *, wait: bool = True) -> dict:
        args = {"edges": edges, "wait": wait}
        if weights is not None:
            args["weights"] = weights
        return self.call("insert_edges", args)

    def delete_edges(self, edges, *, wait: bool = True) -> dict:
        return self.call("delete_edges", {"edges": edges, "wait": wait})

    def degree(self, src: int) -> int:
        return int(self.call("degree", {"src": int(src)})["degree"])

    def neighbors(self, src: int) -> dict:
        return self.call("neighbors", {"src": int(src)})

    def khop(self, src: int, k: int, limit: int | None = None) -> dict:
        args = {"src": int(src), "k": int(k)}
        if limit is not None:
            args["limit"] = int(limit)
        return self.call("khop", args)

    def shortest_path(self, src: int, dst: int, *, weighted: bool = True,
                      limit: int | None = None) -> dict:
        args = {"src": int(src), "dst": int(dst), "weighted": weighted}
        if limit is not None:
            args["limit"] = int(limit)
        return self.call("shortest_path", args)

    # ------------------------------------------------------------------ #
    # pipelined submission
    # ------------------------------------------------------------------ #
    def submit_edges_pipelined(self, batches, *, op: str = "insert_edges",
                               window: int = 8) -> list[dict]:
        """Submit many mutation batches with up to ``window`` in flight.

        Writes frames ahead of reading responses (the server answers in
        request order), so the WAL-sync latency of consecutive batches
        overlaps instead of serialising.  Returns one result dict per
        batch, in submission order.  A remote error on any batch raises
        after the preceding results are drained — the caller knows every
        batch before the failed one is durable.
        """
        if self._sock is None:
            self.connect()
        batches = list(batches)
        in_flight: list[int] = []
        results: list[dict] = []
        try:
            for edges in batches:
                request_id, frame = self._request_frame(
                    op, {"edges": json_safe(edges), "wait": True})
                self._sock.sendall(frame)
                in_flight.append(request_id)
                if len(in_flight) >= window:
                    results.append(
                        self._read_response(in_flight.pop(0)).get("result"))
            while in_flight:
                results.append(
                    self._read_response(in_flight.pop(0)).get("result"))
        except (ConnectionError, socket.timeout, OSError) as exc:
            if isinstance(exc, ReproError):
                raise
            self._unavailable(f"pipeline failed: {exc}", exc)
        return results


# --------------------------------------------------------------------- #
# failover routing
# --------------------------------------------------------------------- #
class ReplicaSet:
    """Failover router over one writer and any number of read replicas.

    * **Writes** always go to the writer; an acked write's ``seq``
      raises the set's read-your-writes floor.
    * **Reads** rotate across the replicas and fall back to the writer.
      A target is skipped (failed over, not failed) on any code in
      :data:`~repro.net.protocol.FAILOVER_CODES` — shed, stale-over-SLO,
      breaker, queue-full, unavailable, not-writer — and on an answer
      whose ``applied_seq`` is below the floor (the router refuses to
      hand back state older than a write this same set already acked;
      on the writer it forces a view ``refresh`` instead, which
      guarantees the floor).  Non-retryable errors raise immediately.
    * When *every* target refused retryably, the router sleeps a
      jittered exponential backoff and sweeps again, up to ``retries``
      rounds — so a briefly-partitioned cluster costs latency, not an
      error.

    Endpoints are ``(host, port)`` pairs or ``{"host", "port",
    "port_file"}`` dicts (a ``port_file`` endpoint follows server
    restarts).  Thread safety matches :class:`GraphClient`: one set per
    thread.
    """

    def __init__(self, writer, replicas=(), *,
                 timeout: float = 30.0,
                 retries: int = 3,
                 backoff: float = DEFAULT_BACKOFF,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 rng: random.Random | None = None):
        self._rng = rng or random.Random()
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap

        def build(endpoint) -> GraphClient:
            if isinstance(endpoint, GraphClient):
                return endpoint
            if isinstance(endpoint, dict):
                return GraphClient(endpoint.get("host", "127.0.0.1"),
                                   int(endpoint.get("port", 0)),
                                   port_file=endpoint.get("port_file"),
                                   timeout=timeout, max_frame=max_frame,
                                   rng=self._rng)
            host, port = endpoint
            return GraphClient(host, int(port), timeout=timeout,
                               max_frame=max_frame, rng=self._rng)

        self.writer = build(writer)
        self.replicas = [build(r) for r in replicas]
        self._rr = 0
        #: highest WAL seq this set has seen acked — the
        #: read-your-writes floor every answered read is checked against.
        self.floor_seq = 0
        self.n_failovers = 0      # reads answered by a non-first choice
        self.n_stale_rejects = 0  # answers discarded for a floor breach
        self.last_generation: int | None = None
        self.last_staleness: dict | None = None

    # ------------------------------- writes --------------------------- #
    def write(self, op: str, args: dict) -> dict:
        """One mutation against the writer, with transport retry."""
        result = self._call_with_rounds(self.writer, op, args)
        seq = result.get("seq")
        if seq is not None:
            self.floor_seq = max(self.floor_seq, int(seq))
        return result

    def insert_edges(self, edges, weights=None, *, wait: bool = True) -> dict:
        args = {"edges": edges, "wait": wait}
        if weights is not None:
            args["weights"] = weights
        return self.write("insert_edges", args)

    def delete_edges(self, edges, *, wait: bool = True) -> dict:
        return self.write("delete_edges", {"edges": edges, "wait": wait})

    # ------------------------------- reads ---------------------------- #
    def read(self, op: str, args: dict | None = None) -> dict:
        """One read, routed across replicas with writer fallback."""
        args = args or {}
        last_exc: ReproError | None = None
        for round_no in range(self.retries + 1):
            targets = self._read_targets()
            for rank, client in enumerate(targets):
                try:
                    result = self._read_once(client, op, args)
                except ReproError as exc:
                    if getattr(exc, "code", None) not in FAILOVER_CODES:
                        raise
                    last_exc = exc
                    continue
                if result is None:   # floor breach on a replica
                    continue
                if rank > 0:
                    self.n_failovers += 1
                self.last_generation = client.last_generation
                self.last_staleness = client.last_staleness
                return result
            if round_no < self.retries:
                delay = min(self.backoff_cap,
                            self.backoff * (2 ** round_no))
                time.sleep(delay * (0.5 + self._rng.random()))
        if last_exc is not None:
            raise last_exc
        raise NetError("replica set has no targets")

    def _read_targets(self) -> list[GraphClient]:
        """Replicas in rotated order, writer always last resort."""
        if not self.replicas:
            return [self.writer]
        self._rr = (self._rr + 1) % len(self.replicas)
        rotated = self.replicas[self._rr:] + self.replicas[:self._rr]
        return [*rotated, self.writer]

    def _read_once(self, client: GraphClient, op: str, args: dict):
        """One read against one target; ``None`` = stale, try the next.

        On the writer a floor breach is fixable (its state *has* the
        acked writes — only the cached view lags), so force a refresh
        and re-read instead of giving up.
        """
        result = client.call(op, args)
        applied = client.last_applied_seq
        if applied is not None and applied < self.floor_seq:
            self.n_stale_rejects += 1
            if client is not self.writer:
                return None
            client.refresh()
            result = client.call(op, args)
        return result

    def degree(self, src: int) -> int:
        return int(self.read("degree", {"src": int(src)})["degree"])

    def neighbors(self, src: int) -> dict:
        return self.read("neighbors", {"src": int(src)})

    def khop(self, src: int, k: int, limit: int | None = None) -> dict:
        args = {"src": int(src), "k": int(k)}
        if limit is not None:
            args["limit"] = int(limit)
        return self.read("khop", args)

    def shortest_path(self, src: int, dst: int, *, weighted: bool = True,
                      limit: int | None = None) -> dict:
        args = {"src": int(src), "dst": int(dst), "weighted": weighted}
        if limit is not None:
            args["limit"] = int(limit)
        return self.read("shortest_path", args)

    # ------------------------------- misc ----------------------------- #
    @property
    def n_retries(self) -> int:
        """Lifetime transient retries across every member connection."""
        return sum(c.n_retries for c in (self.writer, *self.replicas))

    def _call_with_rounds(self, client: GraphClient, op: str,
                          args: dict) -> dict:
        last_exc: ReproError | None = None
        for round_no in range(self.retries + 1):
            try:
                return client.call(op, args)
            except ReproError as exc:
                if getattr(exc, "code", None) not in RETRYABLE_CODES:
                    raise
                last_exc = exc
                if round_no < self.retries:
                    delay = min(self.backoff_cap,
                                self.backoff * (2 ** round_no))
                    time.sleep(delay * (0.5 + self._rng.random()))
        raise last_exc

    def close(self) -> None:
        for client in (self.writer, *self.replicas):
            client.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
