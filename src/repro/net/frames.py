"""Length-prefixed frame codec — the wire layer both ends share.

Every message on a ``repro`` network connection is one *frame*::

    offset  size  field
    0       2     magic  b"RG"
    2       1     codec  0 = JSON (UTF-8), 1 = msgpack
    3       1     flags  reserved, must be 0
    4       4     length of the payload in bytes, big-endian unsigned
    8       len   payload (one encoded message object)

The codec is symmetric and stateless: :func:`encode_frame` turns one
JSON-safe object into bytes, :class:`FrameDecoder` incrementally turns a
byte stream back into objects (feed arbitrary chunks, pop complete
messages).  Anything structurally wrong — bad magic, unknown codec byte,
nonzero reserved flags, a declared length over ``max_frame``, or an
undecodable payload — raises a typed
:class:`~repro.errors.ProtocolError`; an *incomplete* frame is not an
error for the streaming decoder (more bytes may arrive), but hitting EOF
mid-frame is one for the blocking helpers.

msgpack is optional: :data:`MSGPACK_AVAILABLE` reflects whether the
import works, and the codec byte is only negotiated up from JSON when
both ends have it.  Nothing in this module requires it.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError

MAGIC = b"RG"
HEADER_SIZE = 8
_HEADER = struct.Struct(">2sBBI")

CODEC_JSON = 0
CODEC_MSGPACK = 1
CODEC_NAMES = {CODEC_JSON: "json", CODEC_MSGPACK: "msgpack"}
CODEC_IDS = {name: codec_id for codec_id, name in CODEC_NAMES.items()}

#: Default upper bound on one frame's payload (64 MiB) — large enough
#: for any realistic batched mutation, small enough that a corrupt
#: length prefix cannot make either end try to buffer gigabytes.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

try:  # optional accelerator codec; everything works without it
    import msgpack  # type: ignore

    MSGPACK_AVAILABLE = True
except ImportError:  # pragma: no cover - environment-dependent
    msgpack = None
    MSGPACK_AVAILABLE = False


def supported_codecs() -> list[str]:
    """Codec names this process can speak, preference order last-best."""
    names = ["json"]
    if MSGPACK_AVAILABLE:
        names.append("msgpack")
    return names


def _encode_payload(obj, codec: int) -> bytes:
    if codec == CODEC_JSON:
        return json.dumps(obj, separators=(",", ":"),
                          ensure_ascii=False).encode("utf-8")
    if codec == CODEC_MSGPACK:
        if not MSGPACK_AVAILABLE:
            raise ProtocolError("msgpack codec requested but not available")
        return msgpack.packb(obj, use_bin_type=True)
    raise ProtocolError(f"unknown codec id {codec}")


def _decode_payload(payload: bytes, codec: int):
    if codec == CODEC_JSON:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable JSON payload: {exc}") from exc
    if codec == CODEC_MSGPACK:
        if not MSGPACK_AVAILABLE:
            raise ProtocolError("peer sent msgpack but codec not available")
        try:
            return msgpack.unpackb(payload, raw=False)
        except Exception as exc:  # msgpack's exception zoo is wide
            raise ProtocolError(f"undecodable msgpack payload: {exc}") from exc
    raise ProtocolError(f"unknown codec id {codec}")


def encode_frame(obj, codec: str = "json", *,
                 max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One message object -> one wire frame (header + payload)."""
    try:
        codec_id = CODEC_IDS[codec]
    except KeyError:
        raise ProtocolError(f"unknown codec {codec!r}") from None
    payload = _encode_payload(obj, codec_id)
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit")
    return _HEADER.pack(MAGIC, codec_id, 0, len(payload)) + payload


def parse_header(header: bytes, *,
                 max_frame: int = DEFAULT_MAX_FRAME) -> tuple[int, int]:
    """Validate an 8-byte header; return ``(codec_id, payload_length)``."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"truncated frame header ({len(header)} of {HEADER_SIZE} bytes)")
    magic, codec_id, flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if codec_id not in CODEC_NAMES:
        raise ProtocolError(f"unknown codec id {codec_id}")
    if flags != 0:
        raise ProtocolError(f"reserved frame flags must be 0, got {flags}")
    if length > max_frame:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame}-byte frame limit")
    return codec_id, length


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunking of the stream.

    ``feed(chunk)`` buffers bytes; ``frames()`` yields every complete
    message currently decodable.  Structural violations raise
    :class:`~repro.errors.ProtocolError` immediately (the connection is
    unrecoverable at that point — there is no way to resynchronise a
    length-prefixed stream after a bad prefix).
    """

    def __init__(self, *, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._buffer.extend(chunk)

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (clean-EOF detection)."""
        return not self._buffer

    def frames(self):
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return
            codec_id, length = parse_header(
                bytes(self._buffer[:HEADER_SIZE]), max_frame=self.max_frame)
            if len(self._buffer) < HEADER_SIZE + length:
                return
            payload = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            yield _decode_payload(payload, codec_id)


def read_frame(sock, *, max_frame: int = DEFAULT_MAX_FRAME):
    """Blocking read of exactly one frame from a socket.

    Returns the decoded message, or ``None`` on a clean EOF (the peer
    closed between frames).  EOF *inside* a frame is a
    :class:`~repro.errors.ProtocolError` — the peer died mid-message.
    """
    header = _read_exactly(sock, HEADER_SIZE, allow_eof=True)
    if header is None:
        return None
    codec_id, length = parse_header(header, max_frame=max_frame)
    payload = _read_exactly(sock, length, allow_eof=False) if length else b""
    return _decode_payload(payload, codec_id)


def _read_exactly(sock, n: int, *, allow_eof: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} "
                f"bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
