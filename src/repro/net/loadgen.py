"""Closed-loop load generator for a running GraphServer.

``N`` worker threads, each owning one :class:`~repro.net.client.
GraphClient`, issue a seeded random mix of reads (``degree`` /
``neighbors`` / ``khop``) and ticketed mutations (``insert_edges`` of
RMAT batches) against one server for a fixed duration.  *Closed-loop*
means each worker waits for every response before sending the next
request — measured throughput is what the server actually sustains at
this concurrency, not an open-loop arrival fantasy.

The RMAT mutation stream is pre-generated (one disjoint slice per
worker) so generation cost never pollutes the measured window, and the
read keys are drawn from the same vertex id distribution the mutations
populate — reads hit real topology, not empty rows.

Results aggregate into a :class:`LoadStats` (per-family op counts,
latency arrays, typed-error tallies, generation monotonicity check) and
can be written as a standard ``BENCH_net_serve.json`` record via
:func:`loadgen_record` for ``python -m repro report`` diffing.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np

from repro.errors import ReproError
from repro.bench.records import make_bench_record
from repro.net.client import GraphClient, ReplicaSet
from repro.net.protocol import RETRYABLE_CODES
from repro.workloads.rmat import rmat_edges

#: Per-worker op mix defaults: 90:10 read:write is the acceptance mix.
#: Mutations are OLTP-sized transactions (16 edges per ticketed batch):
#: small enough that the micro-batch flush — whose store-apply cost is
#: per-edge — stays short, which is what keeps the closed loop's write
#: stalls (and therefore the whole mix's latency) bounded.
DEFAULT_READ_FRACTION = 0.9
DEFAULT_BATCH_EDGES = 16
#: Probability split inside the read mix: mostly point lookups, some
#: 2-hop expansions to exercise the traversal path.
READ_OP_WEIGHTS = (("degree", 0.55), ("neighbors", 0.35), ("khop", 0.10))

#: Consecutive all-targets-unreachable errors before a worker declares
#: the system dead and goes fatal.  Transport errors are retryable (a
#: restarted server is reachable again), so a *single* failure must not
#: kill the run — but a permanently dead server must not let loadgen
#: spin to a clean exit either.
FATAL_UNAVAILABLE_STREAK = 10


class LoadStats:
    """Aggregated outcome of one load-generation run."""

    def __init__(self):
        self.read_latency_ms: list[float] = []
        self.write_latency_ms: list[float] = []
        self.n_reads = 0
        self.n_writes = 0
        self.n_edges_written = 0
        self.errors: dict[str, int] = {}
        self.n_retries = 0
        self.generation_regressions = 0
        #: per-read replica lag samples (WAL records behind the writer);
        #: empty when reads were answered by the writer itself.
        self.staleness_lag: list[int] = []
        self.n_failovers = 0
        self.n_stale_rejects = 0
        self.wall_s = 0.0

    def merge(self, other: "LoadStats") -> None:
        self.read_latency_ms.extend(other.read_latency_ms)
        self.write_latency_ms.extend(other.write_latency_ms)
        self.n_reads += other.n_reads
        self.n_writes += other.n_writes
        self.n_edges_written += other.n_edges_written
        for code, count in other.errors.items():
            self.errors[code] = self.errors.get(code, 0) + count
        self.n_retries += other.n_retries
        self.generation_regressions += other.generation_regressions
        self.staleness_lag.extend(other.staleness_lag)
        self.n_failovers += other.n_failovers
        self.n_stale_rejects += other.n_stale_rejects

    @property
    def read_ops_per_s(self) -> float:
        return self.n_reads / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def write_ops_per_s(self) -> float:
        return self.n_writes / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def total_ops(self) -> int:
        return self.n_reads + self.n_writes

    def summary(self) -> dict:
        def _q(values: list[float], q: float) -> float:
            return float(np.quantile(values, q)) if values else 0.0

        return {
            "wall_s": self.wall_s,
            "n_reads": self.n_reads,
            "n_writes": self.n_writes,
            "n_edges_written": self.n_edges_written,
            "read_ops_per_s": self.read_ops_per_s,
            "write_ops_per_s": self.write_ops_per_s,
            "read_p50_ms": _q(self.read_latency_ms, 0.5),
            "read_p99_ms": _q(self.read_latency_ms, 0.99),
            "write_p50_ms": _q(self.write_latency_ms, 0.5),
            "write_p99_ms": _q(self.write_latency_ms, 0.99),
            "errors": dict(self.errors),
            "n_retries": self.n_retries,
            "generation_regressions": self.generation_regressions,
            "staleness_p50_lag": _q(self.staleness_lag, 0.5),
            "staleness_p99_lag": _q(self.staleness_lag, 0.99),
            "n_staleness_samples": len(self.staleness_lag),
            "n_failovers": self.n_failovers,
            "n_stale_rejects": self.n_stale_rejects,
        }


class _Worker(threading.Thread):
    def __init__(self, worker_id: int, host: str, port: int, *,
                 read_fraction: float, scale: int, batches: np.ndarray,
                 seed: int, stop_at: float, retries: int,
                 khop_limit: int, timeout: float,
                 port_file: str | None = None,
                 replicas: list | None = None):
        super().__init__(name=f"loadgen-{worker_id}", daemon=True)
        if replicas:
            self.client = ReplicaSet(
                {"host": host, "port": port, "port_file": port_file},
                [{"host": h, "port": p} for h, p in replicas],
                retries=retries, timeout=timeout,
                rng=random.Random(seed))
        else:
            self.client = GraphClient(host, port, retries=retries,
                                      timeout=timeout, port_file=port_file,
                                      rng=random.Random(seed))
        self.routed = replicas is not None and len(replicas) > 0
        self.read_fraction = read_fraction
        self.scale = scale
        self.batches = batches          # (n_batches, batch, 2) int64
        self.rng = np.random.default_rng(seed)
        self.stop_at = stop_at
        self.khop_limit = khop_limit
        self.stats = LoadStats()
        self.fatal: BaseException | None = None
        self._next_batch = 0

    def _read_op(self) -> None:
        src = int(self.rng.integers(0, 2 ** self.scale))
        draw = float(self.rng.random())
        start = time.perf_counter()
        if draw < READ_OP_WEIGHTS[0][1]:
            self.client.degree(src)
        elif draw < READ_OP_WEIGHTS[0][1] + READ_OP_WEIGHTS[1][1]:
            self.client.neighbors(src)
        else:
            self.client.khop(src, 2, limit=self.khop_limit)
        self.stats.read_latency_ms.append(
            (time.perf_counter() - start) * 1e3)
        self.stats.n_reads += 1
        staleness = self.client.last_staleness
        if staleness is not None:  # read answered by a replica
            self.stats.staleness_lag.append(int(staleness.get("lag_seq", 0)))

    def _write_op(self) -> None:
        batch = self.batches[self._next_batch % self.batches.shape[0]]
        self._next_batch += 1
        start = time.perf_counter()
        self.client.insert_edges(batch.tolist())
        self.stats.write_latency_ms.append(
            (time.perf_counter() - start) * 1e3)
        self.stats.n_writes += 1
        self.stats.n_edges_written += batch.shape[0]

    def run(self) -> None:
        last_generation = -1
        unavailable_streak = 0
        try:
            while time.monotonic() < self.stop_at:
                try:
                    if float(self.rng.random()) < self.read_fraction:
                        self._read_op()
                    else:
                        self._write_op()
                    unavailable_streak = 0
                except ReproError as exc:
                    code = getattr(exc, "code", None)
                    if code is None:
                        raise  # untyped failure: not a transient condition
                    if code == "UNAVAILABLE":
                        # Reconnect-and-retry already happened inside the
                        # client; a long enough streak means nothing is
                        # listening anymore (permanent death), which a
                        # load generator must report, not paper over.
                        unavailable_streak += 1
                        if unavailable_streak >= FATAL_UNAVAILABLE_STREAK:
                            raise
                    key = code or type(exc).__name__
                    self.stats.errors[key] = self.stats.errors.get(key, 0) + 1
                    if code in RETRYABLE_CODES:
                        time.sleep(0.005)
                if not self.routed:
                    # Generation is a per-node counter: only comparable
                    # when every read hits the same server.  The routed
                    # mode's equivalent invariant (read-your-writes via
                    # the applied_seq floor) is enforced inside
                    # ReplicaSet itself.
                    gen = self.client.last_generation
                    if gen is not None:
                        if gen < last_generation:
                            self.stats.generation_regressions += 1
                        last_generation = gen
        except BaseException as exc:  # noqa: BLE001 - reported by run()
            self.fatal = exc
        finally:
            self.stats.n_retries = self.client.n_retries
            if self.routed:
                self.stats.n_failovers = self.client.n_failovers
                self.stats.n_stale_rejects = self.client.n_stale_rejects
            self.client.close()


def run_loadgen(host: str, port: int, *,
                clients: int = 4,
                duration: float = 5.0,
                read_fraction: float = DEFAULT_READ_FRACTION,
                scale: int = 14,
                batch_edges: int = DEFAULT_BATCH_EDGES,
                batches_per_worker: int = 64,
                seed: int = 0,
                retries: int = 3,
                khop_limit: int = 128,
                timeout: float = 30.0,
                port_file: str | None = None,
                replicas: list | None = None,
                raise_on_worker_error: bool = True) -> LoadStats:
    """Drive a server with ``clients`` closed-loop workers for ``duration`` s.

    Returns the merged :class:`LoadStats`.  A worker that dies on a
    transport error (server permanently gone) either raises (default)
    or — with ``raise_on_worker_error=False`` — records the failure in
    ``stats.errors["WORKER_FATAL"]`` so availability experiments can
    inspect partial results.

    ``replicas`` (a list of ``(host, port)`` pairs) switches every
    worker to a :class:`~repro.net.client.ReplicaSet`: reads rotate
    over the replicas with failover, writes go to ``host:port`` (the
    writer), and per-read staleness lag is sampled into the stats.
    ``port_file`` makes the writer endpoint survive a server restart.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    # Pre-generate each worker's disjoint RMAT mutation stream.
    total = clients * batches_per_worker * batch_edges
    edges = rmat_edges(scale, total, seed=seed)
    per_worker = edges.reshape(clients, batches_per_worker, batch_edges, 2)
    stop_at = time.monotonic() + duration
    workers = [
        _Worker(i, host, port, read_fraction=read_fraction, scale=scale,
                batches=per_worker[i], seed=seed * 7919 + i,
                stop_at=stop_at, retries=retries, khop_limit=khop_limit,
                timeout=timeout, port_file=port_file, replicas=replicas)
        for i in range(clients)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - start
    merged = LoadStats()
    merged.wall_s = wall
    fatal = None
    for worker in workers:
        merged.merge(worker.stats)
        if worker.fatal is not None:
            fatal = worker.fatal
            merged.errors["WORKER_FATAL"] = \
                merged.errors.get("WORKER_FATAL", 0) + 1
    if fatal is not None and raise_on_worker_error:
        raise fatal
    return merged


def loadgen_record(stats: LoadStats, *, clients: int, duration: float,
                   read_fraction: float, scale: int,
                   batch_edges: int) -> dict:
    """Reduce a run to the standard ``net_serve`` bench record."""
    summary = stats.summary()
    metrics = {
        "read_ops_per_s": summary["read_ops_per_s"],
        "write_ops_per_s": summary["write_ops_per_s"],
        "read_p50_ms": summary["read_p50_ms"],
        "read_p99_ms": summary["read_p99_ms"],
        "write_p50_ms": summary["write_p50_ms"],
        "write_p99_ms": summary["write_p99_ms"],
        "n_reads": float(summary["n_reads"]),
        "n_writes": float(summary["n_writes"]),
        "edges_per_s": (summary["n_edges_written"] / summary["wall_s"]
                        if summary["wall_s"] > 0 else 0.0),
        "n_shed": float(stats.errors.get("SHED", 0)),
        "n_retries": float(summary["n_retries"]),
        "generation_regressions": float(summary["generation_regressions"]),
    }
    # Per-error-code tallies: `err_<CODE>` metrics diff as
    # lower-is-better in `repro report` (records.py direction
    # heuristic), so an error-rate regression shows up red.
    for code, count in sorted(stats.errors.items()):
        metrics[f"err_{code}"] = float(count)
    if stats.staleness_lag:
        metrics["staleness_p50_lag"] = summary["staleness_p50_lag"]
        metrics["staleness_p99_lag"] = summary["staleness_p99_lag"]
        metrics["n_failovers"] = float(summary["n_failovers"])
        metrics["n_stale_rejects"] = float(summary["n_stale_rejects"])
    return make_bench_record(
        "net_serve",
        config={"clients": clients, "duration_s": duration,
                "read_fraction": read_fraction, "scale": scale,
                "batch_edges": batch_edges},
        wall_s=summary["wall_s"],
        latency_ms=stats.read_latency_ms or [0.0],
        metrics=metrics,
    )
