"""Wire protocol: versioning, the op table, and typed error mapping.

One request/response pair per frame (see :mod:`repro.net.frames` for the
byte layout).  Requests and responses are plain JSON-safe objects::

    request:  {"id": 7, "op": "degree", "args": {"src": 42}}
    response: {"id": 7, "ok": true, "result": {"degree": 3},
               "generation": 12}                       # read ops only
    error:    {"id": 7, "ok": false,
               "error": {"code": "SHED", "message": "..."}}

The first frame on a connection must be ``hello``; the server answers
with the negotiated protocol version and codec, and every later frame on
that connection uses the negotiated codec.  A protocol-version mismatch
is answered with a ``VERSION`` error frame and the connection is closed.

Error codes are the wire form of the repro exception hierarchy; both
directions of the mapping live here so the client can re-raise exactly
the exception the server-side service raised
(:class:`~repro.errors.ShedError` for a shed read,
:class:`~repro.errors.BreakerOpenError` for a fast-failed submit, …)
instead of a stringly-typed remote error.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    BreakerOpenError,
    CursorGapError,
    NetError,
    NotWriterError,
    ProtocolError,
    QueueFullError,
    ReplicationError,
    ReproError,
    ServiceError,
    ShedError,
    StaleReadError,
    WorkloadError,
)

#: Protocol version this build speaks.  Bumped on any incompatible
#: message-shape change; the hello handshake rejects a peer whose
#: version differs.
PROTOCOL_VERSION = 1

# --------------------------------------------------------------------- #
# op table
# --------------------------------------------------------------------- #
#: op name -> family.  ``write`` ops feed the service's batching queue
#: (durable, ticketed), ``read`` ops are served lock-free from the CSR
#: snapshot view and carry a ``generation``, ``admin`` ops are control
#: plane (never shed).
OPS: dict[str, str] = {
    "hello": "admin",
    "ping": "admin",
    "health": "admin",
    "metrics": "admin",
    "digest": "admin",
    "refresh": "admin",
    "insert_edges": "write",
    "delete_edges": "write",
    "degree": "read",
    "neighbors": "read",
    "khop": "read",
    "shortest_path": "read",
    # Replication plane (docs/network.md "Replication"): a replica
    # subscribes with its {seq, cum_edges} cursor, pulls WAL record
    # batches (long-poll), reports its applied cursor back, and falls
    # back to a full state transfer when its cursor is below the
    # writer's retained log.  Never shed — replication is how replicas
    # *stop* being stale.
    "subscribe": "repl",
    "wal_batch": "repl",
    "replica_status": "repl",
    "resync": "repl",
}

# --------------------------------------------------------------------- #
# error codes <-> exceptions
# --------------------------------------------------------------------- #
E_VERSION = "VERSION"
E_PROTOCOL = "PROTOCOL"
E_BAD_REQUEST = "BAD_REQUEST"
E_SHED = "SHED"
E_BREAKER_OPEN = "BREAKER_OPEN"
E_QUEUE_FULL = "QUEUE_FULL"
E_SERVICE = "SERVICE"
E_INTERNAL = "INTERNAL"
E_STALE = "STALE"
E_NOT_WRITER = "NOT_WRITER"
E_CURSOR_GAP = "CURSOR_GAP"
E_REPLICATION = "REPLICATION"
#: Client-side synthetic code for transport failures (connection
#: refused/reset, peer vanished mid-frame).  Never sent by a server —
#: attached by the clients so retry/failover policies can treat "the
#: node is unreachable" uniformly with the typed transient errors.
E_UNAVAILABLE = "UNAVAILABLE"

#: code -> exception class raised client-side for a remote error frame.
CODE_TO_EXCEPTION: dict[str, type[ReproError]] = {
    E_VERSION: ProtocolError,
    E_PROTOCOL: ProtocolError,
    E_BAD_REQUEST: WorkloadError,
    E_SHED: ShedError,
    E_BREAKER_OPEN: BreakerOpenError,
    E_QUEUE_FULL: QueueFullError,
    E_SERVICE: ServiceError,
    E_INTERNAL: NetError,
    E_STALE: StaleReadError,
    E_NOT_WRITER: NotWriterError,
    E_CURSOR_GAP: CursorGapError,
    E_REPLICATION: ReplicationError,
    E_UNAVAILABLE: NetError,
}

#: Codes a client may transparently retry with backoff: the condition is
#: declared transient by the service itself (or, for ``UNAVAILABLE``,
#: by the transport — reconnecting may reach a restarted server).
RETRYABLE_CODES = frozenset({E_SHED, E_BREAKER_OPEN, E_QUEUE_FULL,
                             E_STALE, E_UNAVAILABLE})

#: Codes a replica-routing client fails over on (try the next target)
#: without treating the whole call as failed.  ``NOT_WRITER`` is not
#: retryable against the same node but is exactly a rerouting signal.
FAILOVER_CODES = RETRYABLE_CODES | frozenset({E_NOT_WRITER})


def exception_to_code(exc: BaseException) -> str:
    """Server-side: the wire code for an exception (most specific wins)."""
    if isinstance(exc, ShedError):
        return E_SHED
    if isinstance(exc, BreakerOpenError):
        return E_BREAKER_OPEN
    if isinstance(exc, QueueFullError):
        return E_QUEUE_FULL
    if isinstance(exc, StaleReadError):
        return E_STALE
    if isinstance(exc, NotWriterError):
        return E_NOT_WRITER
    if isinstance(exc, CursorGapError):
        return E_CURSOR_GAP
    if isinstance(exc, ReplicationError):
        return E_REPLICATION
    if isinstance(exc, ProtocolError):
        return E_PROTOCOL
    if isinstance(exc, WorkloadError):
        return E_BAD_REQUEST
    if isinstance(exc, ServiceError):
        return E_SERVICE
    return E_INTERNAL


def error_response(request_id, exc_or_code, message: str | None = None) -> dict:
    """Build one error frame (from an exception, or an explicit code)."""
    if isinstance(exc_or_code, BaseException):
        code = exception_to_code(exc_or_code)
        message = str(exc_or_code)
    else:
        code = exc_or_code
        message = message or code
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def raise_remote_error(error: dict) -> None:
    """Client-side: re-raise an error frame as its typed exception.

    The wire code rides along as ``exc.code`` so retry policies can
    consult :data:`RETRYABLE_CODES` without string matching.
    """
    code = error.get("code", E_INTERNAL)
    message = error.get("message", "remote error")
    exc_cls = CODE_TO_EXCEPTION.get(code, NetError)
    exc = exc_cls(f"[{code}] {message}")
    exc.code = code
    raise exc


# --------------------------------------------------------------------- #
# replication record codec
# --------------------------------------------------------------------- #
def wal_record_to_wire(record) -> dict:
    """One :class:`~repro.service.wal.WalRecord` as a JSON-safe object.

    The cursor fields (``seq``, ``cum_edges``) ride along so a replica
    can verify stream contiguity and cumulative-edge parity record by
    record instead of trusting the batch envelope.
    """
    wire = {
        "seq": int(record.seq),
        "op": int(record.op),
        "edges": np.asarray(record.edges, dtype=np.int64).tolist(),
        "cum_edges": int(record.cum_edges),
    }
    if record.weights is not None:
        wire["weights"] = np.asarray(record.weights,
                                     dtype=np.float64).tolist()
    return wire


def wal_record_from_wire(wire: dict):
    """Inverse of :func:`wal_record_to_wire` (returns a ``WalRecord``)."""
    from repro.service.wal import WalRecord

    try:
        edges = np.asarray(wire["edges"], dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges shape {edges.shape}")
        weights = wire.get("weights")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != edges.shape[0]:
                raise ValueError("weights length != edge count")
        return WalRecord(seq=int(wire["seq"]), op=int(wire["op"]),
                         edges=edges, weights=weights,
                         cum_edges=int(wire["cum_edges"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ReplicationError(
            f"malformed WAL record on the wire: {exc}") from exc


# --------------------------------------------------------------------- #
# JSON safety
# --------------------------------------------------------------------- #
def json_safe(value):
    """Recursively convert numpy scalars/arrays so json can encode them."""
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


# --------------------------------------------------------------------- #
# state digest (differential testing across the wire)
# --------------------------------------------------------------------- #
def store_digest(store) -> dict:
    """Canonical content digest of a store's live edge set.

    Order-independent: the edge arrays are lexsorted by ``(src, dst)``
    before hashing, so any two stores holding the same logical edges —
    whatever physical layout or insertion order produced them — digest
    identically.  This is the equality oracle the wire-vs-in-process
    differential tests compare.  Re-exported from
    :func:`repro.core.store.store_digest`, which computes it through the
    formal protocol surface (``edge_arrays`` + ``original_ids``).
    """
    from repro.core.store import store_digest as _core_digest

    return _core_digest(store)
