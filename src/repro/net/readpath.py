"""The snapshot-serving read path: immutable CSR views + graph queries.

The serving tier's reads must never block behind ingest.  This module
makes that structural: a :class:`ReadView` is a *capture* of the CSR
analytics snapshot (:mod:`repro.engine.snapshot`) — the flat
``indptr/dst/weight`` arrays, the original↔dense translation tables, and
the generation that produced them.  The snapshot replaces those arrays
wholesale on rebuild (it never mutates them in place), so a view
captured under the store lock stays internally consistent forever; the
server keeps serving the captured generation while the flusher applies
new batches, and re-captures only when the applied sequence moves.

Every query here is a pure function over the captured arrays — no store
access, no lock, no modeled-cost charges (serving-tier reads live
outside the paper's cost-model world; the charge-mirror contract of the
engine path is untouched).  Staleness is explicit: each response carries
``view.generation``, monotonic per service, so a client can detect — and
bound — how far behind its reads run.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque

import numpy as np

from repro.errors import WorkloadError

#: Default cap on vertices returned by a k-hop expansion.
DEFAULT_KHOP_LIMIT = 10_000
#: Default cap on vertices settled by a shortest-path search.
DEFAULT_PATH_LIMIT = 100_000


class ReadView:
    """One immutable capture of a store's CSR snapshot (plus translation).

    Build through :func:`capture_view`; all arrays are read-only by
    convention (the snapshot will never write into them again).
    """

    __slots__ = ("generation", "applied_seq", "indptr", "dst", "weight",
                 "overlay", "flat_rows", "xlat_orig", "xlat_dense",
                 "xlat_list", "n_rows", "pending")

    def __init__(self, *, generation: int, applied_seq: int,
                 indptr: np.ndarray, dst: np.ndarray, weight: np.ndarray,
                 overlay: dict[int, tuple[np.ndarray, np.ndarray]],
                 n_rows: int,
                 xlat_orig: np.ndarray | None,
                 xlat_dense: np.ndarray | None,
                 pending: int = 0):
        self.generation = generation
        self.applied_seq = applied_seq
        #: dirty rows the capture's sync budget left unmeasured; nonzero
        #: means this view lags `applied_seq` for those rows and the
        #: server should keep re-capturing until the backlog drains
        self.pending = pending
        self.indptr = indptr
        self.dst = dst
        self.weight = weight
        #: rows patched since the flat arrays were last rebuilt; an entry
        #: here shadows that row's flat-CSR slice
        self.overlay = overlay
        self.flat_rows = indptr.shape[0] - 1
        self.n_rows = n_rows
        #: sorted original ids / their dense rows (None = identity ids)
        self.xlat_orig = xlat_orig
        self.xlat_dense = xlat_dense
        #: plain-list twin of ``xlat_orig`` for point lookups: a scalar
        #: ``np.searchsorted`` costs ~17µs in call overhead alone, while
        #: ``bisect`` over a list is ~1µs — and point reads (degree /
        #: neighbors) do exactly one lookup each, so the serving tier's
        #: hottest ops ride on this.  Built once per capture.
        self.xlat_list = xlat_orig.tolist() if xlat_orig is not None else None

    # ------------------------------------------------------------------ #
    # id translation
    # ------------------------------------------------------------------ #
    def row_of(self, src: int) -> int | None:
        """Dense CSR row of original id ``src`` (None if unknown/empty)."""
        if src < 0:
            return None
        if self.xlat_orig is None:
            return int(src) if src < self.n_rows else None
        table = self.xlat_list
        pos = bisect.bisect_left(table, src)
        if pos >= len(table) or table[pos] != src:
            return None
        row = int(self.xlat_dense[pos])
        return row if row < self.n_rows else None

    def rows_of(self, originals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`row_of` for a *sorted unique* id array.

        Returns ``(found_mask, rows_of_found)``.
        """
        if self.xlat_orig is None:
            found = originals < self.n_rows
            return found, originals[found]
        table = self.xlat_orig
        if table.size == 0:
            return np.zeros(originals.shape[0], dtype=bool), \
                np.empty(0, dtype=np.int64)
        pos = np.searchsorted(table, originals)
        pos_c = np.minimum(pos, table.shape[0] - 1)
        found = table[pos_c] == originals
        rows = self.xlat_dense[pos_c[found]]
        in_range = rows < self.n_rows
        if not in_range.all():
            keep = np.flatnonzero(found)[in_range]
            found = np.zeros(originals.shape[0], dtype=bool)
            found[keep] = True
            rows = rows[in_range]
        return found, rows

    # ------------------------------------------------------------------ #
    # point queries
    # ------------------------------------------------------------------ #
    def _row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """``(dst, weight)`` of one dense row, overlay first, then flat."""
        hit = self.overlay.get(row)
        if hit is not None:
            return hit
        if row < self.flat_rows:
            lo, hi = int(self.indptr[row]), int(self.indptr[row + 1])
            return self.dst[lo:hi], self.weight[lo:hi]
        # Allocated after the last flat rebuild and never patched since:
        # the row has no edges in this view's generation.
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    def degree(self, src: int) -> int:
        row = self.row_of(src)
        if row is None:
            return 0
        return int(self._row_slice(row)[0].shape[0])

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        """``(dst, weight)`` of ``src`` — dst in original-id space."""
        row = self.row_of(src)
        if row is None:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        return self._row_slice(row)

    def _rows_dsts(self, rows: np.ndarray) -> np.ndarray:
        """Concatenated destination ids of several dense rows."""
        parts: list[np.ndarray] = []
        if self.overlay:
            keep = np.ones(rows.shape[0], dtype=bool)
            for i, row in enumerate(rows.tolist()):
                hit = self.overlay.get(row)
                if hit is not None:
                    keep[i] = False
                    if hit[0].shape[0]:
                        parts.append(hit[0])
            rows = rows[keep]
        rows = rows[rows < self.flat_rows]
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        if total:
            ends = np.cumsum(counts)
            base = np.repeat(starts - (ends - counts), counts)
            idx = base + np.arange(total, dtype=np.int64)
            parts.append(self.dst[idx])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # traversals
    # ------------------------------------------------------------------ #
    def khop(self, src: int, k: int,
             limit: int = DEFAULT_KHOP_LIMIT) -> tuple[list[int], bool]:
        """Vertices within ``k`` hops of ``src`` (``src`` included).

        Returns ``(sorted original ids, truncated)``; ``truncated`` is
        True when the ``limit`` cap cut the expansion short.  Unknown
        roots yield an empty set.
        """
        if k < 0:
            raise WorkloadError(f"khop depth must be >= 0, got {k}")
        if limit < 1:
            raise WorkloadError(f"khop limit must be >= 1, got {limit}")
        if src < 0:
            raise WorkloadError(f"khop root must be >= 0, got {src}")
        # A root with no out-edges (including one the store has never
        # seen) expands to just itself: the 0-hop set.  Frontier sizes
        # here are small (a few hundred at the default limits), where a
        # dict-backed set probe beats ``np.isin``'s per-call overhead.
        seen: set[int] = {int(src)}
        frontier = np.array([src], dtype=np.int64)
        truncated = False
        for _ in range(k):
            if frontier.size == 0 or truncated:
                break
            _, rows = self.rows_of(np.unique(frontier))
            dsts = np.unique(self._rows_dsts(rows))
            fresh = [d for d in dsts.tolist() if d not in seen]
            if not fresh:
                break
            room = limit - len(seen)
            if len(fresh) > room:
                fresh = fresh[:room]
                truncated = True
            seen.update(fresh)
            frontier = np.asarray(fresh, dtype=np.int64)
        return sorted(seen), truncated

    def shortest_path(self, src: int, dst: int, *, weighted: bool = True,
                      limit: int = DEFAULT_PATH_LIMIT) -> dict:
        """One optimal ``src -> dst`` path over the captured view.

        Dijkstra over edge weights (``weighted=True``; negative weights
        rejected) or plain BFS hop counts.  Returns a dict with
        ``found``, ``distance``, ``path`` (original ids, empty when not
        found) and ``truncated`` (search hit the ``limit`` settled cap).
        """
        src, dst = int(src), int(dst)
        if src == dst:
            return {"found": True, "distance": 0.0, "path": [src],
                    "truncated": False}
        if weighted:
            return self._dijkstra(src, dst, limit)
        return self._bfs_path(src, dst, limit)

    def _neighbors_fast(self, vertex: int):
        row = self.row_of(vertex)
        if row is None:
            return None
        return self._row_slice(row)

    def _bfs_path(self, src: int, dst: int, limit: int) -> dict:
        parent: dict[int, int] = {src: src}
        queue: deque[tuple[int, int]] = deque([(src, 0)])
        settled = 0
        while queue:
            vertex, depth = queue.popleft()
            settled += 1
            if settled > limit:
                return {"found": False, "distance": None, "path": [],
                        "truncated": True}
            hop = self._neighbors_fast(vertex)
            if hop is None:
                continue
            for nxt in hop[0].tolist():
                if nxt in parent:
                    continue
                parent[nxt] = vertex
                if nxt == dst:
                    return self._unwind(parent, src, dst, float(depth + 1))
                queue.append((nxt, depth + 1))
        return {"found": False, "distance": None, "path": [],
                "truncated": False}

    def _dijkstra(self, src: int, dst: int, limit: int) -> dict:
        dist: dict[int, float] = {src: 0.0}
        parent: dict[int, int] = {src: src}
        done: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, src)]
        while heap:
            d, vertex = heapq.heappop(heap)
            if vertex in done:
                continue
            done.add(vertex)
            if vertex == dst:
                return self._unwind(parent, src, dst, d)
            if len(done) > limit:
                return {"found": False, "distance": None, "path": [],
                        "truncated": True}
            hop = self._neighbors_fast(vertex)
            if hop is None:
                continue
            dsts, weights = hop
            for nxt, w in zip(dsts.tolist(), weights.tolist()):
                if w < 0:
                    raise WorkloadError(
                        f"shortest_path requires non-negative weights; "
                        f"edge ({vertex}, {nxt}) has weight {w}")
                nd = d + w
                if nxt not in dist or nd < dist[nxt]:
                    dist[nxt] = nd
                    parent[nxt] = vertex
                    heapq.heappush(heap, (nd, nxt))
        return {"found": False, "distance": None, "path": [],
                "truncated": False}

    @staticmethod
    def _unwind(parent: dict[int, int], src: int, dst: int,
                distance: float) -> dict:
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return {"found": True, "distance": distance, "path": path,
                "truncated": False}


def capture_view(service, *, max_patch_rows: int | None = None) -> ReadView:
    """Capture a fresh :class:`ReadView` from a service's store.

    Must run while mutations are quiescent for the captured arrays to
    represent one applied sequence — the caller side (the server) runs
    it under the service's store lock via :func:`capture_view_locked`.

    ``max_patch_rows`` bounds the capture's sync work (how many dirty
    rows it re-measures while holding that lock); rows past the budget
    stay pending and are reported in ``view.pending`` so the server
    knows to capture again.
    """
    store = service._store
    snap = store.analytics_snapshot
    if snap is None:
        snap = store.enable_snapshot()
    generation = snap.sync(max_rows=max_patch_rows)
    indptr, dst, weight = snap.view_arrays()
    overlay = snap.overlay_rows()
    if store.id_translator is not None:
        xlat_orig, xlat_dense = snap.translation()
    else:
        xlat_orig = xlat_dense = None
    return ReadView(generation=generation, applied_seq=service.applied_seq,
                    indptr=indptr, dst=dst, weight=weight,
                    overlay=overlay, n_rows=snap.n_rows,
                    xlat_orig=xlat_orig, xlat_dense=xlat_dense,
                    pending=snap.pending_rows)


def capture_view_locked(service, *, max_patch_rows: int | None = None) -> ReadView:
    """:func:`capture_view` under the service's store lock."""
    with service._store_lock:
        return capture_view(service, max_patch_rows=max_patch_rows)
