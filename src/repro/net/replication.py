"""WAL-shipping read replicas: apply loop, catch-up, and resync.

The replication plane (docs/network.md "Replication") is pull-based: a
replica opens one dedicated connection to the writer, ``subscribe``\\ s
with its ``{seq, cum_edges}`` cursor, and long-polls ``wal_batch`` for
the records after it.  Three classes implement the replica side:

* :class:`ReplicaService` — the durable replica state.  It quacks
  enough like a :class:`~repro.service.GraphService` for the unmodified
  :class:`~repro.net.server.GraphServer` to serve the read/admin ops
  over it (``_store``, ``_store_lock``, ``applied_seq``,
  ``_shed_check``, ``health`` …), but mutations raise
  :class:`~repro.errors.NotWriterError` — a replica's only write path
  is :meth:`~ReplicaService.apply_record`.  The replica owns a real WAL
  + checkpoint directory of its own: shipped records are appended to
  its local log *before* they touch the store (same WAL-first
  discipline as the writer), which makes ``kill -9`` at any instant
  recoverable by the ordinary :func:`~repro.service.recovery.recover`
  protocol — replay is idempotent via seq skipping, and the surviving
  cursor is exactly the resubscribe point.
* :class:`ReplicationLink` — the background thread that talks to the
  writer: subscribe → pull → apply → report status, resubscribing with
  jittered exponential backoff on disconnect, falling back to a full
  ``resync`` state transfer on :class:`~repro.errors.CursorGapError`
  (the writer pruned our history) or any
  :class:`~repro.errors.ReplicationError` (cursor divergence, digest
  mismatch).  After catching up to the writer's cursor it cross-checks
  ``store_digest`` equality once per session — silent divergence dies
  here, loudly.
* :class:`ReplicaServer` — composition glue: one
  :class:`ReplicaService`, one serving
  :class:`~repro.net.server.ServerThread`, one
  :class:`ReplicationLink`; this is what ``repro serve-replica`` runs.

Staleness is honest and bounded: every read response carries the
replica's ``applied_seq`` and a ``staleness`` block (lag behind the last
writer cursor the link observed), and when ``max_lag_seq`` is set a read
over the bound is shed with a typed ``STALE`` error instead of being
answered stale — the :class:`~repro.net.client.ReplicaSet` router fails
over to a fresher node.
"""

from __future__ import annotations

import random
import threading
import time
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.config import GTConfig
from repro.core.graphtinker import GraphTinker
from repro.errors import (
    CursorGapError,
    NotWriterError,
    ReplicationError,
    ReproError,
    ServiceError,
    StaleReadError,
)
from repro.net.client import GraphClient
from repro.net.protocol import store_digest, wal_record_from_wire
from repro.obs import hooks as obs_hooks
from repro.obs.log import get_logger, kv
from repro.obs.recorder import get_recorder
from repro.service.checkpoint import CheckpointManager, list_checkpoints
from repro.service.recovery import recover
from repro.service.wal import (
    OP_INSERT,
    WalRecord,
    WriteAheadLog,
    list_segments,
)

log = get_logger("net.replication")

#: How long one ``wal_batch`` long-poll parks on the writer (seconds).
#: Short enough that stop/lag bookkeeping stays responsive.
DEFAULT_POLL_WAIT = 1.0

#: Records pulled per batch by default.
DEFAULT_PULL_RECORDS = 512

#: Resync insert chunk: bounds peak intermediate memory when rebuilding
#: a store from a shipped edge list.
_RESYNC_CHUNK = 100_000


class ReplicaService:
    """Durable replica state behind an unmodified ``GraphServer``.

    The constructor runs the standard crash-recovery protocol against
    the replica's own directory, so a replica killed at any point —
    mid-append, mid-checkpoint, mid-resync — comes back to a consistent
    ``{store, seq, cum_edges}`` triple and resubscribes from there.

    ``max_lag_seq`` is the staleness SLO: reads shed with
    :class:`~repro.errors.StaleReadError` while the replica is more
    than that many WAL records behind the writer's last known cursor
    (0 disables shedding — staleness is still *reported*, never
    hidden).  ``checkpoint_every`` checkpoints after that many applied
    records (0 disables; the link's session end still checkpoints).
    """

    def __init__(self, directory: str | Path, *,
                 config: GTConfig | None = None,
                 max_lag_seq: int = 0,
                 checkpoint_every: int = 0,
                 checkpoint_keep: int = 2,
                 verify: str | None = "quick"):
        if max_lag_seq < 0:
            raise ServiceError("max_lag_seq must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._config = config
        result = recover(self.directory, config, verify=verify)
        self.recovery = result
        self._store = result.store
        if self._store.analytics_snapshot is None:
            self._store.enable_snapshot()
        self._store_lock = threading.RLock()
        self._wal = WriteAheadLog(self.directory,
                                  min_last_seq=result.last_seq,
                                  min_cum_edges=result.cum_edges)
        if self._wal.last_seq != result.last_seq:
            raise ServiceError(
                f"{self.directory}: WAL ends at {self._wal.last_seq} but "
                f"recovery produced {result.last_seq} — inconsistent "
                f"replica directory")
        self._ckpt = CheckpointManager(self.directory, keep=checkpoint_keep)
        self._applied_seq = int(result.last_seq)
        self._cum_edges = int(result.cum_edges)
        self.max_lag_seq = int(max_lag_seq)
        self.checkpoint_every = int(checkpoint_every)
        self._since_ckpt = 0
        #: Writer cursor as last observed by the link (its lag anchor).
        self.known_upstream_seq = int(result.last_seq)
        self.known_upstream_cum = int(result.cum_edges)
        self.upstream: dict | None = None   # filled in by the link
        self.n_applied_records = 0
        self.n_applied_edges = 0
        self.n_resyncs = 0
        self.n_resubscribes = 0
        self.n_stale_sheds = 0
        self.last_resync: float | None = None
        self.last_batch_at: float | None = None
        self.link_connected = False
        self._fatal: BaseException | None = None
        self._closed = False
        self._start = time.monotonic()

    # ------------------------------------------------------------------ #
    # GraphService-compatible surface (what GraphServer consumes)
    # ------------------------------------------------------------------ #
    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    @property
    def cum_input_edges(self) -> int:
        return self._cum_edges

    @property
    def fatal_error(self) -> BaseException | None:
        return self._fatal

    def submit_insert(self, edges, weights=None, timeout=None):
        raise NotWriterError(
            "this node is a read replica; send mutations to the writer")

    def submit_delete(self, edges, timeout=None):
        raise NotWriterError(
            "this node is a read replica; send mutations to the writer")

    def lag(self) -> tuple[int, int]:
        """(lag_seq, lag_edges) behind the last known writer cursor."""
        return (max(0, self.known_upstream_seq - self._applied_seq),
                max(0, self.known_upstream_cum - self._cum_edges))

    def read_staleness(self) -> dict:
        """Per-read staleness block (attached to every read response)."""
        lag_seq, lag_edges = self.lag()
        return {"lag_seq": lag_seq, "lag_edges": lag_edges,
                "upstream_seq": self.known_upstream_seq}

    def _shed_check(self) -> None:
        if self.max_lag_seq:
            lag_seq, _ = self.lag()
            if lag_seq > self.max_lag_seq:
                self.n_stale_sheds += 1
                if obs_hooks.enabled:
                    obs.get_registry().counter("repl.stale_sheds").inc()
                raise StaleReadError(
                    f"replica is {lag_seq} records behind the writer "
                    f"(SLO max_lag_seq={self.max_lag_seq}); retry on a "
                    f"fresher node")

    def health(self) -> dict:
        lag_seq, lag_edges = self.lag()
        snap = self._store.analytics_snapshot
        return {
            "role": "replica",
            "applied_seq": self._applied_seq,
            "cum_edges": self._cum_edges,
            "uptime_s": round(time.monotonic() - self._start, 3),
            "queue_depth": 0,
            "pending_edges": 0,
            "snapshot_generation": (snap.generation
                                    if snap is not None else None),
            "snapshot_pending_rows": (snap.pending_rows
                                      if snap is not None else 0),
            "shedding_reads": bool(self.max_lag_seq
                                   and lag_seq > self.max_lag_seq),
            "fatal": repr(self._fatal) if self._fatal else None,
            "replication": {
                "role": "replica",
                "upstream": self.upstream,
                "connected": self.link_connected,
                "upstream_seq": self.known_upstream_seq,
                "applied_seq": self._applied_seq,
                "lag_seq": lag_seq,
                "lag_edges": lag_edges,
                "n_applied_records": self.n_applied_records,
                "n_applied_edges": self.n_applied_edges,
                "n_resyncs": self.n_resyncs,
                "n_resubscribes": self.n_resubscribes,
                "n_stale_sheds": self.n_stale_sheds,
                "last_resync": self.last_resync,
                "last_batch_age_s": (
                    round(time.monotonic() - self.last_batch_at, 3)
                    if self.last_batch_at is not None else None),
            },
            "ok": self._fatal is None,
        }

    # ------------------------------------------------------------------ #
    # the replica's only write path
    # ------------------------------------------------------------------ #
    def apply_record(self, record: WalRecord) -> bool:
        """Apply one shipped record; False = already applied (skipped).

        WAL-first, like the writer: the record lands in the replica's
        local log before the store mutates, so a crash between the two
        replays it.  Appending in upstream order reproduces the
        *identical* seq/cum cursor — any parity break is divergence and
        raises :class:`ReplicationError` (the link resyncs).
        """
        with self._store_lock:
            if self._closed:
                raise ServiceError("replica service is closed")
            if record.seq <= self._applied_seq:
                return False  # idempotent catch-up skip
            return self._apply_locked(record)

    def _apply_locked(self, record: WalRecord) -> bool:
        if record.seq != self._applied_seq + 1:
            raise ReplicationError(
                f"replication stream gap: replica at {self._applied_seq}, "
                f"received record {record.seq}")
        seq = self._wal.append(record.op, record.edges, record.weights)
        if seq != record.seq or self._wal.cum_edges != record.cum_edges:
            raise ReplicationError(
                f"cursor divergence applying record {record.seq}: local "
                f"WAL produced (seq={seq}, cum={self._wal.cum_edges}), "
                f"upstream says (seq={record.seq}, "
                f"cum={record.cum_edges}) — resync required")
        if record.op == OP_INSERT:
            self._store.insert_batch(record.edges, record.weights)
        else:
            self._store.delete_batch(record.edges)
        self._applied_seq = seq
        self._cum_edges = int(record.cum_edges)
        self.n_applied_records += 1
        self.n_applied_edges += int(record.edges.shape[0])
        self._since_ckpt += 1
        if self.checkpoint_every and self._since_ckpt >= self.checkpoint_every:
            self.checkpoint()
        return True

    def checkpoint(self) -> Path:
        """Snapshot applied state; prunes the local WAL behind it."""
        with self._store_lock:
            path = self._ckpt.write(self._store, self._applied_seq,
                                    self._cum_edges)
            self._since_ckpt = 0
        return path

    # ------------------------------------------------------------------ #
    # full state transfer
    # ------------------------------------------------------------------ #
    def resync_from(self, payload: dict) -> None:
        """Replace all local state with a writer ``resync`` payload.

        The old WAL and checkpoints describe history this replica is
        abandoning (pruned-past cursor, or divergence) — both are
        deleted *before* the new state lands, and a fresh checkpoint is
        written at the shipped cursor before the WAL reopens, so a kill
        at any point recovers to either the old empty-directory state
        (restart resyncs again) or the complete new one.  Generation
        monotonicity survives the store swap via
        :meth:`~repro.engine.snapshot.AnalyticsSnapshot.rebase_generation`.
        """
        src = np.asarray(payload["src"], dtype=np.int64)
        dst = np.asarray(payload["dst"], dtype=np.int64)
        weight = np.asarray(payload["weight"], dtype=np.float64)
        last_seq = int(payload["last_seq"])
        cum_edges = int(payload["cum_edges"])
        expected = payload.get("digest") or {}
        with self._store_lock:
            old_snap = self._store.analytics_snapshot
            old_generation = old_snap.generation if old_snap else 0
            self._wal.close()
            for seg in list_segments(self.directory):
                seg.unlink(missing_ok=True)
            # Every old checkpoint goes: one at a *higher* seq than the
            # new cursor would win recovery and resurrect abandoned
            # history.
            for ckpt in list_checkpoints(self.directory):
                ckpt.unlink(missing_ok=True)
            store = GraphTinker(self._config if self._config is not None
                                else GTConfig())
            snap = store.enable_snapshot()
            edges = np.column_stack((src, dst))
            for lo in range(0, edges.shape[0], _RESYNC_CHUNK):
                hi = lo + _RESYNC_CHUNK
                store.insert_batch(edges[lo:hi], weight[lo:hi])
            local = store_digest(store)
            if expected and local["sha256"] != expected.get("sha256"):
                raise ReplicationError(
                    f"resync digest mismatch: writer shipped "
                    f"{expected.get('sha256')} ({expected.get('n_edges')} "
                    f"edges), replica rebuilt {local['sha256']} "
                    f"({local['n_edges']} edges)")
            snap.rebase_generation(old_generation)
            # Counters first: applied_seq is the lock-free "caught up"
            # signal, so an observer that sees the new cursor must also
            # see this resync counted.
            self.n_resyncs += 1
            self.last_resync = time.time()
            self._store = store
            self._applied_seq = last_seq
            self._cum_edges = cum_edges
            self._since_ckpt = 0
            # The shipped cursor IS the writer's position at capture
            # time: rebase the lag anchor on it rather than keeping a
            # stale (possibly higher, after a writer reset) estimate.
            self.known_upstream_seq = last_seq
            self.known_upstream_cum = cum_edges
            self._ckpt.write(store, last_seq, cum_edges)
            self._wal = WriteAheadLog(self.directory,
                                      min_last_seq=last_seq,
                                      min_cum_edges=cum_edges)
        if obs_hooks.enabled:
            obs.get_registry().counter("repl.resyncs").inc()
            get_recorder().record("repl.resync", last_seq=last_seq,
                                  n_edges=int(src.shape[0]))
        log.info(kv("resynced from writer", last_seq=last_seq,
                    n_edges=int(src.shape[0])))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def note_fatal(self, exc: BaseException) -> None:
        self._fatal = exc

    def close(self, checkpoint: bool = False) -> None:
        with self._store_lock:
            if self._closed:
                return
            if checkpoint:
                self._ckpt.write(self._store, self._applied_seq,
                                 self._cum_edges)
            self._closed = True
            self._wal.close()


class ReplicationLink(threading.Thread):
    """Background thread pulling the writer's WAL into one replica.

    Owns one dedicated :class:`~repro.net.client.GraphClient` (so its
    long-polls park no one else's requests).  The session loop survives
    every transient failure by design: disconnects resubscribe with
    jittered exponential backoff; cursor gaps and divergence resync;
    only a non-:class:`~repro.errors.ReproError` programming failure
    marks the replica fatal.
    """

    def __init__(self, replica: ReplicaService, host: str, port: int = 0, *,
                 port_file: str | Path | None = None,
                 replica_id: str | None = None,
                 poll_wait_s: float = DEFAULT_POLL_WAIT,
                 max_records: int = DEFAULT_PULL_RECORDS,
                 timeout: float = 30.0,
                 backoff: float = 0.1,
                 backoff_cap: float = 5.0,
                 digest_check: bool = True,
                 rng: random.Random | None = None):
        super().__init__(name="replication-link", daemon=True)
        self.replica = replica
        self.replica_id = replica_id or f"replica-{replica.directory.name}"
        self.poll_wait_s = poll_wait_s
        self.max_records = max_records
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.digest_check = digest_check
        self._rng = rng or random.Random()
        self._client = GraphClient(host, port, port_file=port_file,
                                   timeout=timeout)
        self._halt = threading.Event()
        replica.upstream = {"host": host, "port": port,
                            "port_file": str(port_file) if port_file else None}

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        failures = 0
        while not self._halt.is_set():
            try:
                self._session()
                failures = 0
            except ReproError as exc:
                # Transient by policy: disconnects, writer restarts,
                # shed/breaker — anything typed.  Resubscribe after a
                # jittered backoff.
                self.replica.link_connected = False
                self.replica.n_resubscribes += 1
                failures += 1
                delay = min(self.backoff_cap,
                            self.backoff * (2 ** min(failures - 1, 10)))
                delay *= 0.5 + self._rng.random()
                if obs_hooks.enabled:
                    obs.get_registry().counter("repl.resubscribes").inc()
                    get_recorder().record("repl.resubscribe",
                                          error=repr(exc),
                                          delay_s=round(delay, 3))
                log.info(kv("replication session ended; resubscribing",
                            error=str(exc)[:200], delay_s=round(delay, 3)))
                self._halt.wait(delay)
            except Exception as exc:  # noqa: BLE001 - fatal wall
                self.replica.link_connected = False
                self.replica.note_fatal(exc)
                log.error(kv("replication link fatal", error=repr(exc)))
                return
            finally:
                self._client.close()
        self.replica.link_connected = False

    def stop(self, timeout: float = 10.0) -> None:
        self._halt.set()
        self.join(timeout)
        self._client.close()

    # ------------------------------------------------------------------ #
    def _session(self) -> None:
        """One subscribe→stream session; returns/raises on disconnect."""
        replica = self.replica
        client = self._client
        client.connect()
        try:
            sub = self._subscribe(client)
        except (CursorGapError, ReplicationError):
            payload = client.call("resync", {})
            replica.resync_from(payload)
            sub = self._subscribe(client)
        replica.known_upstream_seq = max(replica.known_upstream_seq,
                                         int(sub["writer_seq"]))
        replica.known_upstream_cum = max(replica.known_upstream_cum,
                                         int(sub["writer_cum_edges"]))
        replica.link_connected = True
        digest_checked = False
        while not self._halt.is_set():
            batch = client.call("wal_batch",
                                {"max_records": self.max_records,
                                 "wait_s": self.poll_wait_s})
            writer_seq = int(batch["writer_seq"])
            replica.known_upstream_seq = max(replica.known_upstream_seq,
                                             writer_seq)
            records = batch["records"]
            try:
                for wire in records:
                    record = wal_record_from_wire(wire)
                    replica.apply_record(record)
            except ReplicationError:
                # Divergence: abandon local history, take the full
                # state transfer, stream on from the shipped cursor.
                payload = client.call("resync", {})
                replica.resync_from(payload)
                self._subscribe(client)
                digest_checked = False
                continue
            replica.known_upstream_cum = max(replica.known_upstream_cum,
                                             replica.cum_input_edges)
            replica.last_batch_at = time.monotonic()
            self._report_status(client)
            self._update_gauges()
            if (self.digest_check and not digest_checked
                    and replica.applied_seq >= writer_seq):
                digest_checked = True
                self._cross_check(client)

    def _subscribe(self, client: GraphClient) -> dict:
        replica = self.replica
        return client.call("subscribe", {
            "after_seq": replica.applied_seq,
            "cum_edges": replica.cum_input_edges,
            "replica_id": self.replica_id,
        })

    def _report_status(self, client: GraphClient) -> None:
        replica = self.replica
        snap = replica._store.analytics_snapshot
        status = client.call("replica_status", {
            "replica_id": self.replica_id,
            "applied_seq": replica.applied_seq,
            "cum_edges": replica.cum_input_edges,
            "generation": snap.generation if snap is not None else None,
        })
        replica.known_upstream_seq = max(replica.known_upstream_seq,
                                         int(status["writer_seq"]))

    def _update_gauges(self) -> None:
        if not obs_hooks.enabled:
            return
        lag_seq, lag_edges = self.replica.lag()
        registry = obs.get_registry()
        registry.gauge("repl.lag_seq").set(lag_seq)
        registry.gauge("repl.lag_edges").set(lag_edges)

    def _cross_check(self, client: GraphClient) -> None:
        """Digest the writer and compare — only at equal cursors.

        The writer's ``digest`` op reports the cursor its digest was
        taken at; if ingest moved past us between our catch-up and the
        digest, the comparison is meaningless and is skipped (the next
        session retries).  An actual mismatch at an equal cursor is
        silent divergence: raise so the session resyncs.
        """
        replica = self.replica
        remote = client.call("digest")
        if int(remote.get("applied_seq", -1)) != replica.applied_seq:
            return
        with replica._store_lock:
            local = store_digest(replica._store)
        if local["sha256"] != remote["sha256"]:
            raise ReplicationError(
                f"post-catch-up digest mismatch at seq "
                f"{replica.applied_seq}: writer {remote['sha256']} "
                f"({remote['n_edges']} edges) vs replica "
                f"{local['sha256']} ({local['n_edges']} edges)")
        if obs_hooks.enabled:
            get_recorder().record("repl.digest_ok",
                                  applied_seq=replica.applied_seq)
        log.info(kv("catch-up digest verified",
                    applied_seq=replica.applied_seq,
                    n_edges=local["n_edges"]))


class ReplicaServer:
    """One read replica: service + serving thread + replication link.

    ``start()`` brings all three up (serving port is bound before the
    link starts, so health is observable during initial catch-up);
    ``stop()`` tears them down link-first and closes the service with a
    final checkpoint, making the next start's recovery instant.
    """

    def __init__(self, directory: str | Path, upstream_host: str,
                 upstream_port: int = 0, *,
                 upstream_port_file: str | Path | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 replica_id: str | None = None,
                 config: GTConfig | None = None,
                 max_lag_seq: int = 0,
                 checkpoint_every: int = 0,
                 poll_wait_s: float = DEFAULT_POLL_WAIT,
                 max_records: int = DEFAULT_PULL_RECORDS,
                 digest_check: bool = True,
                 backoff: float = 0.1,
                 backoff_cap: float = 5.0,
                 timeout: float = 30.0,
                 **server_kwargs):
        from repro.net.server import ServerThread

        self.service = ReplicaService(directory, config=config,
                                      max_lag_seq=max_lag_seq,
                                      checkpoint_every=checkpoint_every)
        self.link = ReplicationLink(self.service, upstream_host,
                                    upstream_port,
                                    port_file=upstream_port_file,
                                    replica_id=replica_id,
                                    poll_wait_s=poll_wait_s,
                                    max_records=max_records,
                                    digest_check=digest_check,
                                    backoff=backoff,
                                    backoff_cap=backoff_cap,
                                    timeout=timeout)
        self.thread = ServerThread(self.service, host, port, **server_kwargs)

    @property
    def port(self) -> int:
        return self.thread.port

    @property
    def host(self) -> str:
        return self.thread.host

    def start(self, timeout: float = 10.0) -> "ReplicaServer":
        self.thread.start(timeout)
        self.link.start()
        return self

    def wait_caught_up(self, target_seq: int, timeout: float = 30.0) -> bool:
        """Block until the replica applied ``target_seq`` (True) or
        the deadline passed (False).  Test/ops convenience."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.service.applied_seq >= target_seq:
                return True
            if self.service.fatal_error is not None:
                return False
            time.sleep(0.01)
        return self.service.applied_seq >= target_seq

    def stop(self, *, checkpoint: bool = True) -> None:
        self.link.stop()
        self.thread.stop()
        self.service.close(checkpoint=checkpoint)

    def __enter__(self) -> "ReplicaServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
