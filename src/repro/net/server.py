"""GraphServer: the asyncio TCP front-end over one GraphService.

One server owns one durable :class:`~repro.service.GraphService` and
speaks the :mod:`repro.net.protocol` over length-prefixed frames.  The
connection layer is a raw :class:`asyncio.Protocol` (not streams): every
``data_received`` chunk runs through the shared
:class:`~repro.net.frames.FrameDecoder` and *read* requests are
answered synchronously in that same callback — no per-request task, no
coroutine scheduling — which is what lets one event loop sustain
thousands of point reads per second.

* **Mutations** (``insert_edges`` / ``delete_edges``) feed the service's
  batching/backpressure queue and — by default — wait for the ticket, so
  a successful response means *durable* (WAL-synced and applied).  They
  run on a small thread pool; while one is in flight the connection's
  later frames queue, preserving per-connection response order for
  pipelined clients.
* **Reads** (``degree`` / ``neighbors`` / ``khop`` / ``shortest_path``)
  are served lock-free from the current cached
  :class:`~repro.net.readpath.ReadView`.  The view refreshes *off-loop*:
  when a request notices the applied sequence has moved, one executor
  task re-captures under the store lock and swaps the new view in — a
  read never waits on ingest, it serves the generation it finds (bounded
  staleness, explicit via the ``generation`` field on every read
  response; the ``refresh`` admin op forces a synchronous re-capture
  when a caller needs read-your-writes).  Overload reuses the service's
  read shedding: a shed read is a typed ``SHED`` error frame, never a
  hang.
* **Admin** (``health`` / ``metrics`` / ``digest`` / ``refresh`` /
  ``ping``) — health snapshot, Prometheus metrics text, canonical state
  digest, forced view refresh.
* **Replication** (``subscribe`` / ``wal_batch`` / ``replica_status`` /
  ``resync``) — the WAL-shipping stream replicas pull from
  (docs/network.md "Replication").  ``subscribe`` binds a
  :class:`~repro.service.tail.WalTailer` to the connection at the
  replica's ``{seq, cum_edges}`` cursor (a pruned cursor is a typed
  ``CURSOR_GAP``); ``wal_batch`` long-polls it on the executor —
  parking only *this* connection's queue, which is why replicas use a
  dedicated replication connection; ``replica_status`` reports the
  replica's applied cursor into the writer's peer registry (surfaced
  under ``health()["replication"]``); ``resync`` ships the full edge
  state captured consistently under the store lock for cursors the
  retained WAL can no longer serve.  Replication ops are never shed —
  they are how replicas *stop* being stale.

Failure containment: a malformed frame kills only its connection (after
a best-effort ``PROTOCOL`` error frame); an unexpected per-request
exception answers ``INTERNAL`` and keeps the connection; client
disconnects — abrupt or clean — release the connection's resources and
decrement ``net.active_conns``.  The service itself is never taken down
by a client.

Telemetry (when :mod:`repro.obs` is enabled): ``net.request_ms``
quantile sketch, ``net.bytes_in`` / ``net.bytes_out`` / ``net.shed`` /
``net.requests.<family>`` / ``net.errors`` counters and the
``net.active_conns`` gauge.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

import numpy as np

import repro.obs as obs
from repro.errors import (
    CursorGapError,
    ProtocolError,
    ReproError,
    ShedError,
    WorkloadError,
)
from repro.net.frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    encode_frame,
)
from repro.net.protocol import (
    E_PROTOCOL,
    E_VERSION,
    OPS,
    PROTOCOL_VERSION,
    error_response,
    json_safe,
    store_digest,
    wal_record_to_wire,
)
from repro.net.readpath import (
    DEFAULT_KHOP_LIMIT,
    DEFAULT_PATH_LIMIT,
    capture_view_locked,
)
from repro.obs import hooks as obs_hooks
from repro.obs.log import get_logger, kv
from repro.obs.recorder import get_recorder
from repro.service.tail import DEFAULT_POLL_RECORDS, WalTailer

log = get_logger("net.server")

#: Default per-mutation durability wait (seconds) before the server
#: answers a write request with an error instead of holding the frame.
DEFAULT_WRITE_TIMEOUT = 30.0

#: Hard cap on a ``wal_batch`` long-poll (seconds).  Each waiting poll
#: occupies one executor thread, so the cap bounds how much of the pool
#: idle subscribers can hold.
MAX_BATCH_WAIT = 30.0

#: Hard cap on records per ``wal_batch`` response (bounds frame size).
MAX_BATCH_RECORDS = 4096


class GraphServer:
    """Asyncio TCP server over one :class:`~repro.service.GraphService`.

    The caller owns the service's lifecycle; :meth:`stop` stops serving
    but does not close the service (the CLI driver closes both, in
    order: server first, then service).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0, *,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 pool_workers: int = 8,
                 write_timeout: float = DEFAULT_WRITE_TIMEOUT,
                 view_refresh_s: float = 0.25,
                 view_patch_rows: int = 512,
                 khop_limit: int = DEFAULT_KHOP_LIMIT,
                 path_limit: int = DEFAULT_PATH_LIMIT):
        self.service = service
        self.host = host
        self.port = port          # rebound to the real port on start()
        self.max_frame = max_frame
        self.write_timeout = write_timeout
        #: Minimum seconds between background view re-captures.  A
        #: capture re-measures every row the applied batches touched
        #: while holding the store lock, so its cost scales with write
        #: volume — throttling it bounds both the capture work and the
        #: ingest stalls it can cause.  Staleness stays explicit
        #: (``generation``) and bounded (~refresh interval + capture
        #: time); 0 means re-capture on every applied-seq change.
        self.view_refresh_s = view_refresh_s
        #: per-capture patch budget: each throttled refresh re-measures
        #: at most this many dirty rows while holding the store lock, so
        #: a capture can never stall ingest for more than (budget ×
        #: per-row measure cost) even after a large write burst.  Rows
        #: over budget stay pending and the server keeps re-capturing
        #: every refresh interval until the backlog drains; the blocking
        #: ``refresh`` op ignores the budget (full read-your-writes).
        self.view_patch_rows = view_patch_rows
        self.khop_limit = khop_limit
        self.path_limit = path_limit
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="graph-server")
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._view = None
        self._view_ts = 0.0
        self._refreshing = False
        self.n_connections = 0      # lifetime accepted
        self.active_connections = 0
        self._conns: set = set()    # live protocol instances (loop thread)
        #: replica_id -> last-reported cursor/liveness (the writer-side
        #: half of the ``health()["replication"]`` block).  Mutated from
        #: executor threads and the loop thread; every mutation is a
        #: single dict assignment, so no lock is needed under the GIL.
        self.replication_peers: dict[str, dict] = {}
        # The read path serves from the store's CSR snapshot; make sure
        # one is attached before the first capture.
        if service._store.analytics_snapshot is None:
            service._store.enable_snapshot()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        # First capture is synchronous: the server never serves without
        # a view (an empty store captures in microseconds).
        self._view = capture_view_locked(self.service)
        self._server = await self._loop.create_server(
            lambda: _GraphConnection(self), self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(kv("serve-net listening", host=self.host, port=self.port))

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Established connections must die with the server: a client
        # (or replication link) parked on a long poll would otherwise
        # block until its own timeout instead of seeing EOF and
        # reconnecting — an in-process restart has to look like a
        # process death from the outside.
        for conn in list(self._conns):
            conn.closing = True
            if conn.transport is not None:
                conn.transport.close()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # read view maintenance
    # ------------------------------------------------------------------ #
    def current_view(self):
        """The cached ReadView; kicks an off-loop refresh if it lags.

        Never blocks: callers serve the view they find.  At most one
        refresh is in flight; when it lands the new view is swapped in
        on the loop thread, so a later request sees it.
        """
        view = self._view
        if (not self._refreshing
                and (view.pending
                     or view.applied_seq != self.service.applied_seq)
                and time.monotonic() - self._view_ts >= self.view_refresh_s):
            self._refreshing = True
            future = self._loop.run_in_executor(
                self._pool, self._capture_budgeted)
            future.add_done_callback(self._refresh_done)
        return view

    def _capture_budgeted(self):
        return capture_view_locked(self.service,
                                   max_patch_rows=self.view_patch_rows)

    def _refresh_done(self, future) -> None:
        self._refreshing = False
        self._view_ts = time.monotonic()
        try:
            self._view = future.result()
        except Exception as exc:  # noqa: BLE001 - keep serving the old view
            log.warning(kv("view refresh failed", error=repr(exc)))

    def refresh_view_blocking(self):
        """Synchronous re-capture (the ``refresh`` op; executor-side)."""
        view = capture_view_locked(self.service)
        self._view = view
        self._view_ts = time.monotonic()
        return view

    # ------------------------------------------------------------------ #
    # replication bookkeeping
    # ------------------------------------------------------------------ #
    def replication_health(self) -> dict:
        """Writer-side ``replication`` health block (peer cursors/lag)."""
        now = time.time()
        writer_seq = self.service._wal.last_seq
        peers = {}
        for replica_id, info in list(self.replication_peers.items()):
            applied = int(info.get("applied_seq", 0))
            peers[replica_id] = {
                "applied_seq": applied,
                "cum_edges": int(info.get("cum_edges", 0)),
                "generation": info.get("generation"),
                "lag_seq": max(0, int(writer_seq) - applied),
                "connected": bool(info.get("connected", False)),
                "age_s": round(now - float(info.get("ts", now)), 3),
                "n_resyncs": int(info.get("n_resyncs", 0)),
            }
        return {
            "role": "writer",
            "writer_seq": int(writer_seq),
            "n_replicas": sum(1 for p in peers.values() if p["connected"]),
            "peers": peers,
        }


class _GraphConnection(asyncio.Protocol):
    """One client connection: frame decode, ordered dispatch, telemetry.

    Requests on a connection are answered strictly in arrival order.
    Synchronous ops (reads, ping, health, metrics) are answered directly
    inside ``data_received``; async ops (mutations, digest, refresh)
    park the connection's queue until their executor future lands, then
    the queue pumps again — pipelined clients get ordered responses
    without the server serializing across *connections*.
    """

    def __init__(self, server: GraphServer):
        self.server = server
        self.transport: asyncio.Transport | None = None
        self.decoder = FrameDecoder(max_frame=server.max_frame)
        self.codec = "json"
        self.hello_done = False
        self.closing = False
        self._queue: deque = deque()
        self._busy = False      # an async op's future is in flight
        self.repl_tailer: WalTailer | None = None
        self.replica_id: str | None = None

    # ---------------------------- plumbing ---------------------------- #
    def connection_made(self, transport) -> None:
        self.transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        server = self.server
        server.n_connections += 1
        server.active_connections += 1
        server._conns.add(self)
        if obs_hooks.enabled:
            registry = obs.get_registry()
            registry.counter("net.connections").inc()
            registry.gauge("net.active_conns").set(server.active_connections)

    def connection_lost(self, exc) -> None:
        self.closing = True
        self._queue.clear()
        server = self.server
        server.active_connections -= 1
        server._conns.discard(self)
        if self.replica_id is not None:
            peer = server.replication_peers.get(self.replica_id)
            if peer is not None:
                peer["connected"] = False
                peer["ts"] = time.time()
        if obs_hooks.enabled:
            obs.get_registry().gauge("net.active_conns").set(
                server.active_connections)

    def data_received(self, data: bytes) -> None:
        if self.closing:
            return
        if obs_hooks.enabled:
            obs.get_registry().counter("net.bytes_in").inc(len(data))
        try:
            self.decoder.feed(data)
            for request in self.decoder.frames():
                self._queue.append(request)
        except ProtocolError as exc:
            # A length-prefixed stream cannot resynchronise after a bad
            # prefix: answer typed, then drop the connection.
            self._send(error_response(None, E_PROTOCOL, str(exc)))
            self._close()
            return
        self._pump()

    def _pump(self) -> None:
        while self._queue and not self._busy and not self.closing:
            request = self._queue.popleft()
            self._handle(request)

    def _send(self, response: dict) -> None:
        if self.transport is None or self.transport.is_closing():
            return
        try:
            # Handlers emit plain-JSON types already; the sanitizing
            # deep-copy is only needed when one leaks a numpy scalar or
            # array (encode raises TypeError on those — a cheap probe
            # next to paying json_safe's recursion on every response).
            blob = encode_frame(response, self.codec,
                                max_frame=self.server.max_frame)
        except TypeError:
            blob = encode_frame(json_safe(response), self.codec,
                                max_frame=self.server.max_frame)
        self.transport.write(blob)
        if obs_hooks.enabled:
            obs.get_registry().counter("net.bytes_out").inc(len(blob))

    def _close(self) -> None:
        self.closing = True
        if self.transport is not None:
            self.transport.close()

    # ---------------------------- dispatch ---------------------------- #
    def _handle(self, request) -> None:
        if not isinstance(request, dict):
            self._send(error_response(
                None, E_PROTOCOL,
                f"request must be an object, got {type(request).__name__}"))
            self._close()
            return
        request_id = request.get("id")
        op = request.get("op")
        start = time.perf_counter()
        try:
            family = OPS.get(op)
            if family is None:
                raise WorkloadError(f"unknown op {op!r} "
                                    f"(known: {', '.join(sorted(OPS))})")
            if op == "hello":
                self._do_hello(request_id, request)
                return
            if not self.hello_done:
                self._send(error_response(
                    request_id, E_PROTOCOL,
                    "first frame must be a hello (protocol negotiation)"))
                self._close()
                return
            args = request.get("args") or {}
            if not isinstance(args, dict):
                raise WorkloadError("args must be an object")
            if family == "write":
                self._start_async(request_id, self._write_job(op, args))
            elif family == "read":
                self._send(self._do_read(request_id, op, args))
            elif family == "repl":
                self._start_async(request_id, self._repl_job(op, args))
            elif op in ("digest", "refresh"):
                self._start_async(request_id, self._admin_job(op))
            else:
                self._send(self._do_admin(request_id, op))
        except ReproError as exc:
            self._count_error(exc)
            self._send(error_response(request_id, exc))
        except Exception as exc:  # noqa: BLE001 - request fault wall
            log.warning(kv("request failed unexpectedly", op=op,
                           error=repr(exc)))
            self._count_error(exc)
            self._send(error_response(request_id, exc))
        finally:
            if obs_hooks.enabled:
                registry = obs.get_registry()
                registry.counter(
                    f"net.requests.{OPS.get(op, 'unknown')}").inc()
                registry.quantile(
                    "net.request_ms", "server-side request handling (ms)"
                ).record((time.perf_counter() - start) * 1e3)

    @staticmethod
    def _count_error(exc: BaseException) -> None:
        if obs_hooks.enabled:
            registry = obs.get_registry()
            registry.counter("net.errors").inc()
            if isinstance(exc, ShedError):
                registry.counter("net.shed").inc()

    # ----------------------- async (executor) ops ---------------------- #
    def _start_async(self, request_id, job) -> None:
        """Run ``job`` on the pool; park this connection's queue until
        it lands, then answer and pump."""
        self._busy = True
        future = self.server._loop.run_in_executor(self.server._pool, job)

        def done(fut) -> None:
            self._busy = False
            if self.closing:
                return
            try:
                self._send({"id": request_id, "ok": True,
                            "result": fut.result()})
            except ReproError as exc:
                self._count_error(exc)
                self._send(error_response(request_id, exc))
            except Exception as exc:  # noqa: BLE001 - request fault wall
                log.warning(kv("async op failed", error=repr(exc)))
                self._count_error(exc)
                self._send(error_response(request_id, exc))
            self._pump()

        future.add_done_callback(done)

    def _write_job(self, op: str, args: dict):
        edges, weights = _parse_edges(args)
        wait = bool(args.get("wait", True))
        server = self.server

        def job() -> dict:
            service = server.service
            if op == "insert_edges":
                ticket = service.submit_insert(edges, weights)
            else:
                ticket = service.submit_delete(edges)
            if not wait:
                return {"queued": True, "n_edges": int(edges.shape[0])}
            seq = ticket.wait(server.write_timeout)
            return {"seq": int(seq), "n_edges": int(edges.shape[0])}

        return job

    def _admin_job(self, op: str):
        server = self.server

        def job() -> dict:
            if op == "refresh":
                view = server.refresh_view_blocking()
                return {"generation": view.generation,
                        "applied_seq": view.applied_seq}
            service = server.service
            with service._store_lock:
                digest = store_digest(service._store)
            digest["applied_seq"] = service.applied_seq
            snap = service._store.analytics_snapshot
            digest["generation"] = (snap.generation
                                    if snap is not None else None)
            return digest

        return job

    # ----------------------- replication ops --------------------------- #
    def _repl_job(self, op: str, args: dict):
        """Executor job for one replication-family op.

        Replication ops run on the pool like writes do: ``subscribe``
        and ``resync`` touch the store/WAL, and ``wal_batch`` may
        long-poll.  While one is in flight this connection's queue is
        parked — which is exactly the per-connection ordering a
        replication stream wants.
        """
        if op == "subscribe":
            return lambda: self._repl_subscribe(args)
        if op == "wal_batch":
            return lambda: self._repl_wal_batch(args)
        if op == "replica_status":
            return lambda: self._repl_status(args)
        return lambda: self._repl_resync(args)

    def _repl_subscribe(self, args: dict) -> dict:
        server = self.server
        service = server.service
        after_seq = int(args.get("after_seq", 0))
        cum_edges = int(args.get("cum_edges", 0))
        replica_id = str(args.get("replica_id") or f"conn-{id(self):x}")
        wal = service._wal
        if after_seq > wal.last_seq:
            raise CursorGapError(
                f"subscription cursor {after_seq} is ahead of this "
                f"writer's log (last seq {wal.last_seq}) — the replica "
                f"holds foreign history and must resync")
        # Eager cursor validation: raises CursorGapError right here when
        # checkpoint pruning already dropped the requested records.
        self.repl_tailer = WalTailer(service.directory, after_seq, cum_edges)
        self.replica_id = replica_id
        previous = server.replication_peers.get(replica_id, {})
        server.replication_peers[replica_id] = {
            "applied_seq": after_seq,
            "cum_edges": cum_edges,
            "generation": previous.get("generation"),
            "connected": True,
            "ts": time.time(),
            "n_resyncs": int(previous.get("n_resyncs", 0)),
        }
        if obs_hooks.enabled:
            get_recorder().record("repl.subscribe", replica=replica_id,
                                  after_seq=after_seq)
        log.info(kv("replica subscribed", replica=replica_id,
                    after_seq=after_seq, writer_seq=wal.last_seq))
        return {"replica_id": replica_id,
                "writer_seq": int(wal.last_seq),
                "writer_cum_edges": int(wal.cum_edges)}

    def _repl_wal_batch(self, args: dict) -> dict:
        if self.repl_tailer is None:
            raise WorkloadError("wal_batch before subscribe on this "
                                "connection")
        tailer = self.repl_tailer
        max_records = min(int(args.get("max_records",
                                       DEFAULT_POLL_RECORDS)),
                          MAX_BATCH_RECORDS)
        wait_s = min(float(args.get("wait_s", 0.0)), MAX_BATCH_WAIT)
        deadline = time.monotonic() + wait_s
        records = tailer.poll(max_records)
        while not records and not self.closing:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(0.02, remaining))
            records = tailer.poll(max_records)
        wal = self.server.service._wal
        return {"records": [wal_record_to_wire(r) for r in records],
                "last_seq": int(tailer.last_seq),
                "cum_edges": int(tailer.cum_edges),
                "writer_seq": int(wal.last_seq)}

    def _repl_status(self, args: dict) -> dict:
        server = self.server
        service = server.service
        replica_id = self.replica_id or str(args.get("replica_id") or "")
        wal = service._wal
        if replica_id:
            previous = server.replication_peers.get(replica_id, {})
            server.replication_peers[replica_id] = {
                "applied_seq": int(args.get("applied_seq", 0)),
                "cum_edges": int(args.get("cum_edges", 0)),
                "generation": args.get("generation"),
                "connected": True,
                "ts": time.time(),
                "n_resyncs": int(previous.get("n_resyncs", 0)),
            }
        return {"writer_seq": int(wal.last_seq),
                "writer_applied_seq": int(service.applied_seq)}

    def _repl_resync(self, args: dict) -> dict:
        server = self.server
        service = server.service
        # One consistent cut: the store content, its digest, and the WAL
        # cursor it reflects, all under the store lock (the flusher
        # updates the cursor inside the same critical section it applies
        # batches in, so the triple cannot tear).
        with service._store_lock:
            store = service._store
            src, dst, weight = store.analytics_edges()
            digest = store_digest(store)
            last_seq = int(service.applied_seq)
            cum_edges = int(service.cum_input_edges)
        if self.replica_id is not None:
            peer = server.replication_peers.get(self.replica_id)
            if peer is not None:
                peer["n_resyncs"] = int(peer.get("n_resyncs", 0)) + 1
                peer["ts"] = time.time()
        if obs_hooks.enabled:
            obs.get_registry().counter("net.repl.resyncs").inc()
            get_recorder().record("repl.resync", replica=self.replica_id,
                                  last_seq=last_seq,
                                  n_edges=int(src.shape[0]))
        log.info(kv("serving full resync", replica=self.replica_id,
                    last_seq=last_seq, n_edges=int(src.shape[0])))
        return {"src": src.tolist(), "dst": dst.tolist(),
                "weight": weight.tolist(),
                "last_seq": last_seq, "cum_edges": cum_edges,
                "digest": digest}

    # --------------------------- sync ops ------------------------------ #
    def _do_hello(self, request_id, request) -> None:
        args = request.get("args") or {}
        proto = args.get("proto")
        if proto != PROTOCOL_VERSION:
            # Answer typed on the wire, then drop the connection.
            self._send(error_response(
                request_id, E_VERSION,
                f"protocol version {proto!r} not supported "
                f"(server speaks {PROTOCOL_VERSION})"))
            self._close()
            return
        from repro.net.frames import supported_codecs

        ours = supported_codecs()
        theirs = args.get("codecs") or ["json"]
        codec = "msgpack" if ("msgpack" in ours and "msgpack" in theirs) \
            else "json"
        self.codec = codec
        self.hello_done = True
        from repro import __version__

        self._send({"id": request_id, "ok": True,
                    "result": {"proto": PROTOCOL_VERSION, "codec": codec,
                               "server": f"repro/{__version__}"}})

    def _do_read(self, request_id, op: str, args: dict) -> dict:
        server = self.server
        server.service._shed_check()
        view = server.current_view()
        if op == "degree":
            result = {"degree": view.degree(_int_arg(args, "src"))}
        elif op == "neighbors":
            dst, weight = view.neighbors(_int_arg(args, "src"))
            result = {"dst": dst.tolist(), "weight": weight.tolist()}
        elif op == "khop":
            limit = int(args.get("limit") or server.khop_limit)
            vertices, truncated = view.khop(
                _int_arg(args, "src"), _int_arg(args, "k"),
                min(limit, server.khop_limit))
            result = {"vertices": vertices, "truncated": truncated}
        else:  # shortest_path (the op table routed us here)
            limit = int(args.get("limit") or server.path_limit)
            result = view.shortest_path(
                _int_arg(args, "src"), _int_arg(args, "dst"),
                weighted=bool(args.get("weighted", True)),
                limit=min(limit, server.path_limit))
        response = {"id": request_id, "ok": True, "result": result,
                    "generation": view.generation,
                    "applied_seq": view.applied_seq}
        # Replicas report honest staleness on every read (lag behind the
        # writer's known cursor); a plain writer service has no notion
        # of it, hence the probe.
        read_staleness = getattr(server.service, "read_staleness", None)
        if read_staleness is not None:
            response["staleness"] = read_staleness()
        return response

    def _do_admin(self, request_id, op: str) -> dict:
        server = self.server
        if op == "ping":
            return {"id": request_id, "ok": True, "result": {"pong": True}}
        if op == "health":
            health = server.service.health()
            health["net"] = {
                "active_conns": server.active_connections,
                "n_connections": server.n_connections,
                "view_generation": server._view.generation,
                "view_applied_seq": server._view.applied_seq,
            }
            # A replica's service reports its own replication block
            # (role "replica", upstream cursor/lag); only a plain
            # writer gets the peer-registry view filled in here.
            if "replication" not in health:
                health["replication"] = server.replication_health()
            return {"id": request_id, "ok": True, "result": health}
        if op == "metrics":
            text = obs.registry_to_prometheus(obs.get_registry())
            return {"id": request_id, "ok": True,
                    "result": {"prometheus": text,
                               "obs_enabled": obs_hooks.enabled}}
        raise WorkloadError(f"unhandled admin op {op!r}")


def _parse_edges(args) -> tuple[np.ndarray, np.ndarray | None]:
    edges = args.get("edges")
    if edges is None:
        raise WorkloadError("missing 'edges' argument")
    try:
        arr = np.asarray(edges, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise WorkloadError(f"edges not convertible to int64: {exc}") from exc
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise WorkloadError(
            f"edges must be an (n, 2) array, got shape {arr.shape}")
    weights = args.get("weights")
    if weights is not None:
        try:
            weights = np.asarray(weights, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise WorkloadError(
                f"weights not convertible to float64: {exc}") from exc
        if weights.shape[0] != arr.shape[0]:
            raise WorkloadError("weights length must match edge count")
    return arr, weights


def _int_arg(args: dict, name: str) -> int:
    value = args.get(name)
    if value is None or isinstance(value, bool) or not isinstance(
            value, (int, np.integer)):
        raise WorkloadError(f"missing or non-integer argument {name!r}")
    return int(value)


# --------------------------------------------------------------------- #
# thread-hosted server (tests, CLI, embedding)
# --------------------------------------------------------------------- #
class ServerThread:
    """Run a :class:`GraphServer` on its own event loop in a thread.

    The constructor arguments mirror :class:`GraphServer`.  ``start()``
    blocks until the port is bound (so ``.port`` is usable immediately);
    ``stop()`` shuts the server down and joins the thread.  The service
    is *not* closed — same ownership rule as :class:`GraphServer`.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 **server_kwargs):
        self.server = GraphServer(service, host, port, **server_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="graph-server-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
