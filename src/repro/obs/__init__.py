"""Observability layer: tracing, metrics, exporters, logging.

``repro.obs`` is the one place the reproduction looks when it needs to
*see* itself run: where a Robin-Hood displacement cascade burned its
block accesses, which hybrid-engine iterations went incremental, how a
batch's :class:`~repro.core.stats.AccessStats` delta decomposes.  The
layer is **off by default** and costs one flag check per batch while
down, so the cost-model numbers the benchmarks report are never
distorted (DESIGN.md §1).

Typical use::

    import repro.obs as obs

    obs.enable()
    with obs.span("load", stats=gt.stats, dataset="hollywood_like"):
        gt.insert_batch(edges)
    print(obs.render_span_tree(obs.get_tracer().roots))
    print(obs.registry_to_prometheus(obs.get_registry()))

See docs/observability.md for the span-tree model, the metric naming
convention, and the exporter formats.
"""

from repro.obs.export import (
    parse_prometheus,
    registry_from_jsonl,
    registry_to_jsonl,
    registry_to_prometheus,
    registry_to_table,
    render_span_tree,
    timeseries_from_jsonl,
    timeseries_to_jsonl,
    timeseries_to_prometheus,
    trace_from_jsonl,
    trace_to_jsonl,
    trace_to_table,
)
from repro.obs.hooks import (
    disable,
    enable,
    enabled_scope,
    is_enabled,
    publish_store_delta,
)
from repro.obs.log import configure_logging, get_logger, kv
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.quantiles import DEFAULT_QUANTILES, QuantileSketch, quantile_key
from repro.obs.recorder import (
    FlightRecorder,
    blackbox_path,
    get_recorder,
    list_blackboxes,
    load_blackbox,
    set_recorder,
)
from repro.obs.timeseries import MetricsSampler, TimeSeriesRing
from repro.obs.tracing import Span, Tracer, get_tracer, set_tracer, span

# The default flight recorder keeps summaries of root spans finished on
# the default tracer (resolved per call, so set_recorder swaps apply).
get_tracer().add_listener(lambda s: get_recorder().note_span(s))

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "QuantileSketch",
    "Span",
    "TimeSeriesRing",
    "Tracer",
    "blackbox_path",
    "configure_logging",
    "disable",
    "enable",
    "enabled_scope",
    "get_logger",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "kv",
    "list_blackboxes",
    "load_blackbox",
    "parse_prometheus",
    "publish_store_delta",
    "quantile_key",
    "registry_from_jsonl",
    "registry_to_jsonl",
    "registry_to_prometheus",
    "registry_to_table",
    "render_span_tree",
    "set_recorder",
    "set_registry",
    "set_tracer",
    "span",
    "timeseries_from_jsonl",
    "timeseries_to_jsonl",
    "timeseries_to_prometheus",
    "trace_from_jsonl",
    "trace_to_jsonl",
    "trace_to_table",
]
