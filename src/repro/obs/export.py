"""Exporters: render trace trees and metric registries for consumption.

Three output shapes, matching the three consumers the ROADMAP cares
about:

* **JSONL** — one JSON object per span / per instrument, for offline
  analysis and for shipping to log pipelines.  Lossless: the
  corresponding ``*_from_jsonl`` parsers round-trip the data.
* **Prometheus text exposition** — ``# HELP`` / ``# TYPE`` + samples,
  histogram buckets as cumulative ``_bucket{le="..."}`` rows, so a scrape
  endpoint can serve the registry verbatim.
* **Human tables and trees** — reusing
  :class:`repro.bench.reporting.Table` so observability output matches
  the benchmark harness's greppable style.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Sequence

from repro.bench.reporting import Table
from repro.core.stats import AccessStats
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.quantiles import QuantileSketch, quantile_key
from repro.obs.timeseries import TimeSeriesRing
from repro.obs.tracing import Span


# --------------------------------------------------------------------- #
# trace tree → JSONL / table / tree text
# --------------------------------------------------------------------- #
def _span_record(span: Span, span_id: int, parent_id: int | None) -> dict:
    record: dict[str, object] = {
        "id": span_id,
        "parent": parent_id,
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "attrs": span.attrs,
    }
    if span.stats_delta is not None:
        record["stats"] = {
            k: v for k, v in span.stats_delta.as_dict().items() if v
        }
    return record


def trace_to_jsonl(roots: Sequence[Span]) -> str:
    """Serialise a trace forest as JSONL (pre-order, parent ids)."""
    lines: list[str] = []
    next_id = 0

    def emit(span: Span, parent_id: int | None) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        lines.append(json.dumps(_span_record(span, span_id, parent_id),
                                sort_keys=True))
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    return "\n".join(lines) + ("\n" if lines else "")


def trace_from_jsonl(text: str) -> list[Span]:
    """Rebuild the trace forest written by :func:`trace_to_jsonl`."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        stats = record.get("stats")
        span = Span(
            name=record["name"],
            attrs=dict(record.get("attrs", {})),
            start=float(record["start"]),
            duration=float(record["duration"]),
            stats_delta=AccessStats(**stats) if stats is not None else None,
        )
        by_id[int(record["id"])] = span
        parent = record.get("parent")
        if parent is None:
            roots.append(span)
        else:
            by_id[int(parent)].children.append(span)
    return roots


def trace_to_table(roots: Sequence[Span]) -> Table:
    """Flatten a trace forest into a fixed-width :class:`Table`."""
    table = Table(
        "trace spans",
        ["span", "wall_ms", "block_accesses", "edges_inserted", "attrs"],
    )
    for root in roots:
        for depth, span in root.walk():
            delta = span.merged_delta()
            attrs = ",".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            table.add_row([
                "  " * depth + span.name,
                span.duration * 1e3,
                delta.total_block_accesses,
                delta.edges_inserted,
                attrs or "-",
            ])
    return table


def render_span_tree(roots: Sequence[Span]) -> str:
    """Human tree view: nesting, wall time, block-access delta."""
    lines: list[str] = []
    for root in roots:
        for depth, span in root.walk():
            delta = span.merged_delta()
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            lines.append(
                f"{'  ' * depth}{span.name}"
                f"  [{span.duration * 1e3:.2f} ms,"
                f" {delta.total_block_accesses} block accesses]"
                + (f"  {attrs}" if attrs else "")
            )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# registry → Prometheus text / JSONL / table
# --------------------------------------------------------------------- #
_PROM_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Dotted metric name → Prometheus-legal name (stable sanitization).

    Dots and dashes become ``_`` (the historical mapping), every other
    illegal character collapses to ``_`` as well, and a leading digit
    gains a ``_`` prefix — so any registry name maps deterministically
    (and idempotently) onto ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    name = _PROM_ILLEGAL.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name or "_"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> dict[str, str]:
    """Parse a ``key="value",...`` label body (escapes honoured)."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"unquoted label value in {text!r}"
        j = eq + 2
        raw: list[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j:j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        labels[key] = _unescape_label_value("".join(raw))
        i = j + 1
    return labels


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Quantile sketches render as the ``summary`` family —
    ``name{quantile="0.5"} v`` rows plus ``_sum`` / ``_count`` — exactly
    as Prometheus client libraries expose pre-computed quantiles.
    """
    lines: list[str] = []
    for inst in registry.instruments():
        name = _prom_name(inst.name)
        if inst.help:
            lines.append(f"# HELP {name} {inst.help}")
        if isinstance(inst, Histogram):
            lines.append(f"# TYPE {name} {inst.kind}")
            for bound, cumulative in inst.cumulative_counts():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_prom_value(inst.total)}")
            lines.append(f"{name}_count {inst.count}")
        elif isinstance(inst, QuantileSketch):
            lines.append(f"# TYPE {name} summary")
            for q in inst.quantiles:
                lines.append(
                    f'{name}{{quantile="{_prom_value(q)}"}} '
                    f"{_prom_value(inst.quantile(q))}"
                )
            lines.append(f"{name}_sum {_prom_value(inst.total)}")
            lines.append(f"{name}_count {inst.count}")
        else:
            lines.append(f"# TYPE {name} {inst.kind}")
            lines.append(f"{name} {_prom_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def timeseries_to_prometheus(ring: TimeSeriesRing,
                             name: str = "repro_timeseries") -> str:
    """Render a ring's *latest* samples as one labelled gauge family.

    Each series becomes ``name{series="<series name>"} <latest value>``
    (label values escaped), which is how a scrape endpoint would expose
    the dashboard's instantaneous view; the full window travels via
    :func:`timeseries_to_jsonl`.
    """
    name = _prom_name(name)
    lines = [f"# TYPE {name} gauge"]
    for series in ring.names():
        latest = ring.latest(series)
        if latest is None:
            continue
        lines.append(
            f'{name}{{series="{_escape_label_value(series)}"}} '
            f"{_prom_value(latest[1])}"
        )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse :func:`registry_to_prometheus` output back into plain data.

    Returns ``{prom_name: entry}`` where the entry is
    ``{"type": ..., "value": ...}`` for scalars,
    ``{"type": "histogram", "buckets": {le: cumulative}, "sum", "count"}``
    for histograms, ``{"type": "summary", "quantiles": {q: value},
    "sum", "count"}`` for quantile sketches, and any other labelled
    samples (e.g. the time-series gauge family) accumulate under
    ``"samples": [{"labels": {...}, "value": ...}]`` with label escapes
    undone — enough for round-trip tests and for scrapers that only need
    values.
    """
    out: dict[str, dict] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            entry: dict[str, object] = {"type": kind}
            if kind == "histogram":
                entry["buckets"] = {}
            elif kind == "summary":
                entry["quantiles"] = {}
            out[name] = entry
            continue
        if line.startswith("#"):
            continue
        sample, value_text = line.rsplit(None, 1)
        value = float(value_text)
        if "{" in sample:
            base, label_part = sample.split("{", 1)
            labels = _parse_labels(label_part.rstrip().rstrip("}"))
            if base.endswith("_bucket") and "le" in labels:
                hist = out.get(base[: -len("_bucket")])
                if hist is not None and hist.get("type") == "histogram":
                    hist["buckets"][labels["le"]] = int(value)
                    continue
            if "quantile" in labels and types.get(base) == "summary":
                out[base]["quantiles"][labels["quantile"]] = value
                continue
            out.setdefault(base, {"type": types.get(base, "untyped")})
            out[base].setdefault("samples", []).append(
                {"labels": labels, "value": value})
            continue
        for suffix in ("_sum", "_count"):
            base = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if base is not None and types.get(base) in ("histogram", "summary"):
                out[base][suffix[1:]] = value
                break
        else:
            out.setdefault(sample, {"type": types.get(sample, "untyped")})
            out[sample]["value"] = value
    return out


def registry_to_jsonl(registry: MetricsRegistry) -> str:
    """Serialise the registry as JSONL (one instrument per line)."""
    lines: list[str] = []
    for inst in registry.instruments():
        record: dict[str, object] = {
            "name": inst.name,
            "kind": inst.kind,
            "help": inst.help,
        }
        if isinstance(inst, Histogram):
            record["buckets"] = list(inst.buckets)
            record["bucket_counts"] = list(inst.bucket_counts)
            record["count"] = inst.count
            record["sum"] = inst.total
            record["max"] = inst.max_value
        elif isinstance(inst, QuantileSketch):
            record["state"] = inst.state()
            record["summary"] = inst.summary()
        else:
            record["value"] = inst.value
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def registry_from_jsonl(text: str) -> MetricsRegistry:
    """Rebuild a registry written by :func:`registry_to_jsonl`.

    Restores instrument state directly (bypassing the enabled-flag gate),
    so exported registries round-trip regardless of the master switch.
    """
    registry = MetricsRegistry()
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        name, help_ = record["name"], record.get("help", "")
        if record["kind"] == "counter":
            registry.counter(name, help_).value = float(record["value"])
        elif record["kind"] == "gauge":
            registry.gauge(name, help_).value = float(record["value"])
        elif record["kind"] == "quantile":
            state = record["state"]
            registry.quantile(
                name, help_, capacity=int(state["capacity"]),
                quantiles=tuple(state["quantiles"]),
            ).restore(state)
        else:
            hist = registry.histogram(name, help_, buckets=record["buckets"])
            hist.bucket_counts = [int(n) for n in record["bucket_counts"]]
            hist.count = int(record["count"])
            hist.total = float(record["sum"])
            hist.max_value = float(record["max"])
    return registry


def registry_to_table(registry: MetricsRegistry) -> Table:
    """Counters/gauges/histogram/quantile summaries as a fixed-width table."""
    table = Table("metrics", ["metric", "kind", "value", "detail"])
    for inst in registry.instruments():
        if isinstance(inst, Histogram):
            detail = f"count={inst.count} mean={inst.mean:.3f} max={inst.max_value:g}"
            table.add_row([inst.name, inst.kind, inst.total, detail])
        elif isinstance(inst, QuantileSketch):
            detail = " ".join(
                [f"count={inst.count}", f"mean={inst.mean:.3f}"]
                + [f"{k}={v:g}" for k, v in inst.quantile_values().items()]
                + [f"max={inst.max_value:g}"]
            )
            table.add_row([inst.name, inst.kind, inst.total, detail])
        else:
            table.add_row([inst.name, inst.kind, inst.value, "-"])
    return table


# --------------------------------------------------------------------- #
# time-series ring → JSONL
# --------------------------------------------------------------------- #
def timeseries_to_jsonl(ring: TimeSeriesRing) -> str:
    """Serialise a ring's full window (one JSON object per series)."""
    lines: list[str] = []
    for name in ring.names():
        ts, values = ring.series(name)
        lines.append(json.dumps(
            {"series": name, "timestamps": ts.tolist(),
             "values": values.tolist()},
            sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def timeseries_from_jsonl(text: str, capacity: int | None = None,
                          ) -> TimeSeriesRing:
    """Rebuild a ring written by :func:`timeseries_to_jsonl`.

    ``capacity`` defaults to the longest serialised series, so a full
    round-trip is lossless.
    """
    records = [json.loads(line) for line in text.splitlines() if line.strip()]
    if capacity is None:
        capacity = max((len(r["values"]) for r in records), default=1) or 1
    ring = TimeSeriesRing(capacity)
    for record in records:
        ring.ensure(record["series"])
        for ts, value in zip(record["timestamps"], record["values"]):
            ring.record(record["series"], value, ts=ts)
    return ring
