"""The observability master switch and hot-path hook helpers.

Everything in :mod:`repro.obs` is **off by default** so that
instrumentation can never distort the cost-model numbers the reproduction
is built on (DESIGN.md §1): the hot paths guard every hook behind a single
module-level :data:`enabled` flag check, mirroring how
:class:`~repro.core.stats.AccessStats` counts at block granularity only.

Hot-path call sites therefore look like::

    from repro.obs import hooks

    before = self.stats.snapshot() if hooks.enabled else None
    ...  # the real work
    if before is not None:
        hooks.publish_store_delta("gt", self.stats.delta(before))

With the flag down the whole observability layer costs one attribute read
per *batch* (never per edge or per cell).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.stats import AccessStats

#: Master switch for tracing + metrics.  Mutate via :func:`enable` /
#: :func:`disable` (or the :func:`enabled_scope` context manager) so the
#: flag stays a plain module attribute — the cheapest thing a hot path
#: can test.
enabled: bool = False


def enable() -> None:
    """Turn the observability layer on (spans recorded, metrics counted)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn the observability layer off (the default)."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    """Current state of the master switch."""
    return enabled


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force the master switch, restoring it on exit."""
    global enabled
    prior = enabled
    enabled = on
    try:
        yield
    finally:
        enabled = prior


# --------------------------------------------------------------------- #
# store-level publication
# --------------------------------------------------------------------- #
#: AccessStats fields worth publishing as per-store metrics, with the
#: metric suffix each maps to (see docs/observability.md for the naming
#: convention).
_STAT_METRICS: tuple[tuple[str, str], ...] = (
    ("rhh_swaps", "rhh.swaps"),
    ("branch_descents", "tbh.descents"),
    ("branch_allocations", "tbh.allocations"),
    ("workblock_fetches", "workblock.fetches"),
    ("workblock_writebacks", "workblock.writebacks"),
    ("random_block_reads", "block.random_reads"),
    ("seq_block_reads", "block.seq_reads"),
    ("hash_lookups", "sgh.lookups"),
    ("cal_updates", "cal.updates"),
    ("edges_inserted", "edges.inserted"),
    ("edges_deleted", "edges.deleted"),
    ("tombstones_set", "edges.tombstoned"),
)


def publish_ingest(op: str, kernel: str, n_edges: int,
                   duration_s: float | None = None) -> None:
    """Publish one ingest batch under its kernel: ``ingest.<op>.<kernel>.*``.

    Emits per-kernel batch and edge counters so a kernel rollout (or a
    scalar fallback, e.g. delete-and-compact batches) is visible in the
    metrics without changing any cost-model number.  ``duration_s``, when
    measured, additionally lands in the ``ingest.<op>.batch_ms`` quantile
    sketch (p50/p90/p99 per-batch ingest latency).  Callers must have
    checked :data:`enabled` already.
    """
    from repro.obs.metrics import get_registry

    registry = get_registry()
    registry.counter(f"ingest.{op}.{kernel}.batches").inc()
    registry.counter(f"ingest.{op}.{kernel}.edges").inc(n_edges)
    if duration_s is not None:
        registry.quantile(
            f"ingest.{op}.batch_ms", "per-batch ingest wall latency (ms)"
        ).record(duration_s * 1e3)


def publish_store_delta(prefix: str, delta: "AccessStats") -> None:
    """Publish one batch's :class:`AccessStats` delta as counters.

    ``prefix`` identifies the publishing store (``"gt"``, ``"stinger"``,
    ``"part"``); each non-zero field becomes an increment of the
    ``<prefix>.<suffix>`` counter in the default registry.  Callers must
    have checked :data:`enabled` already (the snapshot that produced
    ``delta`` is itself gated on it).
    """
    from repro.obs.metrics import get_registry

    registry = get_registry()
    for field_name, suffix in _STAT_METRICS:
        value = getattr(delta, field_name)
        if value:
            registry.counter(f"{prefix}.{suffix}").inc(value)
