"""Structured logging setup shared by every CLI command.

One call to :func:`configure_logging` installs a single stream handler on
the ``repro`` logger hierarchy with a fixed, greppable format::

    2026-08-06T12:00:00 INFO repro.cli | loaded 48000 edges dataset=hollywood_like

Key/value context goes through :func:`kv` so messages stay one-line
parseable.  Repeat calls reconfigure the level in place (idempotent —
safe from tests and from each subcommand), and nothing is installed on
the root logger, so embedding applications keep control of their own
logging.
"""

from __future__ import annotations

import logging
import sys

#: Levels the CLI exposes via ``--log-level``.
LEVELS: tuple[str, ...] = ("debug", "info", "warning")

_FORMAT = "%(asctime)s %(levelname)s %(name)s | %(message)s"
_DATEFMT = "%Y-%m-%dT%H:%M:%S"
_HANDLER_NAME = "repro-obs"


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``repro`` itself if empty)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")


def configure_logging(level: str = "warning",
                      stream=None) -> logging.Logger:
    """Install (or re-level) the ``repro`` stream handler; return the root
    ``repro`` logger."""
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
    logger = get_logger()
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    handler = next(
        (h for h in logger.handlers if h.get_name() == _HANDLER_NAME), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.set_name(_HANDLER_NAME)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        logger.addHandler(handler)
    else:
        # Rebind on every call: the process's stderr may have been
        # redirected (tests, daemonisation) since the handler was made.
        # Direct assignment, not setStream(): the prior stream may
        # already be closed, and setStream() would flush it.
        handler.stream = stream or sys.stderr
    return logger


def kv(message: str, **context: object) -> str:
    """Append ``key=value`` context to a log message, sorted for grep."""
    if not context:
        return message
    suffix = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
    return f"{message} {suffix}"
