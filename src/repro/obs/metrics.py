"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Instruments follow a dotted naming convention (``gt.rhh.swaps``,
``engine.mode.incremental``, ``stinger.block.random_reads`` — see
docs/observability.md) and live in a process-wide
:class:`MetricsRegistry`.  Stores and the hybrid engine publish into the
registry through the cheap hooks in :mod:`repro.obs.hooks`; nothing is
recorded while the master switch is down.

:class:`Histogram` generalises :class:`~repro.core.stats.ProbeHistogram`
(running count/total/max and ``mean``) with fixed, Prometheus-style
cumulative bucket boundaries so distributions — probe distances, batch
costs, span durations — can be exported, not just summarised.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable, Mapping, Sequence

from repro.obs import hooks
from repro.obs.quantiles import (
    DEFAULT_CAPACITY,
    DEFAULT_QUANTILES as DEFAULT_SKETCH_QUANTILES,
    QuantileSketch,
)

#: Default histogram boundaries — powers of two, matching the
#: block-granularity quantities (probe distances, per-batch block counts)
#: the subsystem mostly measures.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """Monotonically increasing count (e.g. ``gt.rhh.swaps``)."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        if hooks.enabled:
            self.value += amount


class Gauge:
    """Point-in-time value (e.g. ``engine.predictor``)."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        if hooks.enabled:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if hooks.enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-boundary histogram with running count/sum/max.

    ``buckets`` are upper bounds of cumulative buckets (an implicit
    ``+Inf`` bucket is always present), exactly as Prometheus renders
    them.  The running ``count``/``total``/``max_value``/``mean`` mirror
    :class:`~repro.core.stats.ProbeHistogram`, which this class
    generalises.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "total",
                 "max_value")

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        if not hooks.enabled:
            return
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip((*self.buckets, float("inf")), self.bucket_counts):
            running += n
            out.append((bound, running))
        return out


Instrument = Counter | Gauge | Histogram | QuantileSketch


class MetricsRegistry:
    """Thread-safe name → instrument map with get-or-create accessors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(self, name: str, cls, **kwargs) -> Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, help=help, buckets=buckets)

    def quantile(self, name: str, help: str = "",
                 capacity: int = DEFAULT_CAPACITY,
                 quantiles: Sequence[float] = DEFAULT_SKETCH_QUANTILES,
                 ) -> QuantileSketch:
        """Get or create a streaming :class:`QuantileSketch` instrument."""
        return self._get_or_create(name, QuantileSketch, help=help,
                                   capacity=capacity, quantiles=quantiles)

    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def get(self, name: str) -> Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> list[Instrument]:
        """All instruments, sorted by name (stable export order)."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def collect(self) -> dict[str, float | Mapping[str, float]]:
        """Flat snapshot: counters/gauges → value, histograms → summary."""
        out: dict[str, float | Mapping[str, float]] = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                out[inst.name] = {
                    "count": float(inst.count),
                    "sum": inst.total,
                    "max": inst.max_value,
                    "mean": inst.mean,
                }
            elif isinstance(inst, QuantileSketch):
                out[inst.name] = inst.summary()
            else:
                out[inst.name] = inst.value
        return out

    def reset(self) -> None:
        """Forget every instrument (tests and fresh CLI runs)."""
        with self._lock:
            self._instruments.clear()


#: Process-wide default registry the hot-path hooks publish into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _REGISTRY
    prior = _REGISTRY
    _REGISTRY = registry
    return prior
