"""Mergeable streaming quantile sketches (p50/p90/p99 for any metric).

Counters say *how much*, histograms say *roughly where*, but latency
arguments — the DGAP/GraphTango style "p99 under churn" claims the
ROADMAP's service work needs — require real quantiles.
:class:`QuantileSketch` is the repo's one quantile implementation:

* **Fixed-size**: a NumPy-backed reservoir of ``capacity`` float64
  samples (algorithm R), so memory is bounded no matter how long the
  stream runs.
* **Exact under capacity**: while ``count <= capacity`` every value is
  retained and :meth:`quantile` agrees bit-for-bit with
  ``numpy.percentile`` over the full stream — which is why
  :mod:`repro.core.probes` delegates here instead of keeping a second
  percentile implementation.
* **Mergeable**: :meth:`merge` combines two sketches into a valid sketch
  of the concatenated streams (exactly, when the combined count fits the
  capacity; by count-weighted subsampling otherwise), so per-shard or
  per-thread sketches can be aggregated like ``AccessStats``.

Like every instrument, :meth:`record` is gated on
:data:`repro.obs.hooks.enabled`; the ungated :meth:`observe` exists for
offline aggregation (probes, exporter round-trips) that must work with
the master switch down.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.obs import hooks

#: The quantiles every exporter reports by default.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)

#: Default reservoir size — large enough that p99 of a batch-granularity
#: stream (hundreds to low thousands of observations per run) is usually
#: exact, small enough to be free to keep per metric.
DEFAULT_CAPACITY = 512


def quantile_key(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99.9"``."""
    scaled = q * 100.0
    if float(scaled).is_integer():
        return f"p{int(scaled)}"
    return f"p{scaled:g}"


class QuantileSketch:
    """Fixed-size mergeable reservoir quantile estimator (see module doc)."""

    __slots__ = ("name", "help", "capacity", "quantiles", "count", "total",
                 "_min", "_max", "_buf", "_n_buf", "_rng", "_seed")

    kind = "quantile"

    def __init__(self, name: str = "", help: str = "",
                 capacity: int = DEFAULT_CAPACITY,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES,
                 seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        qs = tuple(float(q) for q in quantiles)
        if not qs or any(not 0.0 < q < 1.0 for q in qs) or list(qs) != sorted(qs):
            raise ValueError("quantiles must be ascending and inside (0, 1)")
        self.name = name
        self.help = help
        self.capacity = int(capacity)
        self.quantiles = qs
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._buf = np.empty(self.capacity, dtype=np.float64)
        self._n_buf = 0
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, value: float) -> None:
        """Record one observation (no-op while the master switch is down)."""
        if hooks.enabled:
            self.observe(value)

    def observe(self, value: float) -> None:
        """Record one observation unconditionally (offline aggregation)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._n_buf < self.capacity:
            self._buf[self._n_buf] = value
            self._n_buf += 1
        else:
            # Algorithm R: the n-th observation replaces a reservoir slot
            # with probability capacity/n, keeping the sample uniform.
            j = int(self._rng.integers(self.count))
            if j < self.capacity:
                self._buf[j] = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (vectorised while under capacity)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        room = self.capacity - self._n_buf
        head, tail = arr[:room], arr[room:]
        if head.size:
            self._buf[self._n_buf:self._n_buf + head.size] = head
            self._n_buf += head.size
            self.count += head.size
            self.total += float(head.sum())
            self._min = min(self._min, float(head.min()))
            self._max = max(self._max, float(head.max()))
        for value in tail.tolist():
            self.observe(value)

    @classmethod
    def from_array(cls, values, name: str = "", capacity: int | None = None,
                   **kwargs) -> "QuantileSketch":
        """A sketch pre-loaded with ``values``.

        With the default ``capacity=len(values)`` the sketch is *exact*:
        its quantiles equal ``numpy.percentile`` over ``values``.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        sketch = cls(name, capacity=max(1, arr.size) if capacity is None
                     else capacity, **kwargs)
        sketch.observe_many(arr)
        return sketch

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min_value(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max_value(self) -> float:
        return self._max if self.count else 0.0

    @property
    def exact(self) -> bool:
        """Whether every observation is still in the reservoir."""
        return self.count == self._n_buf

    def samples(self) -> np.ndarray:
        """The retained sample (sorted copy)."""
        return np.sort(self._buf[:self._n_buf])

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact while under capacity)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be inside [0, 1]")
        if self._n_buf == 0:
            return 0.0
        return float(np.percentile(self._buf[:self._n_buf], q * 100.0))

    def quantile_values(self) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for the configured set."""
        if self._n_buf == 0:
            return {quantile_key(q): 0.0 for q in self.quantiles}
        values = np.percentile(self._buf[:self._n_buf],
                               [q * 100.0 for q in self.quantiles])
        return {quantile_key(q): float(v)
                for q, v in zip(self.quantiles, values)}

    def summary(self) -> dict[str, float]:
        """Count/sum/min/max/mean plus the configured quantiles."""
        out = {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
        }
        out.update(self.quantile_values())
        return out

    # ------------------------------------------------------------------ #
    # merge
    # ------------------------------------------------------------------ #
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other``'s stream into this sketch (``other`` unchanged).

        Exact when the combined retained samples fit this sketch's
        capacity and both sides are exact; otherwise the reservoir is
        re-drawn by count-weighted subsampling, which keeps it a uniform
        sample of the concatenated stream.  Returns ``self``.
        """
        if other.count == 0:
            return self
        mine = self._buf[:self._n_buf]
        theirs = other._buf[:other._n_buf]
        if (self.exact and other.exact
                and self._n_buf + other._n_buf <= self.capacity):
            merged = np.concatenate([mine, theirs])
        else:
            total = self.count + other.count
            # Split the reservoir slots proportionally to stream sizes,
            # clamped to what each side actually retains.
            k_mine = int(round(self.capacity * self.count / total))
            k_mine = min(max(k_mine, self.capacity - theirs.size), mine.size)
            k_theirs = min(self.capacity - k_mine, theirs.size)
            parts = []
            for samples, k in ((mine, k_mine), (theirs, k_theirs)):
                if k >= samples.size:
                    parts.append(samples)
                elif k > 0:
                    idx = self._rng.choice(samples.size, size=k, replace=False)
                    parts.append(samples[idx])
            merged = np.concatenate(parts) if parts else np.empty(0)
        self._n_buf = merged.size
        self._buf[:self._n_buf] = merged
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    # ------------------------------------------------------------------ #
    # (de)serialisation — exporter support
    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        """Plain-data sketch state (for the JSONL exporter)."""
        return {
            "capacity": self.capacity,
            "quantiles": list(self.quantiles),
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "samples": self._buf[:self._n_buf].tolist(),
        }

    def restore(self, state: dict) -> "QuantileSketch":
        """Overwrite this sketch with exported ``state`` (RNG reseeded)."""
        samples = np.asarray(state["samples"], dtype=np.float64)
        if samples.size > self.capacity:
            raise ValueError("restored samples exceed sketch capacity")
        self._buf[:samples.size] = samples
        self._n_buf = samples.size
        self.count = int(state["count"])
        self.total = float(state["sum"])
        self._min = float(state["min"]) if self.count else float("inf")
        self._max = float(state["max"]) if self.count else float("-inf")
        self._rng = np.random.default_rng(self._seed)
        return self
