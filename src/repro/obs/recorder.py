"""Flight recorder: a bounded black box of recent events and spans.

When the breaker opens or the writer dies, counters tell you *that* it
happened; the flight recorder tells you *what the last moments looked
like*: the WAL retries that preceded the trip, the fsck violations a
recovery found, the spans that were in flight.  It is a fixed-size ring
(events never grow without bound) that the service and recovery layers
feed through the usual gated hooks, and that can be dumped as a JSON
post-mortem — written automatically on crash / breaker-open / recovery,
and readable with ``python -m repro blackbox <path>``.

Recording is gated on :data:`repro.obs.hooks.enabled` like every other
instrument, so the default-off discipline holds.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs import hooks

BLACKBOX_SCHEMA = "repro-blackbox/v1"
BLACKBOX_PREFIX = "blackbox-"
BLACKBOX_SUFFIX = ".json"

#: Event kinds the built-in instrumentation emits (free-form kinds are
#: fine too; this is the documented vocabulary).
EVENT_KINDS = (
    "wal.retry",
    "breaker.open",
    "breaker.half_open",
    "breaker.close",
    "flush.failed",
    "service.fatal",
    "service.checkpoint",
    "shed.reads",
    "fsck",
    "recovery",
)


class FlightRecorder:
    """Bounded ring of structured events plus recent root-span summaries."""

    def __init__(self, capacity: int = 256, span_capacity: int = 64):
        if capacity < 1 or span_capacity < 1:
            raise ValueError("capacities must be >= 1")
        self.capacity = capacity
        self.span_capacity = span_capacity
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._spans: deque[dict] = deque(maxlen=span_capacity)
        self.n_events = 0  # total ever recorded (ring may have dropped some)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, kind: str, **detail: object) -> None:
        """Record one event (no-op while the master switch is down)."""
        if hooks.enabled:
            self.observe(kind, **detail)

    def observe(self, kind: str, **detail: object) -> None:
        """Record one event unconditionally (cold paths, tests)."""
        event = {"ts": time.time(), "kind": str(kind), "detail": detail}
        with self._lock:
            self._events.append(event)
            self.n_events += 1

    def note_span(self, span) -> None:
        """Keep a flat summary of a finished root span (tracer listener)."""
        summary = {
            "ts": time.time(),
            "name": span.name,
            "duration_ms": span.duration * 1e3,
            "n_descendants": span.n_descendants,
            "attrs": dict(span.attrs),
        }
        with self._lock:
            self._spans.append(summary)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def events(self, kind: str | None = None) -> list[dict]:
        """Recorded events oldest-first (optionally filtered by kind)."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        return events

    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def last_event(self) -> dict | None:
        with self._lock:
            return self._events[-1] if self._events else None

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._spans.clear()
            self.n_events = 0

    # ------------------------------------------------------------------ #
    # post-mortem dumps
    # ------------------------------------------------------------------ #
    def post_mortem(self, reason: str, **context: object) -> dict:
        """The JSON-ready black-box snapshot (metrics included)."""
        from repro.obs.metrics import get_registry

        return {
            "schema": BLACKBOX_SCHEMA,
            "written_at": time.time(),
            "reason": reason,
            "context": context,
            "events": self.events(),
            "spans": self.spans(),
            "n_events_total": self.n_events,
            "metrics": get_registry().collect(),
        }

    def dump(self, path: str | Path, reason: str, **context: object) -> Path:
        """Write :meth:`post_mortem` to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.post_mortem(reason, **context),
                                   indent=2, sort_keys=True, default=str)
                        + "\n")
        return path


def blackbox_path(directory: str | Path, reason: str) -> Path:
    """Canonical dump location inside a service directory."""
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
    return Path(directory) / f"{BLACKBOX_PREFIX}{safe}{BLACKBOX_SUFFIX}"


def list_blackboxes(directory: str | Path) -> list[Path]:
    """Black-box dumps in ``directory``, newest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    dumps = [p for p in directory.iterdir()
             if p.name.startswith(BLACKBOX_PREFIX)
             and p.name.endswith(BLACKBOX_SUFFIX)]
    return sorted(dumps, key=lambda p: p.stat().st_mtime, reverse=True)


def load_blackbox(path: str | Path) -> dict:
    """Read one dump back; raises ``ValueError`` on a non-blackbox file."""
    record = json.loads(Path(path).read_text())
    if record.get("schema") != BLACKBOX_SCHEMA:
        raise ValueError(
            f"{path}: not a flight-recorder dump (schema "
            f"{record.get('schema')!r}, expected {BLACKBOX_SCHEMA!r})"
        )
    return record


#: Process-wide default recorder (the service hooks publish into it).
_RECORDER = FlightRecorder()


def get_recorder() -> FlightRecorder:
    """The process-wide default flight recorder."""
    return _RECORDER


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the default recorder (returns the previous one)."""
    global _RECORDER
    prior = _RECORDER
    _RECORDER = recorder
    return prior
