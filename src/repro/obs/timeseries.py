"""Time-series rings: "what did the last N seconds look like".

Counters and sketches summarise a whole run; the questions an operator
actually asks — is the queue growing, did ingest rate dip when the
breaker opened, what was fsync latency doing right before the crash —
need *trends*.  :class:`TimeSeriesRing` keeps a bounded window of
``(timestamp, value)`` samples per named series in preallocated NumPy
rings, and :class:`MetricsSampler` fills one from registered probe
callables on a daemon thread at a configurable interval.

Both are explicit opt-ins (nothing starts a sampler thread unless asked,
e.g. ``GraphService(sample_interval=1.0)`` or ``python -m repro top``),
so the default-off telemetry discipline holds: with no sampler running
this module costs nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

#: Default ring capacity — at the default 1 s sampling interval this is
#: "the last ~4 minutes", plenty for a dashboard or a post-mortem.
DEFAULT_CAPACITY = 256


class _Series:
    __slots__ = ("ts", "values", "idx", "n")

    def __init__(self, capacity: int):
        self.ts = np.zeros(capacity, dtype=np.float64)
        self.values = np.zeros(capacity, dtype=np.float64)
        self.idx = 0      # next write position
        self.n = 0        # live samples (<= capacity)


class TimeSeriesRing:
    """Lock-safe fixed-capacity ``(timestamp, value)`` rings by name."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._series: dict[str, _Series] = {}

    def ensure(self, name: str) -> None:
        """Create an empty series (recording creates one implicitly)."""
        with self._lock:
            if name not in self._series:
                self._series[name] = _Series(self.capacity)

    def record(self, name: str, value: float, ts: float | None = None) -> None:
        """Append one sample, overwriting the oldest once full."""
        ts = time.time() if ts is None else float(ts)
        with self._lock:
            s = self._series.get(name)
            if s is None:
                s = self._series[name] = _Series(self.capacity)
            s.ts[s.idx] = ts
            s.values[s.idx] = float(value)
            s.idx = (s.idx + 1) % self.capacity
            if s.n < self.capacity:
                s.n += 1

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps, values)`` in chronological order (copies)."""
        with self._lock:
            s = self._series.get(name)
            if s is None:
                empty = np.empty(0, dtype=np.float64)
                return empty, empty.copy()
            if s.n < self.capacity:
                return s.ts[:s.n].copy(), s.values[:s.n].copy()
            order = np.concatenate([np.arange(s.idx, self.capacity),
                                    np.arange(0, s.idx)])
            return s.ts[order], s.values[order]

    def latest(self, name: str) -> tuple[float, float] | None:
        """Most recent ``(timestamp, value)``, or ``None`` if empty."""
        with self._lock:
            s = self._series.get(name)
            if s is None or s.n == 0:
                return None
            last = (s.idx - 1) % self.capacity
            return float(s.ts[last]), float(s.values[last])

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-series ``{n, latest, min, max, mean}`` (health snapshots)."""
        out: dict[str, dict[str, float]] = {}
        for name in self.names():
            _, values = self.series(name)
            if values.size == 0:
                continue
            out[name] = {
                "n": int(values.size),
                "latest": float(values[-1]),
                "min": float(values.min()),
                "max": float(values.max()),
                "mean": float(values.mean()),
            }
        return out


class MetricsSampler:
    """Daemon thread sampling probe callables into a :class:`TimeSeriesRing`.

    Two probe shapes:

    * :meth:`add_gauge` — the callable returns the instantaneous value
      (queue depth, breaker state, a sketch's p99);
    * :meth:`add_rate` — the callable returns a *cumulative* count (total
      edges ingested); the sampler records its per-second derivative.

    Probe exceptions are swallowed per sample (a dashboard must never
    take the service down); a probe that raises simply contributes no
    sample that tick.
    """

    def __init__(self, ring: TimeSeriesRing | None = None,
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.ring = ring if ring is not None else TimeSeriesRing()
        self.interval = float(interval)
        self._gauges: dict[str, Callable[[], float]] = {}
        self._rates: dict[str, Callable[[], float]] = {}
        self._rate_prev: dict[str, tuple[float, float]] = {}  # name -> (ts, v)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.n_samples = 0

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self._gauges[name] = fn
        self.ring.ensure(name)

    def add_rate(self, name: str, fn: Callable[[], float]) -> None:
        self._rates[name] = fn
        self.ring.ensure(name)

    # ------------------------------------------------------------------ #
    def sample_once(self, now: float | None = None) -> None:
        """Take one sample of every probe (also what the thread loop runs)."""
        now = time.time() if now is None else float(now)
        for name, fn in self._gauges.items():
            try:
                self.ring.record(name, float(fn()), ts=now)
            except Exception:  # noqa: BLE001 - see class docstring
                continue
        for name, fn in self._rates.items():
            try:
                value = float(fn())
            except Exception:  # noqa: BLE001
                continue
            prev = self._rate_prev.get(name)
            self._rate_prev[name] = (now, value)
            if prev is None:
                continue
            dt = now - prev[0]
            if dt > 0:
                self.ring.record(name, (value - prev[1]) / dt, ts=now)
        self.n_samples += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self.sample_once()  # seed the rate baselines immediately
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-metrics-sampler",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2 * self.interval + 1.0)
            self._thread = None

    def __enter__(self) -> "MetricsSampler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
