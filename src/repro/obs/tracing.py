"""Structured tracing: nestable spans over the GraphTinker hot paths.

A *span* brackets one unit of work — an insert batch, a hybrid-engine
iteration, a full ``trace`` CLI run — and records wall time, an optional
:class:`~repro.core.stats.AccessStats` delta (how many block-granularity
memory events happened inside the span), and free-form attributes.  Spans
nest: entering a span inside another makes it a child, so a finished run
yields a trace *tree* whose per-leaf stats deltas sum to the enclosing
span's delta (and, transitively, to the store's totals).

The tracer is thread-safe in the way the partitioned stores need: the
active-span stack is thread-local (each thread builds its own subtree),
while the finished-root list and span bookkeeping are guarded by a lock.

Everything is gated on :data:`repro.obs.hooks.enabled`; with the switch
down :func:`span` yields a shared no-op span and records nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.stats import AccessStats
from repro.obs import hooks


@dataclass
class Span:
    """One recorded unit of work in the trace tree."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    stats_delta: AccessStats | None = None
    children: list["Span"] = field(default_factory=list)

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    @property
    def n_descendants(self) -> int:
        return len(self.children) + sum(c.n_descendants for c in self.children)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs in pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def merged_delta(self) -> AccessStats:
        """This span's stats delta, or the sum of its children's if the
        span itself was recorded without a stats object."""
        if self.stats_delta is not None:
            return self.stats_delta.snapshot()
        merged = AccessStats()
        for child in self.children:
            merged += child.merged_delta()
        return merged


class _NoopSpan:
    """Shared do-nothing stand-in yielded while tracing is disabled."""

    __slots__ = ()

    def set_attr(self, key: str, value: object) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects finished spans into per-thread trace trees.

    Parameters
    ----------
    sample_every:
        Record only every N-th *root* span (children of a recorded root
        are always recorded).  ``1`` records everything; larger values
        cheapen tracing on long runs while keeping the tree shape
        representative.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._root_seen = 0
        self._listeners: list = []

    def add_listener(self, fn) -> None:
        """Call ``fn(span)`` whenever a sampled root span finishes.

        Listeners run outside the tracer lock and must not raise; the
        flight recorder uses this to keep its recent-span ring without
        the hot paths knowing about it.
        """
        self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        self._listeners.remove(fn)

    # ------------------------------------------------------------------ #
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def reset(self) -> None:
        """Drop every recorded root span (open spans are unaffected)."""
        with self._lock:
            self.roots = []
            self._root_seen = 0

    # ------------------------------------------------------------------ #
    @contextmanager
    def span(
        self,
        name: str,
        stats: AccessStats | None = None,
        **attrs: object,
    ) -> Iterator[Span | _NoopSpan]:
        """Open a nested span; record it on exit.

        ``stats`` is the live counter object of the system under
        measurement; when given, the span stores the
        snapshot/delta bracket of the counters across its body.  The
        bracket never mutates ``stats`` itself, so tracing cannot change
        the numbers it observes.
        """
        if not hooks.enabled:
            yield _NOOP
            return
        suppressed = getattr(self._tls, "suppress", 0)
        if suppressed:
            # Inside an unsampled root: the whole subtree stays dark, and
            # its spans must not look like fresh roots to the sampler.
            self._tls.suppress = suppressed + 1
            try:
                yield _NOOP
            finally:
                self._tls.suppress -= 1
            return
        stack = self._stack()
        if not stack:
            with self._lock:
                sampled = self._root_seen % self.sample_every == 0
                self._root_seen += 1
            if not sampled:
                self._tls.suppress = 1
                try:
                    yield _NOOP
                finally:
                    self._tls.suppress = 0
                return
        node = Span(name=name, attrs=dict(attrs), start=time.perf_counter())
        before = stats.snapshot() if stats is not None else None
        stack.append(node)
        try:
            yield node
        finally:
            stack.pop()
            node.duration = time.perf_counter() - node.start
            if before is not None and stats is not None:
                node.stats_delta = stats.delta(before)
            if stack:
                stack[-1].children.append(node)
            else:
                with self._lock:
                    self.roots.append(node)
                for listener in self._listeners:
                    try:
                        listener(node)
                    except Exception:  # noqa: BLE001 - listeners are best-effort
                        pass

    # ------------------------------------------------------------------ #
    def find(self, name: str) -> list[Span]:
        """All recorded spans with ``name``, in pre-order across roots."""
        with self._lock:
            roots = list(self.roots)
        return [s for root in roots for _, s in root.walk() if s.name == name]


#: Process-wide default tracer, used by the hot-path integration points.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (returns the previous one)."""
    global _TRACER
    prior = _TRACER
    _TRACER = tracer
    return prior


def span(name: str, stats: AccessStats | None = None, **attrs: object):
    """``get_tracer().span(...)`` — the one-liner hot paths import."""
    return _TRACER.span(name, stats=stats, **attrs)
