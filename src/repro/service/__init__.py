"""Durable graph service: WAL, checkpoints, crash recovery, frontend.

This subsystem wraps the in-process stores with the machinery a
long-running deployment needs (docs/service.md):

* :mod:`repro.service.wal` — append-only, CRC-guarded write-ahead log.
* :mod:`repro.service.checkpoint` — versioned snapshots bound to WAL
  cursors, with pruning.
* :mod:`repro.service.recovery` — checkpoint restore + idempotent WAL
  tail replay.
* :mod:`repro.service.service` — :class:`GraphService`, the
  multi-threaded batching ingest/query frontend.
* :mod:`repro.service.faults` — fault injection: byte-exact writer
  kills, scheduled transient WAL I/O errors, and in-memory store
  corruption for fsck testing.
* :mod:`repro.service.tail` — :class:`WalTailer`, cursor-based
  tail-follow reads of a live WAL (the substrate replication streams
  ride on).

Nothing in the core data-structure or benchmark paths imports this
package; using the library without the service costs nothing.
"""

from repro.service.checkpoint import (
    CheckpointInfo,
    CheckpointManager,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
)
from repro.service.faults import (
    CorruptionError,
    CrashableFile,
    FaultInjector,
    FaultyWriteAheadLog,
    FlakyWriteAheadLog,
    InjectedCorruption,
    InjectedWalFault,
    SimulatedCrash,
    StoreCorruptor,
    TransientFaultInjector,
)
from repro.service.recovery import RecoveryResult, recover
from repro.service.service import GraphService, Ticket
from repro.service.tail import DEFAULT_POLL_RECORDS, WalTailer, segment_first_seq
from repro.service.wal import (
    OP_DELETE,
    OP_INSERT,
    WalRecord,
    WriteAheadLog,
    iter_records,
    list_segments,
    prune_segments,
    scan_segment,
    truncate_torn_tail,
)

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "CorruptionError",
    "CrashableFile",
    "DEFAULT_POLL_RECORDS",
    "FaultInjector",
    "FaultyWriteAheadLog",
    "FlakyWriteAheadLog",
    "GraphService",
    "InjectedCorruption",
    "InjectedWalFault",
    "OP_DELETE",
    "OP_INSERT",
    "RecoveryResult",
    "SimulatedCrash",
    "StoreCorruptor",
    "Ticket",
    "TransientFaultInjector",
    "WalRecord",
    "WalTailer",
    "WriteAheadLog",
    "iter_records",
    "latest_checkpoint",
    "list_checkpoints",
    "list_segments",
    "load_checkpoint",
    "prune_segments",
    "recover",
    "scan_segment",
    "segment_first_seq",
    "truncate_torn_tail",
]
