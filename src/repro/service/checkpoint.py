"""Checkpoint manager: versioned store snapshots tied to WAL positions.

A checkpoint is a v2 snapshot (:mod:`repro.workloads.persistence`) whose
``meta`` header records the durability cursor: the last WAL sequence the
snapshotted store had applied (``last_seq``) and the cumulative input
rows consumed through it (``cum_edges``, for deterministic stream
resume).  Files are named ``checkpoint-<last_seq 20 digits>.npz`` and
written atomically (temp file + ``os.replace``), so a crash mid-write
can never shadow a good checkpoint with a torn one.

Taking a checkpoint makes every WAL record with ``seq <= last_seq``
redundant, so :meth:`CheckpointManager.write` prunes obsolete WAL
segments and older checkpoints (keeping a configurable number of
fallbacks — recovery skips unreadable checkpoints newest-first).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServiceError, WorkloadError
from repro.service import wal as wal_mod
from repro.workloads.persistence import Snapshot, read_snapshot, save_snapshot

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".npz"


@dataclass
class CheckpointInfo:
    """A loaded checkpoint: the snapshot plus its WAL cursor."""

    path: Path
    snapshot: Snapshot
    last_seq: int
    cum_edges: int


def checkpoint_path(directory: Path, last_seq: int) -> Path:
    return directory / f"{CHECKPOINT_PREFIX}{last_seq:020d}{CHECKPOINT_SUFFIX}"


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Checkpoint files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for p in directory.iterdir():
        name = p.name
        if name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX):
            stem = name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)]
            if stem.isdigit():
                out.append((int(stem), p))
    return [p for _, p in sorted(out)]


def load_checkpoint(path: str | Path) -> CheckpointInfo:
    """Read one checkpoint file; raises :class:`ServiceError` if invalid."""
    path = Path(path)
    try:
        snap = read_snapshot(path)
    except (WorkloadError, OSError, ValueError, KeyError) as exc:
        raise ServiceError(f"{path}: unreadable checkpoint ({exc})") from exc
    meta = snap.meta or {}
    if "last_seq" not in meta:
        raise ServiceError(
            f"{path}: snapshot has no WAL cursor (last_seq) — it is a plain "
            f"snapshot, not a service checkpoint"
        )
    return CheckpointInfo(path=path, snapshot=snap,
                          last_seq=int(meta["last_seq"]),
                          cum_edges=int(meta.get("cum_edges", 0)))


def latest_checkpoint(directory: str | Path) -> CheckpointInfo | None:
    """Newest checkpoint that loads cleanly (``None`` when there is none).

    Unreadable newer checkpoints are skipped, not fatal: the older
    fallback plus the (un-pruned) WAL tail reaches the same state.
    """
    for path in reversed(list_checkpoints(directory)):
        try:
            return load_checkpoint(path)
        except ServiceError:
            continue
    return None


class CheckpointManager:
    """Writes checkpoints for a service directory and prunes behind them."""

    def __init__(self, directory: str | Path, *, keep: int = 2):
        if keep < 1:
            raise ServiceError("checkpoint keep count must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def write(self, store, last_seq: int, cum_edges: int,
              meta: dict | None = None) -> Path:
        """Checkpoint ``store`` as-of WAL ``last_seq``; prune behind it.

        The caller guarantees the store has applied exactly the WAL
        records up to ``last_seq`` (the service holds its store lock
        across the snapshot).
        """
        full_meta = dict(meta or ())
        full_meta["last_seq"] = int(last_seq)
        full_meta["cum_edges"] = int(cum_edges)
        final = checkpoint_path(self.directory, last_seq)
        tmp = final.with_suffix(".tmp.npz")
        save_snapshot(store, tmp, meta=full_meta)
        os.replace(tmp, final)
        self._prune(last_seq, full_meta if "shard_seqs" in full_meta else None)
        return final

    def _prune(self, last_seq: int, sharded_meta: dict | None = None) -> None:
        checkpoints = list_checkpoints(self.directory)
        if len(checkpoints) > self.keep:
            for path in checkpoints[:-self.keep]:
                path.unlink()
            checkpoints = checkpoints[-self.keep:]
        # WAL segments may only be dropped up to the *oldest surviving*
        # checkpoint: recovery falls back to it if a newer one turns out
        # unreadable, and needs the tail from there onward.
        if sharded_meta is not None:
            self._prune_sharded(sharded_meta, checkpoints[0])
            return
        oldest = checkpoints[0].name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)]
        wal_mod.prune_segments(self.directory, min(last_seq, int(oldest)))

    def _prune_sharded(self, meta: dict, oldest_path: Path) -> None:
        """Prune each shard's chain against the oldest survivor's cursors.

        Each shard has its own sequence space, so the prune bound is per
        shard: ``min(cursor now, cursor in the oldest surviving
        checkpoint)``.  An oldest survivor without shard cursors (the
        plain checkpoint of a directory that flipped to sharded) pins
        every shard bound at 0 — nothing sharded can be dropped until it
        ages out.  Plain-prefix history is never pruned past its final
        segment, keeping the base cursor recoverable from disk.
        """
        try:
            oldest_meta = load_checkpoint(oldest_path).snapshot.meta or {}
        except ServiceError:
            return
        oldest_seqs = oldest_meta.get("shard_seqs")
        now_seqs = meta["shard_seqs"]
        if oldest_seqs is None or len(oldest_seqs) != len(now_seqs):
            oldest_seqs = [0] * len(now_seqs)
        for k, (now, old) in enumerate(zip(now_seqs, oldest_seqs)):
            wal_mod.prune_segments(self.directory, min(int(now), int(old)),
                                   prefix=wal_mod.shard_prefix(k))
        base = int(min(meta.get("base_seq", 0),
                       oldest_meta.get("base_seq", meta.get("base_seq", 0))))
        wal_mod.prune_segments(self.directory, base)
