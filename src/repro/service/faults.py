"""Fault injection: crashes, transient I/O errors, and store corruption.

Three fault families drive the robustness machinery:

* **Crash at a byte** (:class:`FaultInjector` / :class:`CrashableFile` /
  :class:`FaultyWriteAheadLog`) — simulate ``kill -9`` mid-``write(2)``
  at an exact global WAL byte offset, leaving a torn record on disk.
  Exercises recovery (PR 2).
* **Transient WAL I/O errors** (:class:`TransientFaultInjector` /
  :class:`FlakyWriteAheadLog` / :class:`InjectedWalFault`) — scheduled
  ``OSError``-family failures on append/sync, the kind a real disk or
  filesystem produces under pressure and then stops producing.
  Exercises the service's retry/backoff and circuit breaker.
* **Store corruption** (:class:`StoreCorruptor`) — in-memory damage to a
  live GraphTinker: bit flips in edgeblock cells, drifted degree
  counters, zapped CAL slots, truncated overflow pools.  Exercises the
  fsck (:mod:`repro.core.verify`) and its self-healing repair.

The crash injector counts bytes across segment rotations, so an offset
can land inside any segment, inside a record header, inside a payload,
or even inside the 8-byte segment magic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.service.wal import WriteAheadLog


class SimulatedCrash(ReproError):
    """The injected kill point was reached; the writer 'process' died."""


class FaultInjector:
    """Shared byte budget across every file the faulty WAL opens."""

    def __init__(self, crash_at_bytes: int):
        if crash_at_bytes < 0:
            raise ValueError("crash offset must be non-negative")
        self.crash_at_bytes = crash_at_bytes
        self.written = 0
        self.fired = False

    def wrap(self, file) -> "CrashableFile":
        return CrashableFile(file, self)


class CrashableFile:
    """File proxy that truncates the fatal write and raises."""

    def __init__(self, file, injector: FaultInjector):
        self._file = file
        self._injector = injector

    def write(self, data: bytes) -> int:
        inj = self._injector
        room = inj.crash_at_bytes - inj.written
        if len(data) <= room:
            inj.written += len(data)
            return self._file.write(data)
        # The kill lands mid-write: only the prefix reaches the OS.
        if room > 0:
            self._file.write(data[:room])
            inj.written = inj.crash_at_bytes
        self._file.flush()
        inj.fired = True
        raise SimulatedCrash(
            f"simulated kill at WAL byte offset {inj.crash_at_bytes} "
            f"(write of {len(data)} bytes torn after {max(room, 0)})"
        )

    def __getattr__(self, name):
        return getattr(self._file, name)


class FaultyWriteAheadLog(WriteAheadLog):
    """A :class:`WriteAheadLog` whose segment files die on schedule."""

    def __init__(self, *args, injector: FaultInjector, **kwargs):
        self.injector = injector
        super().__init__(*args, **kwargs)

    def _open_segment(self) -> None:
        super()._open_segment()
        self._file = self.injector.wrap(self._file)


# --------------------------------------------------------------------- #
# transient WAL I/O faults (retry / circuit-breaker fodder)
# --------------------------------------------------------------------- #
class InjectedWalFault(OSError):
    """A scheduled transient WAL I/O failure.

    Subclasses :class:`OSError` on purpose: the service's retry and
    circuit-breaker logic classifies *real* disk errors by that type, so
    the injected kind must travel the same pipes.
    """


class TransientFaultInjector:
    """Deterministic schedule of transient WAL append failures.

    Parameters
    ----------
    fail_every:
        Records whose sequence number is a multiple of this fail (0
        disables injection entirely).
    fail_times:
        Consecutive attempts that fail per faulty sequence before the
        operation succeeds — models a glitch that clears after retries.
    hard:
        Every attempt on a faulty sequence fails, forever — models a
        dead disk; drives the circuit breaker open.
    total:
        Overall cap on injected failures (``None`` = unlimited).
    """

    def __init__(self, fail_every: int = 1, fail_times: int = 1, *,
                 hard: bool = False, total: int | None = None):
        if fail_every < 0:
            raise ValueError("fail_every must be non-negative")
        if fail_times < 1:
            raise ValueError("fail_times must be at least 1")
        self.fail_every = fail_every
        self.fail_times = fail_times
        self.hard = hard
        self.total = total
        self.injected = 0
        self._attempts: dict[int, int] = {}

    def should_fail(self, seq: int) -> bool:
        """Consume one attempt on ``seq``; True if it must fail."""
        if self.fail_every <= 0 or seq % self.fail_every:
            return False
        if self.total is not None and self.injected >= self.total:
            return False
        attempts = self._attempts.get(seq, 0)
        self._attempts[seq] = attempts + 1
        if self.hard or attempts < self.fail_times:
            self.injected += 1
            return True
        return False


class FlakyWriteAheadLog(WriteAheadLog):
    """A :class:`WriteAheadLog` whose appends fail transiently on schedule.

    A scheduled failure lands *half* the record's bytes before raising
    :class:`InjectedWalFault`, so the base class's append rollback
    (truncate back to the record boundary) is genuinely exercised — a
    retry must find a record-aligned log.
    """

    def __init__(self, *args, injector: TransientFaultInjector, **kwargs):
        self.injector = injector
        super().__init__(*args, **kwargs)

    def _write_blob(self, blob: bytes) -> None:
        if self.injector.should_fail(self.next_seq):
            self._file.write(blob[: max(1, len(blob) // 2)])
            self._file.flush()
            raise InjectedWalFault(
                f"injected transient WAL failure at seq {self.next_seq}")
        super()._write_blob(blob)


# --------------------------------------------------------------------- #
# store-level corruption (fsck fodder)
# --------------------------------------------------------------------- #
class CorruptionError(ReproError):
    """A requested corruption kind has no viable target in this store."""


class InjectedCorruption:
    """Record of one applied corruption (kind + human-readable detail)."""

    __slots__ = ("kind", "detail")

    def __init__(self, kind: str, detail: str):
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        return f"InjectedCorruption({self.kind}: {self.detail})"


class StoreCorruptor:
    """Deterministic in-memory damage to a live GraphTinker store.

    Each kind models a distinct hardware/logic failure the fsck must
    catch:

    * ``bitflip`` — flip one low bit of a live edge-cell's destination
      (a DRAM bit flip; breaks hash placement and/or the CAL copy).
    * ``degree`` / ``vpa-degree`` — drift a per-vertex degree counter
      (a lost update).
    * ``cal-src`` / ``cal-dst`` — damage a live CAL slot's source or
      destination field (the copy no longer matches its owner).
    * ``truncate`` — return a live overflow edgeblock to the free-list
      while its parent still points at it (a truncated pool; the
      subtree's edges vanish).
    * ``sgh`` — break one reverse-mapping entry of the SGH renaming
      table.

    Kinds whose structures are disabled (or empty) in the target store
    raise :class:`CorruptionError` so tests fail loudly instead of
    silently testing nothing.
    """

    KINDS = ("bitflip", "degree", "vpa-degree", "cal-src", "cal-dst",
             "truncate", "sgh")

    def __init__(self, gt, seed: int = 0):
        self.gt = gt
        self.rng = np.random.default_rng(seed)

    # -- target discovery ---------------------------------------------- #
    def _live_cells(self) -> list[tuple[int, int, int, int]]:
        """All live edge-cells as ``(src, region, block, slot)``."""
        from repro.core.edgeblock_array import MAIN, OVERFLOW

        eba = self.gt.eba
        freed = set(eba.overflow._free)
        out: list[tuple[int, int, int, int]] = []
        for src in range(eba.n_vertices):
            stack = [(MAIN, src)]
            seen: set[tuple[int, int]] = set()
            while stack:
                region, block = stack.pop()
                if (region, block) in seen:
                    continue
                seen.add((region, block))
                row = eba._pool(region).row(block)
                for slot in np.flatnonzero(row["dst"] >= 0).tolist():
                    out.append((src, region, block, slot))
                children = eba._children(region).row(block)
                for child in children[children >= 0].tolist():
                    if int(child) not in freed:
                        stack.append((OVERFLOW, int(child)))
        return out

    def _live_cal_slots(self) -> list[tuple[int, int]]:
        from repro.core.cal import CAL_INVALID

        cal = self.gt.cal
        freed = set(cal.pool._free)
        out: list[tuple[int, int]] = []
        for block in range(cal.pool.high_water):
            if block in freed:
                continue
            row = cal.pool.row(block)
            for slot in np.flatnonzero(row["src"] != CAL_INVALID).tolist():
                out.append((block, slot))
        return out

    def _pick(self, candidates: list, what: str):
        if not candidates:
            raise CorruptionError(f"no viable target for {what}")
        return candidates[int(self.rng.integers(len(candidates)))]

    # -- corruption kinds ---------------------------------------------- #
    def corrupt(self, kind: str) -> InjectedCorruption:
        gt = self.gt
        if kind == "bitflip":
            src, region, block, slot = self._pick(self._live_cells(),
                                                  "bitflip")
            row = gt.eba._pool(region).row(block)
            old = int(row["dst"][slot])
            new = old ^ (1 << int(self.rng.integers(0, 8)))
            row["dst"][slot] = new
            return InjectedCorruption(kind, (
                f"flipped dst of cell r{region}b{block}s{slot} "
                f"(vertex {src}): {old} -> {new}"))
        if kind == "degree":
            v = self._pick([v for v in range(gt.eba.n_vertices)
                            if gt.eba.degree(v) > 0], "degree")
            delta = int(self.rng.integers(1, 4))
            gt.eba._degrees[v] += delta
            return InjectedCorruption(kind, (
                f"drifted EBA degree of vertex {v} by +{delta}"))
        if kind == "vpa-degree":
            v = self._pick([v for v in range(gt.eba.n_vertices)
                            if gt.eba.degree(v) > 0], "vpa-degree")
            delta = int(self.rng.integers(1, 4))
            gt.vpa.ensure(v)
            gt.vpa._degree[v] += delta
            return InjectedCorruption(kind, (
                f"drifted VPA degree of vertex {v} by +{delta}"))
        if kind in ("cal-src", "cal-dst"):
            if gt.cal is None:
                raise CorruptionError("store has no CAL to corrupt")
            block, slot = self._pick(self._live_cal_slots(), kind)
            row = gt.cal.pool.row(block)
            field = "src" if kind == "cal-src" else "dst"
            old = int(row[field][slot])
            new = old + 1 if kind == "cal-src" else old ^ 1
            row[field][slot] = new
            return InjectedCorruption(kind, (
                f"damaged CAL slot ({block}, {slot}) {field}: "
                f"{old} -> {new}"))
        if kind == "truncate":
            blocks = list(gt.eba.overflow.iter_used())
            block = self._pick(blocks, "truncate (no overflow blocks)")
            gt.eba.overflow.free(block)
            return InjectedCorruption(kind, (
                f"returned live overflow block {block} to the free-list "
                f"(parent pointer left dangling)"))
        if kind == "sgh":
            if gt.sgh is None:
                raise CorruptionError("store has no SGH to corrupt")
            if not len(gt.sgh):
                raise CorruptionError("SGH is empty")
            dense = int(self.rng.integers(len(gt.sgh)))
            old = int(gt.sgh._reverse[dense])
            gt.sgh._reverse[dense] = old + 1
            return InjectedCorruption(kind, (
                f"broke SGH reverse[{dense}]: {old} -> {old + 1}"))
        raise ValueError(f"unknown corruption kind {kind!r} "
                         f"(choose from {self.KINDS})")

    def corrupt_random(self, n: int = 1,
                       kinds: tuple[str, ...] | None = None,
                       ) -> list[InjectedCorruption]:
        """Apply ``n`` random corruptions, skipping non-viable kinds."""
        pool = list(kinds if kinds is not None else self.KINDS)
        applied: list[InjectedCorruption] = []
        attempts = 0
        while len(applied) < n and attempts < n * 10:
            attempts += 1
            kind = pool[int(self.rng.integers(len(pool)))]
            try:
                applied.append(self.corrupt(kind))
            except CorruptionError:
                continue
        return applied
