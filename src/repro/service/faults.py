"""Fault injection: kill the WAL writer at an exact byte offset.

The recovery guarantees only matter if they hold at *every* byte the
writer can die on.  This module lets the test suite (and ``python -m
repro serve --kill-at``) pick a global WAL byte offset and simulate a
process kill exactly there: the write that crosses the offset lands only
partially (bytes up to the offset reach the OS), then
:class:`SimulatedCrash` propagates — leaving a torn record on disk, just
as ``kill -9`` mid-``write(2)`` would.

The injector counts bytes across segment rotations, so an offset can
land inside any segment, inside a record header, inside a payload, or
even inside the 8-byte segment magic.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.service.wal import WriteAheadLog


class SimulatedCrash(ReproError):
    """The injected kill point was reached; the writer 'process' died."""


class FaultInjector:
    """Shared byte budget across every file the faulty WAL opens."""

    def __init__(self, crash_at_bytes: int):
        if crash_at_bytes < 0:
            raise ValueError("crash offset must be non-negative")
        self.crash_at_bytes = crash_at_bytes
        self.written = 0
        self.fired = False

    def wrap(self, file) -> "CrashableFile":
        return CrashableFile(file, self)


class CrashableFile:
    """File proxy that truncates the fatal write and raises."""

    def __init__(self, file, injector: FaultInjector):
        self._file = file
        self._injector = injector

    def write(self, data: bytes) -> int:
        inj = self._injector
        room = inj.crash_at_bytes - inj.written
        if len(data) <= room:
            inj.written += len(data)
            return self._file.write(data)
        # The kill lands mid-write: only the prefix reaches the OS.
        if room > 0:
            self._file.write(data[:room])
            inj.written = inj.crash_at_bytes
        self._file.flush()
        inj.fired = True
        raise SimulatedCrash(
            f"simulated kill at WAL byte offset {inj.crash_at_bytes} "
            f"(write of {len(data)} bytes torn after {max(room, 0)})"
        )

    def __getattr__(self, name):
        return getattr(self._file, name)


class FaultyWriteAheadLog(WriteAheadLog):
    """A :class:`WriteAheadLog` whose segment files die on schedule."""

    def __init__(self, *args, injector: FaultInjector, **kwargs):
        self.injector = injector
        super().__init__(*args, **kwargs)

    def _open_segment(self) -> None:
        super()._open_segment()
        self._file = self.injector.wrap(self._file)
