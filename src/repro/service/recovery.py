"""Crash recovery: latest checkpoint + idempotent WAL tail replay.

The protocol (docs/service.md has the full diagram):

1. Physically truncate a torn final WAL record (so the on-disk log is
   clean and a *second* recovery sees exactly the same bytes — recovery
   is idempotent).
2. Restore the newest checkpoint that loads cleanly, rebuilding the
   store under the writer's embedded :class:`~repro.core.config.GTConfig`
   (or a caller-supplied one).  No checkpoint at all is fine: recovery
   starts from an empty store at sequence 0.
3. Replay the WAL in sequence order, **skipping** every record with
   ``seq <= checkpoint.last_seq`` (already inside the snapshot) and
   applying the rest through the normal batch paths.  A gap between the
   checkpoint's cursor and the first surviving WAL record — or between
   two WAL records — raises :class:`~repro.errors.ServiceError`; the
   missing updates cannot be reconstructed.

Everything is observable through ``service.recovery.*`` metrics
(replayed/skipped record and edge counts, the checkpoint sequence, torn
truncations) and a ``service.recovery`` span when :mod:`repro.obs` is
enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro.obs as obs
from repro.core.store import store_from_config
from repro.errors import ServiceError
from repro.obs import hooks as obs_hooks
from repro.service import wal as wal_mod
from repro.service.checkpoint import latest_checkpoint


@dataclass
class RecoveryResult:
    """What recovery rebuilt and how it got there."""

    store: object          # any repro.core.store.Store backend
    last_seq: int            # sequence the store now reflects
    cum_edges: int           # input rows consumed through last_seq
    checkpoint_seq: int      # 0 when no checkpoint was used
    checkpoint_path: Path | None
    replayed_records: int = 0
    replayed_edges: int = 0
    skipped_records: int = 0
    torn_offset: int | None = None
    replayed_seqs: list[int] = field(default_factory=list)
    #: Post-recovery fsck outcome (a ``repro.core.verify.VerifyReport``),
    #: or ``None`` when verification was disabled.  Never raises: a CRC
    #: check can only vouch for the *bytes* of a checkpoint, so recovery
    #: audits the rebuilt structure and lets the caller decide whether a
    #: violated store may serve.
    fsck: object | None = None
    #: Flight-recorder style post-mortem summary of this recovery (always
    #: populated — the facts are free).  With observability enabled the
    #: same summary is also dumped as ``blackbox-recovery.json`` in the
    #: service directory for ``python -m repro blackbox``.
    blackbox: dict | None = None


def _publish(result: RecoveryResult) -> None:
    if not obs_hooks.enabled:
        return
    registry = obs.get_registry()
    registry.counter("service.recovery.runs").inc()
    registry.counter("service.recovery.replayed_records").inc(
        result.replayed_records)
    registry.counter("service.recovery.replayed_edges").inc(
        result.replayed_edges)
    registry.counter("service.recovery.skipped_records").inc(
        result.skipped_records)
    registry.gauge("service.recovery.checkpoint_seq").set(result.checkpoint_seq)
    registry.gauge("service.recovery.last_seq").set(result.last_seq)
    if result.torn_offset is not None:
        registry.counter("service.recovery.torn_truncated").inc()
    if result.fsck is not None:
        registry.gauge("service.recovery.fsck_violations").set(
            len(result.fsck.violations))


def recover(directory: str | Path, config=None,
            verify: str | None = "quick") -> RecoveryResult:
    """Rebuild the service store from ``directory``.

    ``config`` overrides the checkpoint's embedded writer config (useful
    to recover a delete-only log into a compacting store, or onto a
    different backend entirely); with neither, paper defaults apply.
    The backend is chosen from the config via
    :func:`repro.core.store.store_from_config`, so a checkpoint written
    by a STINGER or tiered store recovers into the same backend.

    ``verify`` selects the bounded post-recovery fsck level (``"quick"``
    by default — the vectorised degree/duplicate/count invariants;
    ``"full"`` for the per-cell audit; ``None`` to skip).  The result
    lands in :attr:`RecoveryResult.fsck`; a violated store is *returned*,
    not raised — the caller (service, CLI) owns the serve/refuse call.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ServiceError(f"{directory}: no such service directory")
    with obs.span("service.recovery", directory=str(directory)) as span:
        torn_offset = wal_mod.truncate_torn_tail(directory)

        checkpoint = latest_checkpoint(directory)
        if checkpoint is not None:
            if config is None:
                config = checkpoint.snapshot.writer_config
            store = store_from_config(config)
            store.insert_batch(checkpoint.snapshot.edges,
                               checkpoint.snapshot.weights)
            last_seq = checkpoint.last_seq
            cum_edges = checkpoint.cum_edges
        else:
            store = store_from_config(config)
            last_seq = 0
            cum_edges = 0

        result = RecoveryResult(
            store=store, last_seq=last_seq, cum_edges=cum_edges,
            checkpoint_seq=last_seq,
            checkpoint_path=checkpoint.path if checkpoint else None,
            torn_offset=torn_offset,
        )
        for record in wal_mod.iter_records(directory):
            if record.seq <= result.checkpoint_seq:
                result.skipped_records += 1
                continue
            if record.seq != result.last_seq + 1:
                raise ServiceError(
                    f"{directory}: WAL sequence gap — store is at "
                    f"{result.last_seq} but the next surviving record is "
                    f"{record.seq}; updates in between are lost"
                )
            if record.op == wal_mod.OP_INSERT:
                store.insert_batch(record.edges, record.weights)
            else:
                store.delete_batch(record.edges)
            result.last_seq = record.seq
            result.cum_edges = record.cum_edges
            result.replayed_records += 1
            result.replayed_edges += record.n_edges
            result.replayed_seqs.append(record.seq)
        if verify is not None:
            result.fsck = store.fsck(level=verify)
            span.set_attr("fsck_violations", len(result.fsck.violations))
        span.set_attr("replayed_records", result.replayed_records)
        span.set_attr("checkpoint_seq", result.checkpoint_seq)
    result.blackbox = {
        "reason": "recovery",
        "directory": str(directory),
        "checkpoint_seq": result.checkpoint_seq,
        "checkpoint_path": (str(result.checkpoint_path)
                            if result.checkpoint_path else None),
        "last_seq": result.last_seq,
        "cum_edges": result.cum_edges,
        "replayed_records": result.replayed_records,
        "replayed_edges": result.replayed_edges,
        "skipped_records": result.skipped_records,
        "torn_truncated": result.torn_offset is not None,
        "fsck_violations": (len(result.fsck.violations)
                            if result.fsck is not None else None),
    }
    _publish(result)
    if obs_hooks.enabled:
        from repro.obs.recorder import blackbox_path, get_recorder

        recorder = get_recorder()
        recorder.record("recovery", **result.blackbox)
        context = {k: v for k, v in result.blackbox.items() if k != "reason"}
        try:
            recorder.dump(blackbox_path(directory, "recovery"), "recovery",
                          **context)
        except Exception:  # noqa: BLE001 - post-mortem is best-effort
            pass
    return result
