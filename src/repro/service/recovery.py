"""Crash recovery: latest checkpoint + idempotent WAL tail replay.

The protocol (docs/service.md has the full diagram):

1. Physically truncate a torn final WAL record (so the on-disk log is
   clean and a *second* recovery sees exactly the same bytes — recovery
   is idempotent).
2. Restore the newest checkpoint that loads cleanly, rebuilding the
   store under the writer's embedded :class:`~repro.core.config.GTConfig`
   (or a caller-supplied one).  No checkpoint at all is fine: recovery
   starts from an empty store at sequence 0.
3. Replay the WAL in sequence order, **skipping** every record with
   ``seq <= checkpoint.last_seq`` (already inside the snapshot) and
   applying the rest through the normal batch paths.  A gap between the
   checkpoint's cursor and the first surviving WAL record — or between
   two WAL records — raises :class:`~repro.errors.ServiceError`; the
   missing updates cannot be reconstructed.

A sharded directory (``wal-shard<k>-*.seg`` chains and/or per-shard
cursors in the checkpoint meta) takes the sharded path instead: each
shard's chain is scanned independently against its own skip cursor, and
the pending records are applied in rounds whose rows scatter to the
shard workers concurrently — per-shard replay is independent and
parallel (docs/sharding.md).

Everything is observable through ``service.recovery.*`` metrics
(replayed/skipped record and edge counts, the checkpoint sequence, torn
truncations) and a ``service.recovery`` span when :mod:`repro.obs` is
enabled.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.config import ShardedConfig
from repro.core.store import store_from_config
from repro.errors import ServiceError
from repro.obs import hooks as obs_hooks
from repro.service import wal as wal_mod
from repro.service.checkpoint import latest_checkpoint


@dataclass
class RecoveryResult:
    """What recovery rebuilt and how it got there."""

    store: object          # any repro.core.store.Store backend
    last_seq: int            # sequence the store now reflects
    cum_edges: int           # input rows consumed through last_seq
    checkpoint_seq: int      # 0 when no checkpoint was used
    checkpoint_path: Path | None
    replayed_records: int = 0
    replayed_edges: int = 0
    skipped_records: int = 0
    torn_offset: int | None = None
    replayed_seqs: list[int] = field(default_factory=list)
    #: Shard count of a sharded recovery (0 for a plain directory).
    n_shards: int = 0
    #: Post-recovery fsck outcome (a ``repro.core.verify.VerifyReport``),
    #: or ``None`` when verification was disabled.  Never raises: a CRC
    #: check can only vouch for the *bytes* of a checkpoint, so recovery
    #: audits the rebuilt structure and lets the caller decide whether a
    #: violated store may serve.
    fsck: object | None = None
    #: Flight-recorder style post-mortem summary of this recovery (always
    #: populated — the facts are free).  With observability enabled the
    #: same summary is also dumped as ``blackbox-recovery.json`` in the
    #: service directory for ``python -m repro blackbox``.
    blackbox: dict | None = None


def _publish(result: RecoveryResult) -> None:
    if not obs_hooks.enabled:
        return
    registry = obs.get_registry()
    registry.counter("service.recovery.runs").inc()
    registry.counter("service.recovery.replayed_records").inc(
        result.replayed_records)
    registry.counter("service.recovery.replayed_edges").inc(
        result.replayed_edges)
    registry.counter("service.recovery.skipped_records").inc(
        result.skipped_records)
    registry.gauge("service.recovery.checkpoint_seq").set(result.checkpoint_seq)
    registry.gauge("service.recovery.last_seq").set(result.last_seq)
    if result.torn_offset is not None:
        registry.counter("service.recovery.torn_truncated").inc()
    if result.fsck is not None:
        registry.gauge("service.recovery.fsck_violations").set(
            len(result.fsck.violations))


_SHARD_SEGMENT_RE = re.compile(
    rf"^{wal_mod.SEGMENT_PREFIX}shard(\d+)-\d+{re.escape(wal_mod.SEGMENT_SUFFIX)}$"
)


def _detect_shard_count(directory: Path) -> int:
    """Highest shard index + 1 among on-disk per-shard segments (0 if none).

    A shard whose log never rotated past zero appends leaves no file, so
    the disk count is a lower bound — the checkpoint meta / config count
    takes precedence when larger.
    """
    n = 0
    for p in directory.iterdir():
        m = _SHARD_SEGMENT_RE.match(p.name)
        if m:
            n = max(n, int(m.group(1)) + 1)
    return n


def _shard_count(directory: Path, config, checkpoint) -> int:
    """Shard count to recover with (0 = plain, unsharded directory)."""
    meta = (checkpoint.snapshot.meta or {}) if checkpoint else {}
    n = 0
    if "shard_seqs" in meta:
        n = int(meta.get("n_shards", len(meta["shard_seqs"])))
    if isinstance(config, ShardedConfig):
        n = max(n, config.n_shards)
    return max(n, _detect_shard_count(directory))


def _replay_sharded(directory: Path, store, checkpoint,
                    result: RecoveryResult, n_shards: int) -> None:
    """Replay the per-shard WAL chains (plus any plain-prefix history).

    Each shard's chain is scanned independently (own contiguous sequence
    space, own skip cursor from the checkpoint meta, own torn-tail
    truncation), then the pending records are applied in *rounds*: round
    ``r`` takes every shard's ``r``-th pending record and scatters the
    same-op rows through one store batch.  Interval partitioning makes
    the chains' key spaces disjoint, so records from different chains
    commute — within a round the shard workers apply their rows
    concurrently, which is what makes sharded replay parallel rather
    than a serialized merge.
    """
    meta = (checkpoint.snapshot.meta or {}) if checkpoint else {}
    if checkpoint is None:
        base_cursor, base_cum = 0, 0
        shard_cursors = [0] * n_shards
        shard_cum = [0] * n_shards
    elif "shard_seqs" in meta:
        if len(meta["shard_seqs"]) != n_shards:
            raise ServiceError(
                f"{directory}: checkpoint was taken with "
                f"{len(meta['shard_seqs'])} shards but recovery sees "
                f"{n_shards} — resharding an existing directory is not "
                f"supported (reload the data instead)"
            )
        base_cursor = int(meta.get("base_seq", 0))
        base_cum = int(meta.get("base_cum", 0))
        shard_cursors = [int(s) for s in meta["shard_seqs"]]
        shard_cum = [int(c) for c in meta.get("shard_cum", [0] * n_shards)]
    else:
        # A plain checkpoint in a directory that later went sharded: the
        # snapshot covers exactly the plain-prefix records.
        base_cursor, base_cum = checkpoint.last_seq, checkpoint.cum_edges
        shard_cursors = [0] * n_shards
        shard_cum = [0] * n_shards

    # Plain-prefix history first: it predates every sharded record (a
    # directory flips to sharded at most once, and nothing appends to
    # the plain chain afterwards).
    base_last = base_cursor
    for record in wal_mod.iter_records(directory):
        if record.seq <= base_cursor:
            result.skipped_records += 1
            continue
        if record.seq != base_last + 1:
            raise ServiceError(
                f"{directory}: WAL sequence gap — store is at {base_last} "
                f"but the next surviving record is {record.seq}; updates "
                f"in between are lost"
            )
        if record.op == wal_mod.OP_INSERT:
            store.insert_batch(record.edges, record.weights)
        else:
            store.delete_batch(record.edges)
        base_last = record.seq
        base_cum = record.cum_edges
        result.replayed_records += 1
        result.replayed_edges += record.n_edges

    pending: list[list] = []
    for k in range(n_shards):
        prefix = wal_mod.shard_prefix(k)
        wal_mod.truncate_torn_tail(directory, prefix=prefix)
        records = []
        for record in wal_mod.iter_records(directory, prefix=prefix):
            if record.seq <= shard_cursors[k]:
                result.skipped_records += 1
                continue
            expect = (records[-1].seq if records else shard_cursors[k]) + 1
            if record.seq != expect:
                raise ServiceError(
                    f"{directory}: WAL sequence gap in shard {k} — shard "
                    f"is at {expect - 1} but the next surviving record is "
                    f"{record.seq}; updates in between are lost"
                )
            records.append(record)
        pending.append(records)

    cursors = [0] * n_shards
    while True:
        insert_edges, insert_weights, delete_edges = [], [], []
        progressed = False
        for k in range(n_shards):
            if cursors[k] >= len(pending[k]):
                continue
            record = pending[k][cursors[k]]
            cursors[k] += 1
            progressed = True
            if record.op == wal_mod.OP_INSERT:
                insert_edges.append(record.edges)
                insert_weights.append(record.weights)
            else:
                delete_edges.append(record.edges)
            shard_cursors[k] = record.seq
            shard_cum[k] = record.cum_edges
            result.replayed_records += 1
            result.replayed_edges += record.n_edges
        if not progressed:
            break
        if insert_edges:
            store.insert_batch(np.concatenate(insert_edges),
                               np.concatenate(insert_weights))
        if delete_edges:
            store.delete_batch(np.concatenate(delete_edges))
        result.replayed_seqs.append(base_last + sum(shard_cursors))

    result.last_seq = base_last + sum(shard_cursors)
    result.cum_edges = base_cum + sum(shard_cum)
    result.n_shards = n_shards


def recover(directory: str | Path, config=None,
            verify: str | None = "quick") -> RecoveryResult:
    """Rebuild the service store from ``directory``.

    ``config`` overrides the checkpoint's embedded writer config (useful
    to recover a delete-only log into a compacting store, or onto a
    different backend entirely); with neither, paper defaults apply.
    The backend is chosen from the config via
    :func:`repro.core.store.store_from_config`, so a checkpoint written
    by a STINGER or tiered store recovers into the same backend.

    ``verify`` selects the bounded post-recovery fsck level (``"quick"``
    by default — the vectorised degree/duplicate/count invariants;
    ``"full"`` for the per-cell audit; ``None`` to skip).  The result
    lands in :attr:`RecoveryResult.fsck`; a violated store is *returned*,
    not raised — the caller (service, CLI) owns the serve/refuse call.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ServiceError(f"{directory}: no such service directory")
    with obs.span("service.recovery", directory=str(directory)) as span:
        torn_offset = wal_mod.truncate_torn_tail(directory)

        checkpoint = latest_checkpoint(directory)
        if checkpoint is not None:
            if config is None:
                config = checkpoint.snapshot.writer_config
            store = store_from_config(config)
            store.insert_batch(checkpoint.snapshot.edges,
                               checkpoint.snapshot.weights)
            last_seq = checkpoint.last_seq
            cum_edges = checkpoint.cum_edges
        else:
            store = store_from_config(config)
            last_seq = 0
            cum_edges = 0

        result = RecoveryResult(
            store=store, last_seq=last_seq, cum_edges=cum_edges,
            checkpoint_seq=last_seq,
            checkpoint_path=checkpoint.path if checkpoint else None,
            torn_offset=torn_offset,
        )
        n_shards = _shard_count(directory, config, checkpoint)
        if n_shards:
            _replay_sharded(directory, store, checkpoint, result, n_shards)
        else:
            for record in wal_mod.iter_records(directory):
                if record.seq <= result.checkpoint_seq:
                    result.skipped_records += 1
                    continue
                if record.seq != result.last_seq + 1:
                    raise ServiceError(
                        f"{directory}: WAL sequence gap — store is at "
                        f"{result.last_seq} but the next surviving record is "
                        f"{record.seq}; updates in between are lost"
                    )
                if record.op == wal_mod.OP_INSERT:
                    store.insert_batch(record.edges, record.weights)
                else:
                    store.delete_batch(record.edges)
                result.last_seq = record.seq
                result.cum_edges = record.cum_edges
                result.replayed_records += 1
                result.replayed_edges += record.n_edges
                result.replayed_seqs.append(record.seq)
        if verify is not None:
            result.fsck = store.fsck(level=verify)
            span.set_attr("fsck_violations", len(result.fsck.violations))
        span.set_attr("replayed_records", result.replayed_records)
        span.set_attr("checkpoint_seq", result.checkpoint_seq)
    result.blackbox = {
        "reason": "recovery",
        "directory": str(directory),
        "checkpoint_seq": result.checkpoint_seq,
        "checkpoint_path": (str(result.checkpoint_path)
                            if result.checkpoint_path else None),
        "last_seq": result.last_seq,
        "cum_edges": result.cum_edges,
        "replayed_records": result.replayed_records,
        "replayed_edges": result.replayed_edges,
        "skipped_records": result.skipped_records,
        "n_shards": result.n_shards,
        "torn_truncated": result.torn_offset is not None,
        "fsck_violations": (len(result.fsck.violations)
                            if result.fsck is not None else None),
    }
    _publish(result)
    if obs_hooks.enabled:
        from repro.obs.recorder import blackbox_path, get_recorder

        recorder = get_recorder()
        recorder.record("recovery", **result.blackbox)
        context = {k: v for k, v in result.blackbox.items() if k != "reason"}
        try:
            recorder.dump(blackbox_path(directory, "recovery"), "recovery",
                          **context)
        except Exception:  # noqa: BLE001 - post-mortem is best-effort
            pass
    return result
