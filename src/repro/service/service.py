"""GraphService: a durable, batching ingest/query frontend.

The service turns the library's batch-oriented store into something a
multi-threaded application can talk to:

* **Ingest** — :meth:`GraphService.submit_insert` / ``submit_delete``
  enqueue work from any thread and return a :class:`Ticket`.  A single
  flusher thread coalesces queued requests into micro-batches — flushing
  when pending rows reach ``batch_edges`` (size trigger) or the oldest
  request has waited ``flush_interval`` seconds (latency trigger) — and
  commits each micro-batch **WAL-first**: append + sync, then apply to
  the store, then complete the tickets.  A ticket that resolves is
  durable.
* **Backpressure** — the queue is bounded at ``queue_limit`` pending
  requests; a full queue blocks submitters up to ``submit_timeout``
  seconds, then raises :class:`~repro.errors.ServiceError`.
* **Reads** — degree/neighbors/edge-count/analytics take the store lock
  the flusher applies under, so a reader never observes half of a
  micro-batch (snapshot consistency at batch granularity).
* **Durability lifecycle** — :meth:`checkpoint` snapshots the store with
  its WAL cursor and prunes the log behind it (``checkpoint_every``
  automates this per applied record count);
  :meth:`GraphService.open` recovers a directory (checkpoint + WAL tail
  replay) and resumes serving where the last process stopped.

Instrumented through :mod:`repro.obs` (``service.queue.*``,
``service.flush.*``, ``service.wal.*`` plus a span per flush) — all
no-ops while observability is down, like every other hook in the repo.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.config import ShardedConfig
from repro.core.store import apply_kernel, store_from_config
from repro.errors import (
    BreakerOpenError,
    QueueFullError,
    ServiceError,
    ShedError,
)
from repro.obs import hooks as obs_hooks
from repro.obs.recorder import blackbox_path, get_recorder
from repro.obs.timeseries import MetricsSampler, TimeSeriesRing
from repro.service.checkpoint import CheckpointManager, list_checkpoints
from repro.service.recovery import RecoveryResult, recover
from repro.service.wal import (
    DEFAULT_SEGMENT_BYTES,
    OP_DELETE,
    OP_INSERT,
    ShardedWriteAheadLog,
    WriteAheadLog,
)

#: Histogram buckets for flush latencies, in milliseconds.
_FLUSH_MS_BUCKETS = (0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000)


class Ticket:
    """Completion handle for one submitted batch.

    :meth:`wait` blocks until the batch's micro-batch flush has made it
    durable (WAL-synced and applied), returning the WAL sequence that
    carries it — or re-raising the failure that killed the flush.
    """

    __slots__ = ("_event", "seq", "error")

    def __init__(self):
        self._event = threading.Event()
        self.seq: int | None = None
        self.error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> int:
        if not self._event.wait(timeout):
            raise ServiceError(f"batch not durable after {timeout}s")
        if self.error is not None:
            raise self.error
        return self.seq

    def _resolve(self, seq: int | None, error: BaseException | None) -> None:
        self.seq = seq
        self.error = error
        self._event.set()


class _Request:
    __slots__ = ("op", "edges", "weights", "ticket", "ts")

    def __init__(self, op: int, edges: np.ndarray, weights: np.ndarray | None):
        self.op = op
        self.edges = edges
        self.weights = weights
        self.ticket = Ticket()
        self.ts = time.monotonic()


class GraphService:
    """Durable frontend over one graph store (see module docstring).

    Any :class:`repro.core.store.Store` backend serves: pass a ``store``
    directly, or a backend config (``GTConfig`` / ``StingerConfig`` /
    ``TieredConfig``) and the matching backend is built via
    :func:`repro.core.store.store_from_config`.  The default remains the
    paper's GraphTinker.

    Build fresh services on *clean* directories directly; anything with
    history goes through :meth:`GraphService.open`, which recovers first.
    The constructor refuses a store/WAL cursor mismatch rather than
    silently double-applying the log.
    """

    def __init__(self, directory: str | Path, *,
                 store=None,
                 config=None,
                 wal: WriteAheadLog | None = None,
                 batch_edges: int = 2048,
                 flush_interval: float = 0.05,
                 queue_limit: int = 256,
                 submit_timeout: float = 5.0,
                 sync: str = "batch",
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 checkpoint_every: int = 0,
                 checkpoint_keep: int = 2,
                 applied_seq: int = 0,
                 cum_edges: int = 0,
                 max_retries: int = 0,
                 retry_base: float = 0.01,
                 retry_cap: float = 0.5,
                 breaker_threshold: int = 0,
                 breaker_reset: float = 1.0,
                 shed_reads_at: int = 0,
                 sample_interval: float = 0.0,
                 sample_capacity: int = 256,
                 kernel: str | None = None,
                 injector=None):
        if batch_edges < 1:
            raise ServiceError("batch_edges must be >= 1")
        if queue_limit < 1:
            raise ServiceError("queue_limit must be >= 1")
        if max_retries < 0:
            raise ServiceError("max_retries must be >= 0")
        if breaker_threshold < 0:
            raise ServiceError("breaker_threshold must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._store = store if store is not None else store_from_config(config)
        # Batch-ingest kernel override; validated by the config class, and
        # safe to apply to a recovered store because the kernel switch only
        # selects the insert_batch/delete_batch implementation — both
        # produce bit-identical store state and stats.  Backends without a
        # kernel knob (STINGER, tiered) keep their single implementation.
        apply_kernel(self._store, kernel)
        store_config = getattr(self._store, "config", None)
        sharded = isinstance(store_config, ShardedConfig)
        if wal is not None:
            self._wal = wal
        elif sharded:
            if injector is not None:
                raise ServiceError(
                    "WAL fault injection is not supported with a sharded "
                    "store (per-shard logs; inject into a plain backend)")
            self._wal = ShardedWriteAheadLog(
                self.directory, store_config.n_shards,
                seed=store_config.seed, segment_bytes=segment_bytes,
                sync=sync, min_last_seq=applied_seq, min_cum_edges=cum_edges)
        elif injector is not None:
            from repro.service.faults import (
                FaultyWriteAheadLog,
                FlakyWriteAheadLog,
                TransientFaultInjector,
            )

            wal_cls = (FlakyWriteAheadLog
                       if isinstance(injector, TransientFaultInjector)
                       else FaultyWriteAheadLog)
            self._wal = wal_cls(
                self.directory, segment_bytes=segment_bytes, sync=sync,
                min_last_seq=applied_seq, min_cum_edges=cum_edges,
                injector=injector)
        else:
            self._wal = WriteAheadLog(
                self.directory, segment_bytes=segment_bytes, sync=sync,
                min_last_seq=applied_seq, min_cum_edges=cum_edges)
        if self._wal.last_seq != applied_seq:
            raise ServiceError(
                f"{self.directory}: WAL ends at sequence {self._wal.last_seq} "
                f"but the store reflects {applied_seq} — recover first "
                f"(GraphService.open) instead of constructing directly"
            )
        self.batch_edges = batch_edges
        self.flush_interval = flush_interval
        self.queue_limit = queue_limit
        self.submit_timeout = submit_timeout
        self.sync_policy = sync
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.shed_reads_at = shed_reads_at
        self._ckpt = CheckpointManager(self.directory, keep=checkpoint_keep)
        self._applied_seq = applied_seq
        self._cum_edges = cum_edges
        self._last_ckpt_seq = applied_seq

        self._breaker_state = "closed"
        self._breaker_failures = 0
        self._breaker_opened_at = 0.0
        self._last_fsck = None
        self._started_at = time.monotonic()
        self._last_ckpt_at: float | None = None

        self._store_lock = threading.RLock()
        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()
        self._pending_edges = 0
        self._flushing = False
        self._force_flush = False
        self._stop = False
        self._closed = False
        self._fatal: BaseException | None = None
        self.n_flushes = 0
        self._thread = threading.Thread(target=self._flusher_loop,
                                        name="graph-service-flusher",
                                        daemon=True)
        self._thread.start()
        # Optional background time-series sampler (off by default): tracks
        # the service vitals docs/observability.md names, into a ring the
        # health() snapshot and `repro top` can read back.
        self._sampler: MetricsSampler | None = None
        if sample_interval > 0:
            self._sampler = self._build_sampler(sample_interval,
                                                sample_capacity)
            self._sampler.start()

    def _build_sampler(self, interval: float,
                       capacity: int) -> MetricsSampler:
        ring = TimeSeriesRing(capacity=capacity)
        sampler = MetricsSampler(ring=ring, interval=interval)
        sampler.add_gauge("queue_depth", lambda: len(self._queue))
        sampler.add_gauge("pending_edges", lambda: self._pending_edges)
        sampler.add_rate("ingest_edges_per_s", lambda: self._wal.cum_edges)
        sampler.add_gauge(
            "breaker_state",
            lambda: {"closed": 0.0, "half-open": 1.0,
                     "open": 2.0}[self._breaker_state])
        sampler.add_gauge(
            "wal_fsync_p99_ms",
            lambda: obs.get_registry().quantile(
                "service.wal.fsync_ms").quantile(0.99))
        sampler.add_gauge(
            "flush_p99_ms",
            lambda: obs.get_registry().quantile(
                "service.flush.ms").quantile(0.99))
        return sampler

    @property
    def timeseries(self) -> TimeSeriesRing | None:
        """The sampler's ring, when ``sample_interval > 0`` (else None)."""
        return self._sampler.ring if self._sampler is not None else None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, directory: str | Path, config=None,
             verify: str | None = "quick",
             **kwargs) -> tuple["GraphService", RecoveryResult]:
        """Recover ``directory`` and serve from the recovered state.

        Returns ``(service, recovery_result)`` so drivers can see what
        was replayed (and where a deterministic input stream resumes:
        ``recovery_result.cum_edges``).  A fresh/empty directory recovers
        to an empty store at sequence 0.

        ``verify`` is the post-recovery fsck level (see
        :func:`repro.service.recovery.recover`); its outcome lands in
        ``recovery_result.fsck`` and in the service's :meth:`health`
        snapshot.  A violated store still serves — refusing is the
        caller's decision (``python -m repro fsck`` exists for that).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        result = recover(directory, config=config, verify=verify)
        service = cls(directory, store=result.store,
                      applied_seq=result.last_seq, cum_edges=result.cum_edges,
                      **kwargs)
        if result.fsck is not None:
            service._note_fsck(result.fsck)
        return service, result

    @property
    def fatal_error(self) -> BaseException | None:
        """The failure that stopped the flusher, if any."""
        return self._fatal

    @property
    def applied_seq(self) -> int:
        """Last WAL sequence the store reflects."""
        with self._cond:
            return self._applied_seq

    @property
    def cum_input_edges(self) -> int:
        """Total input rows made durable (the stream-resume offset)."""
        with self._cond:
            return self._cum_edges

    def close(self, checkpoint: bool = False) -> None:
        """Flush the queue, stop the flusher, sync + close the WAL.

        Shutdown ordering is load-bearing and explicit:

        1. stop accepting new submissions (``_stop``; in-flight queued
           batches stay queued),
        2. the flusher drains every queued micro-batch — each one is
           WAL-appended, applied, and its tickets resolved,
        3. the drained log is **fsynced** (even under the ``"batch"`` /
           ``"never"`` policies, whose steady-state flushes defer or skip
           fsync) *before* any finalization touches the directory — a
           ticket that resolved durable must survive a crash immediately
           after ``close()`` returns, whatever the fsync policy was,
        4. only then the optional final checkpoint (which prunes the log)
           and the WAL close run.

        ``checkpoint=True`` additionally snapshots the final state (which
        prunes the WAL down to nothing worth replaying).  Idempotent:
        later calls return immediately (a ``checkpoint=True`` on a second
        call is ignored — the service already finalized).
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._stop = True
            self._cond.notify_all()
        if self._sampler is not None:
            self._sampler.stop()
        self._thread.join()
        if self._fatal is None:
            # Step 3: the drain's durability point.  The per-flush path
            # honored sync_policy; the close path must not leave resolved
            # tickets hostage to the page cache.
            self._wal_op(self._wal.sync)
        if checkpoint and self._fatal is None:
            self.checkpoint()
        self._wal.close()

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def submit_insert(self, edges: np.ndarray,
                      weights: np.ndarray | None = None,
                      timeout: float | None = None) -> Ticket:
        """Enqueue an insert batch; returns its durability :class:`Ticket`."""
        return self._submit(OP_INSERT, edges, weights, timeout)

    def submit_delete(self, edges: np.ndarray,
                      timeout: float | None = None) -> Ticket:
        """Enqueue a delete batch; returns its durability :class:`Ticket`."""
        return self._submit(OP_DELETE, edges, None, timeout)

    def _submit(self, op: int, edges: np.ndarray,
                weights: np.ndarray | None, timeout: float | None) -> Ticket:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ServiceError("submitted edges must have shape (n, 2)")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != edges.shape[0]:
                raise ServiceError("weights length must match edge count")
        request = _Request(op, edges, weights)
        timeout = self.submit_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        with self._cond:
            self._check_alive()
            self._breaker_guard()
            while len(self._queue) >= self.queue_limit:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if obs_hooks.enabled:
                        obs.get_registry().counter(
                            "service.queue.rejected").inc()
                    raise QueueFullError(
                        f"queue full ({self.queue_limit} pending batches) "
                        f"for {timeout}s — backpressure timeout; slow down "
                        f"or raise queue_limit/batch_edges"
                    )
                self._check_alive()
            self._check_alive()
            self._queue.append(request)
            self._pending_edges += edges.shape[0]
            depth = len(self._queue)
            self._cond.notify_all()
        if obs_hooks.enabled:
            registry = obs.get_registry()
            registry.counter("service.queue.enqueued").inc()
            registry.gauge("service.queue.depth").set(depth)
        return request.ticket

    def _check_alive(self) -> None:
        if self._fatal is not None:
            raise ServiceError(
                f"service stopped after flush failure: {self._fatal}"
            ) from self._fatal
        if self._stop:
            raise ServiceError("service is closed")

    def _breaker_guard(self) -> None:
        """Fail fast while the breaker is open (call under ``_cond``).

        After ``breaker_reset`` seconds of open time the breaker moves to
        half-open: the guard lets one submission through and the next
        flush becomes the probe — success re-closes the breaker, another
        transient failure re-opens it with a fresh timer.
        """
        if self._breaker_state != "open":
            return
        elapsed = time.monotonic() - self._breaker_opened_at
        if elapsed >= self.breaker_reset:
            self._breaker_state = "half-open"
            if obs_hooks.enabled:
                obs.get_registry().counter("service.breaker.half_open").inc()
                get_recorder().record("breaker.half_open",
                                      open_for_s=round(elapsed, 4))
            return
        if obs_hooks.enabled:
            obs.get_registry().counter("service.breaker.fast_fail").inc()
        raise BreakerOpenError(
            f"circuit breaker open after {self._breaker_failures} "
            f"consecutive flush failures; retry in "
            f"{self.breaker_reset - elapsed:.2f}s"
        )

    def flush_now(self, timeout: float | None = None) -> None:
        """Block until everything currently queued is durable."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._force_flush = True
            self._cond.notify_all()
            while self._queue or self._flushing:
                if self._fatal is not None:
                    break
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise ServiceError(f"flush_now timed out after {timeout}s")
                self._cond.wait(remaining)
            if self._fatal is not None:
                raise ServiceError(
                    f"service stopped after flush failure: {self._fatal}"
                ) from self._fatal
            if self._breaker_state == "open":
                raise BreakerOpenError(
                    f"circuit breaker open after {self._breaker_failures} "
                    f"consecutive flush failures; queued work was rejected")

    # ------------------------------------------------------------------ #
    # flusher
    # ------------------------------------------------------------------ #
    def _flusher_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._queue or self._stop)
                if not self._queue:
                    break  # stopping with a drained queue
                deadline = self._queue[0].ts + self.flush_interval
                self._cond.wait_for(
                    lambda: (self._stop or self._force_flush
                             or self._pending_edges >= self.batch_edges),
                    timeout=max(0.0, deadline - time.monotonic()),
                )
                # Drain at most ~batch_edges rows (always at least one
                # request): micro-batches stay bounded even when
                # submitters outrun the flusher, so the WAL fills with
                # incremental records instead of one giant one.
                batch: list[_Request] = []
                taken = 0
                while self._queue and (not batch or taken < self.batch_edges):
                    request = self._queue.popleft()
                    batch.append(request)
                    taken += request.edges.shape[0]
                self._pending_edges -= taken
                self._force_flush = bool(self._queue) and self._force_flush
                self._flushing = True
                self._cond.notify_all()
            try:
                self._flush(batch)
            except OSError as exc:
                # Transient I/O kind (real disk errors and injected ones
                # travel as OSError).  With a breaker configured the
                # service survives: this batch fails, the breaker counts
                # it, and enough consecutive failures trip it open.
                # Without a breaker, keep PR 2's fail-stop semantics.
                if self.breaker_threshold > 0:
                    self._flush_failed(batch, exc)
                    continue
                self._go_fatal(batch, exc)
                return
            except Exception as exc:  # noqa: BLE001 - flusher is the fault wall
                self._go_fatal(batch, exc)
                return
            with self._cond:
                self._flushing = False
                if self._breaker_failures or self._breaker_state != "closed":
                    reopened = self._breaker_state != "closed"
                    self._breaker_state = "closed"
                    self._breaker_failures = 0
                    if obs_hooks.enabled:
                        obs.get_registry().counter(
                            "service.breaker.closed").inc()
                        if reopened:
                            get_recorder().record("breaker.close")
                self._cond.notify_all()

    def _go_fatal(self, batch: list[_Request], exc: BaseException) -> None:
        with self._cond:
            self._fatal = exc
            self._flushing = False
            for request in [*batch, *self._queue]:
                request.ticket._resolve(None, exc)
            self._queue.clear()
            self._pending_edges = 0
            self._cond.notify_all()
        if obs_hooks.enabled:
            get_recorder().record("service.fatal", error=repr(exc),
                                  n_requests=len(batch))
            self._dump_blackbox("fatal", error=repr(exc))

    def _dump_blackbox(self, reason: str, **context) -> None:
        """Best-effort flight-recorder post-mortem in the service dir.

        Gated on the master switch by the callers; a dump that fails
        (disk full, directory gone) must never mask the original fault.
        """
        try:
            get_recorder().dump(
                blackbox_path(self.directory, reason), reason,
                directory=str(self.directory), **context)
        except Exception:  # noqa: BLE001 - post-mortem is best-effort
            pass

    def _flush_failed(self, batch: list[_Request], exc: BaseException) -> None:
        """Record one non-fatal flush failure; maybe trip the breaker."""
        with self._cond:
            self._flushing = False
            for request in batch:
                request.ticket._resolve(None, exc)
            self._breaker_failures += 1
            tripped = self._breaker_failures >= self.breaker_threshold
            if tripped:
                self._breaker_state = "open"
                self._breaker_opened_at = time.monotonic()
                # Everything still queued would hit the same wall; fail
                # it fast rather than letting tickets hang.
                error = BreakerOpenError(
                    f"circuit breaker opened after "
                    f"{self._breaker_failures} consecutive flush "
                    f"failures (last: {exc})")
                error.__cause__ = exc
                for request in self._queue:
                    request.ticket._resolve(None, error)
                self._queue.clear()
                self._pending_edges = 0
            self._cond.notify_all()
        if obs_hooks.enabled:
            registry = obs.get_registry()
            registry.counter("service.breaker.failures").inc()
            get_recorder().record("flush.failed", error=repr(exc),
                                  consecutive=self._breaker_failures)
            if tripped:
                registry.counter("service.breaker.opened").inc()
                get_recorder().record(
                    "breaker.open", consecutive=self._breaker_failures,
                    threshold=self.breaker_threshold, error=repr(exc))
                self._dump_blackbox("breaker-open", error=repr(exc))

    def _wal_op(self, fn):
        """Run one WAL operation with exponential backoff + jitter.

        Only ``OSError`` (the transient I/O kind) is retried; anything
        else propagates immediately.  ``max_retries == 0`` (the default)
        makes this a plain call.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except OSError:
                if attempt >= self.max_retries:
                    raise
                delay = min(self.retry_cap, self.retry_base * (2 ** attempt))
                # Full jitter on [delay/2, delay]: desynchronises retry
                # storms without ever collapsing the backoff to zero.
                delay *= 0.5 + random.random() / 2
                attempt += 1
                if obs_hooks.enabled:
                    obs.get_registry().counter("service.wal.retries").inc()
                    get_recorder().record("wal.retry", attempt=attempt,
                                          delay_s=round(delay, 4))
                time.sleep(delay)

    @staticmethod
    def _coalesce(batch: list[_Request]) -> list[tuple[int, np.ndarray,
                                                       np.ndarray | None,
                                                       list[_Request]]]:
        """Merge consecutive same-op requests (order preserved)."""
        groups = []
        for request in batch:
            if groups and groups[-1][0] == request.op:
                groups[-1][3].append(request)
            else:
                groups.append((request.op, None, None, [request]))
        out = []
        for op, _, _, members in groups:
            edges = np.concatenate([m.edges for m in members]) \
                if len(members) > 1 else members[0].edges
            if op == OP_INSERT:
                weights = np.concatenate([
                    m.weights if m.weights is not None
                    else np.ones(m.edges.shape[0], dtype=np.float64)
                    for m in members
                ]) if len(members) > 1 else members[0].weights
            else:
                weights = None
            out.append((op, edges, weights, members))
        return out

    def _flush(self, batch: list[_Request]) -> None:
        n_edges = sum(r.edges.shape[0] for r in batch)
        start = time.monotonic()
        with obs.span("service.flush", n_requests=len(batch), n_edges=n_edges):
            groups = self._coalesce(batch)
            # WAL first: nothing touches the store until the log carries it.
            # Each WAL call retries individually: a failed append rolls its
            # partial bytes back and does not advance the sequence, so
            # re-running exactly that append is safe — retrying the whole
            # flush would duplicate the records that already landed.
            seqs: list[tuple[int, list[_Request]]] = []
            for op, edges, weights, members in groups:
                seq = self._wal_op(
                    lambda op=op, edges=edges, weights=weights:
                    self._wal.append(op, edges, weights))
                seqs.append((seq, members))
            if self.sync_policy == "batch":
                self._wal_op(self._wal.sync)
            with self._store_lock:
                for op, edges, weights, _ in groups:
                    if op == OP_INSERT:
                        self._store.insert_batch(edges, weights)
                    else:
                        self._store.delete_batch(edges)
                with self._cond:
                    self._applied_seq = self._wal.last_seq
                    self._cum_edges = self._wal.cum_edges
        for seq, members in seqs:
            for request in members:
                request.ticket._resolve(seq, None)
        self.n_flushes += 1
        if obs_hooks.enabled:
            registry = obs.get_registry()
            registry.counter("service.flush.batches").inc()
            registry.counter("service.flush.edges").inc(n_edges)
            registry.histogram("service.flush.requests").record(len(batch))
            flush_ms = (time.monotonic() - start) * 1e3
            registry.histogram(
                "service.flush.duration_ms", buckets=_FLUSH_MS_BUCKETS
            ).record(flush_ms)
            registry.quantile(
                "service.flush.ms", "micro-batch flush wall latency (ms)"
            ).record(flush_ms)
            registry.gauge("service.queue.depth").set(len(self._queue))
        if (self.checkpoint_every
                and self._applied_seq - self._last_ckpt_seq >= self.checkpoint_every):
            self.checkpoint()

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> Path:
        """Snapshot the applied state and prune the WAL behind it."""
        with self._store_lock:
            with self._cond:
                seq, cum = self._applied_seq, self._cum_edges
            meta_fn = getattr(self._wal, "checkpoint_meta", None)
            path = self._ckpt.write(self._store, seq, cum,
                                    meta=meta_fn() if meta_fn else None)
            self._last_ckpt_seq = seq
            self._last_ckpt_at = time.monotonic()
        if obs_hooks.enabled:
            registry = obs.get_registry()
            registry.counter("service.checkpoint.count").inc()
            registry.gauge("service.checkpoint.seq").set(seq)
            get_recorder().record("service.checkpoint", seq=seq,
                                  cum_edges=cum)
        return path

    # ------------------------------------------------------------------ #
    # integrity & health
    # ------------------------------------------------------------------ #
    def _note_fsck(self, report) -> None:
        with self._cond:
            self._last_fsck = {
                "level": report.level,
                "ok": report.ok,
                "violations": len(report.violations),
                "at": time.time(),
            }
        if obs_hooks.enabled:
            obs.get_registry().gauge("service.fsck.violations").set(
                len(report.violations))
            if not report.ok:
                get_recorder().record("fsck", level=report.level,
                                      violations=len(report.violations))

    def run_fsck(self, level: str = "quick", repair: bool = False):
        """Audit the live store under the store lock; record the outcome.

        Returns the :class:`~repro.core.verify.VerifyReport` (or
        :class:`~repro.core.verify.RepairReport` with ``repair=True``);
        the summary also lands in :meth:`health`.
        """
        with self._store_lock:
            result = self._store.fsck(level=level, repair=repair)
        self._note_fsck(result.final if repair else result)
        return result

    def _checkpoint_age_s(self) -> float | None:
        """Seconds since the last checkpoint, or ``None`` if never.

        A service that has not checkpointed *this process* falls back to
        the newest checkpoint file on disk (a recovered service inherits
        its predecessor's checkpoint).
        """
        if self._last_ckpt_at is not None:
            return time.monotonic() - self._last_ckpt_at
        try:
            checkpoints = list_checkpoints(self.directory)
        except OSError:
            return None
        if not checkpoints:
            return None
        return max(0.0, time.time() - checkpoints[-1].stat().st_mtime)

    def health(self) -> dict:
        """Point-in-time service status snapshot (cheap; lock-light).

        ``ok`` means: flusher alive, breaker closed, and the last fsck
        (if any ran) found nothing.  ``last_event`` is the most recent
        flight-recorder event (None while observability is down or quiet);
        ``timeseries`` summarises the sampler ring when one is running.
        """
        with self._cond:
            snapshot = {
                "queue_depth": len(self._queue),
                "pending_edges": self._pending_edges,
                "queue_limit": self.queue_limit,
                "applied_seq": self._applied_seq,
                "cum_edges": self._cum_edges,
                "n_flushes": self.n_flushes,
                "uptime_s": time.monotonic() - self._started_at,
                "breaker": {
                    "state": self._breaker_state,
                    "consecutive_failures": self._breaker_failures,
                    "threshold": self.breaker_threshold,
                },
                "fatal": str(self._fatal) if self._fatal else None,
                "last_fsck": dict(self._last_fsck) if self._last_fsck else None,
                "shedding_reads": (self.shed_reads_at > 0
                                   and len(self._queue) >= self.shed_reads_at),
            }
        snapshot["last_checkpoint_age_s"] = self._checkpoint_age_s()
        # Staleness observability for the snapshot-serving read path:
        # which view version readers are being served, and how many rows
        # the next sync would have to re-measure to catch up.
        snap = self._store.analytics_snapshot
        snapshot["snapshot_generation"] = (
            snap.generation if snap is not None else None)
        snapshot["snapshot_pending_rows"] = (
            snap.pending_rows if snap is not None else None)
        snapshot["last_event"] = get_recorder().last_event()
        if self._sampler is not None:
            snapshot["timeseries"] = self._sampler.ring.summary()
        snapshot["ok"] = (snapshot["fatal"] is None
                          and snapshot["breaker"]["state"] == "closed"
                          and (snapshot["last_fsck"] is None
                               or snapshot["last_fsck"]["ok"]))
        return snapshot

    # ------------------------------------------------------------------ #
    # snapshot-consistent reads
    # ------------------------------------------------------------------ #
    def _shed_check(self) -> None:
        """Reject reads while the ingest queue is over the shed mark.

        Under overload the store lock is the contended resource; reads
        walking the store would stall the flusher further.  Off by
        default (``shed_reads_at == 0``).
        """
        if self.shed_reads_at <= 0:
            return
        with self._cond:
            depth = len(self._queue)
        if depth >= self.shed_reads_at:
            if obs_hooks.enabled:
                obs.get_registry().counter("service.shed.reads").inc()
                get_recorder().record("shed.reads", queue_depth=depth,
                                      shed_reads_at=self.shed_reads_at)
            raise ShedError(
                f"shedding reads: queue depth {depth} >= shed_reads_at "
                f"{self.shed_reads_at} — ingest is saturated"
            )

    @property
    def n_edges(self) -> int:
        with self._store_lock:
            return self._store.n_edges

    @property
    def n_vertices(self) -> int:
        with self._store_lock:
            return self._store.n_vertices

    def degree(self, src: int) -> int:
        self._shed_check()
        with self._store_lock:
            return self._store.degree(src)

    def has_edge(self, src: int, dst: int) -> bool:
        self._shed_check()
        with self._store_lock:
            return self._store.has_edge(src, dst)

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        self._shed_check()
        with self._store_lock:
            return self._store.neighbors(src)

    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        self._shed_check()
        with self._store_lock:
            return self._store.analytics_edges()

    def analytics(self, program, *, roots=None, policy: str = "hybrid"):
        """Run a GAS program over the current state via the hybrid engine.

        Holds the store lock for the whole computation, so the result is
        a consistent point-in-time answer even under concurrent ingest.
        """
        from repro.engine import HybridEngine

        with self._store_lock:
            engine = HybridEngine(self._store, program, policy=policy)
            if roots is not None:
                engine.reset(roots=roots)
            else:
                engine.reset()
            return engine.compute()
