"""WAL tail-follow: cursor-based streaming reads of a live log.

Replication ships the writer's WAL to replicas (docs/network.md,
"Replication"), which needs something :func:`repro.service.wal.
iter_records` cannot do: read the log *while it is being written*, from
an arbitrary ``{seq, cum_edges}`` cursor, and keep following it across
segment rotations and torn tails.  :class:`WalTailer` is that reader.

Semantics, in the order they matter:

* **Cursor positioning** — a tailer starts *after* ``after_seq``: the
  first record it yields is ``after_seq + 1``.  Positioning finds the
  segment whose name (its first sequence) is the greatest one at or
  below the cursor and skips already-consumed records inside it.  If
  checkpoint pruning has deleted that segment — the oldest surviving
  segment starts beyond the cursor — the cursor is unservable and
  :class:`~repro.errors.CursorGapError` is raised; the subscriber's
  recovery is a full resync, not a replay.
* **Torn tails are pending, not errors** — the writer appends records
  with a flush per append, so a reader can observe a half-written final
  record (short header, short payload, or a CRC mismatch at EOF).  The
  tailer stops *before* the torn bytes and re-reads from the same
  boundary on the next poll: if the writer finishes the record the
  bytes complete; if the writer crashed, its restart truncates them and
  appends fresh records at the very same offset.  Either way the tailer
  never consumed garbage.  A CRC mismatch (or short record) with more
  data after it is real corruption and raises
  :class:`~repro.errors.ServiceError`, exactly like recovery would.
* **Rotation mid-stream** — a segment that ends cleanly is final (the
  writer never reopens rotated segments), so when a successor segment
  named ``last_seq + 1`` exists the tailer moves into it.  No successor
  yet means the tailer is at the live head: poll again later.
* **Contiguity** — yielded sequences are strictly contiguous.  A jump
  (missing segment, mis-pruned log) raises :class:`ServiceError` rather
  than silently diverging the subscriber.

The tailer holds no file handles between polls — every poll re-reads
its current segment from the saved byte offset — so it never blocks a
writer-side prune and always observes truncations.
"""

from __future__ import annotations

import zlib
from pathlib import Path

from repro.errors import CursorGapError, ServiceError
from repro.service.wal import (
    _HEADER,
    SEGMENT_MAGIC,
    SEGMENT_PREFIX,
    SEGMENT_SUFFIX,
    WalRecord,
    _decode_payload,
    list_segments,
)

#: Default record cap per poll (bounds one WAL_BATCH frame).
DEFAULT_POLL_RECORDS = 256


def segment_first_seq(path: Path) -> int:
    """The first sequence number a segment file's name declares."""
    return int(path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])


class WalTailer:
    """Streaming reader over a (possibly live) WAL directory.

    One tailer = one subscriber cursor.  :meth:`poll` returns the next
    complete records (possibly none) and never blocks; ``last_seq`` /
    ``cum_edges`` always name the cursor *after* everything yielded so
    far, which is exactly what a replica persists and resubscribes
    with.
    """

    def __init__(self, directory: str | Path, after_seq: int = 0,
                 cum_edges: int = 0):
        self.directory = Path(directory)
        if after_seq < 0:
            raise ServiceError(f"WAL cursor must be >= 0, got {after_seq}")
        self.last_seq = int(after_seq)
        self.cum_edges = int(cum_edges)
        self._segment: Path | None = None
        self._offset: int | None = None  # None = magic not yet verified
        # Validate the cursor eagerly so a subscriber learns about a
        # pruned cursor at subscribe time, not on its first poll.
        self._locate()

    @property
    def position(self) -> dict:
        """The cursor as a wire-safe dict (``{seq, cum_edges}``)."""
        return {"seq": self.last_seq, "cum_edges": self.cum_edges}

    # ------------------------------------------------------------------ #
    # segment selection
    # ------------------------------------------------------------------ #
    def _locate(self) -> bool:
        """Bind the current segment for ``last_seq + 1``; False = no log yet.

        Raises :class:`CursorGapError` when the cursor predates the
        oldest surviving segment (checkpoint pruning won the race).
        """
        segments = list_segments(self.directory)
        if not segments:
            if self.last_seq > 0:
                raise CursorGapError(
                    f"{self.directory}: cursor {self.last_seq} names pruned "
                    f"(or foreign) history — the directory holds no WAL "
                    f"segments; subscriber must resync"
                )
            return False
        want = self.last_seq + 1
        chosen: Path | None = None
        for path in segments:
            if segment_first_seq(path) <= want:
                chosen = path
            else:
                break
        if chosen is None:
            raise CursorGapError(
                f"{self.directory}: cursor {self.last_seq} is below the "
                f"oldest surviving segment "
                f"(first seq {segment_first_seq(segments[0])}) — records in "
                f"between were pruned by a checkpoint; subscriber must resync"
            )
        self._segment = chosen
        self._offset = None
        return True

    def _next_segment(self) -> Path | None:
        """The successor segment after a clean EOF (None at the live head)."""
        current_first = segment_first_seq(self._segment)
        following = [p for p in list_segments(self.directory)
                     if segment_first_seq(p) > current_first]
        if not following:
            return None
        nxt = following[0]
        first = segment_first_seq(nxt)
        if first > self.last_seq + 1:
            raise ServiceError(
                f"{self.directory}: WAL sequence gap while tailing — "
                f"cursor at {self.last_seq} but the next segment starts at "
                f"{first}; a segment is missing"
            )
        return nxt

    # ------------------------------------------------------------------ #
    # record scan
    # ------------------------------------------------------------------ #
    def _scan(self, data: bytes, out: list[WalRecord],
              max_records: int) -> bool:
        """Decode complete records from the saved offset into ``out``.

        Returns True when the scan consumed the buffer to a clean EOF
        (the segment may be rotated past), False when it stopped early —
        on the record cap or on pending torn bytes at the tail.
        """
        path = self._segment
        if self._offset is None:
            if not data.startswith(SEGMENT_MAGIC):
                if SEGMENT_MAGIC.startswith(data):
                    return False  # magic itself still being written
                raise ServiceError(f"{path}: not a WAL segment (bad magic)")
            self._offset = len(SEGMENT_MAGIC)
        offset = self._offset
        while offset < len(data):
            if len(out) >= max_records:
                return False
            header = data[offset:offset + _HEADER.size]
            if len(header) < _HEADER.size:
                return False  # torn header at the live tail: pending
            crc, seq, op, n, cum, plen = _HEADER.unpack(header)
            end = offset + _HEADER.size + plen
            if end > len(data):
                return False  # torn payload at the live tail: pending
            body = data[offset + 4:end]
            if zlib.crc32(body) != crc:
                if end == len(data):
                    # Complete-length but wrong bytes as the very last
                    # record: a larger intended write partially landed.
                    # Pending — the writer finishes it or its restart
                    # truncates it.
                    return False
                raise ServiceError(
                    f"{path} @{offset}: CRC mismatch mid-segment "
                    f"(stored {crc:#010x}) — WAL is corrupt, refusing to "
                    f"stream past it"
                )
            if seq > self.last_seq:
                if seq != self.last_seq + 1:
                    raise ServiceError(
                        f"{path} @{offset}: WAL sequence gap while tailing "
                        f"({self.last_seq} -> {seq})"
                    )
                edges, weights = _decode_payload(
                    op, n, data[offset + _HEADER.size:end], path, offset)
                out.append(WalRecord(seq=seq, op=op, edges=edges,
                                     weights=weights, cum_edges=cum))
                self.last_seq = seq
                self.cum_edges = cum
            offset = end
            self._offset = offset
        return True

    # ------------------------------------------------------------------ #
    # public read
    # ------------------------------------------------------------------ #
    def poll(self, max_records: int = DEFAULT_POLL_RECORDS) -> list[WalRecord]:
        """Next complete records after the cursor (possibly empty).

        Never blocks.  Advances the cursor past everything returned.
        Raises :class:`CursorGapError` if the log was pruned out from
        under the cursor, :class:`ServiceError` on real corruption or a
        sequence gap.
        """
        if max_records < 1:
            raise ServiceError(f"max_records must be >= 1, got {max_records}")
        out: list[WalRecord] = []
        while len(out) < max_records:
            if self._segment is None and not self._locate():
                break
            try:
                data = self._segment.read_bytes()
            except FileNotFoundError:
                # Pruned while we were tailing it; re-locate (raises
                # CursorGapError when our cursor went with it).
                self._segment = None
                self._offset = None
                continue
            clean_eof = self._scan(data, out, max_records)
            if not clean_eof:
                break
            nxt = self._next_segment()
            if nxt is None:
                break
            self._segment = nxt
            self._offset = None
        return out
