"""Append-only write-ahead log with CRC-guarded binary segments.

The WAL is the durability spine of the graph service: every micro-batch
the service applies to the store is first appended here as one *record*,
so a crash between the append and the in-memory apply loses nothing —
recovery replays the tail.

On-disk layout
--------------
A WAL directory holds numbered segment files::

    wal-00000000000000000001.seg      <- first record is sequence 1
    wal-00000000000000000042.seg      <- rotated; first record is seq 42

A sharded service (``--shards N``) keeps one independent chain per
shard in the same directory, ``wal-shard<k>-<seq>.seg``, managed by
:class:`ShardedWriteAheadLog`; each chain has its own contiguous
sequence space and replays independently on recovery (docs/sharding.md).

Each segment starts with an 8-byte magic (``GTWAL001``) followed by
back-to-back records.  A record is a fixed header plus a payload::

    <I  crc32   over the rest of the header + payload
    <Q  seq     monotonic batch sequence number (1-based, contiguous)
    <B  op      0 = insert, 1 = delete
    <I  n       edge rows in the payload
    <Q  cum     cumulative edge rows through this record (stream offset)
    <I  len     payload byte length (n*24 insert, n*16 delete)

    payload:    src int64[n] | dst int64[n] | weight float64[n insert only]

The ``cum`` field lets a driver resume a deterministic input stream after
a crash without replaying it: the last durable record says how many input
rows were consumed (see ``python -m repro serve --resume``).

Torn tails vs corruption
------------------------
A process killed mid-``write`` leaves a *torn* final record — a short
header, a short payload, or a final record whose CRC does not match.
That is expected and safe: readers drop it (and recovery truncates it).
A CRC mismatch (or a short record) with *more data after it*, or in any
segment that is not the last, means real corruption and raises
:class:`~repro.errors.ServiceError` — replaying past a hole would
silently diverge from the pre-crash state.

Sync policy
-----------
``"always"`` fsyncs every append (each record durable against OS crash),
``"batch"`` flushes every append and leaves fsync to explicit
:meth:`WriteAheadLog.sync` calls (the service syncs once per micro-batch
flush), ``"never"`` flushes to the OS only on rotation/close.  All three
survive a killed *process*; the weaker two trade OS-crash durability for
throughput.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ServiceError

SEGMENT_MAGIC = b"GTWAL001"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"

#: Record header: crc32, seq, op, n_edges, cum_edges, payload_len.
_HEADER = struct.Struct("<IQBIQI")

OP_INSERT = 0
OP_DELETE = 1

SYNC_POLICIES = ("always", "batch", "never")

DEFAULT_SEGMENT_BYTES = 1 << 20


@dataclass
class WalRecord:
    """One decoded WAL record."""

    seq: int
    op: int
    edges: np.ndarray      # (n, 2) int64
    weights: np.ndarray    # (n,) float64 (all-ones for deletes)
    cum_edges: int         # input rows consumed through this record

    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])


def shard_prefix(shard: int) -> str:
    """Segment-name prefix of one shard's log (``wal-shard<k>-``).

    A sharded service keeps one independent WAL per shard in the same
    directory; the per-shard prefixes and the plain ``wal-`` prefix never
    collide because the plain lister requires an all-digit stem.
    """
    return f"{SEGMENT_PREFIX}shard{shard}-"


def segment_path(directory: Path, first_seq: int,
                 prefix: str = SEGMENT_PREFIX) -> Path:
    return directory / f"{prefix}{first_seq:020d}{SEGMENT_SUFFIX}"


def list_segments(directory: str | Path,
                  prefix: str = SEGMENT_PREFIX) -> list[Path]:
    """Segment files in ``directory``, ordered by first sequence number.

    Only files whose name is exactly ``<prefix><digits><suffix>`` match,
    so the plain prefix never picks up per-shard segments (their stems
    start with ``shard<k>-``) and vice versa.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for p in directory.iterdir():
        name = p.name
        if name.startswith(prefix) and name.endswith(SEGMENT_SUFFIX):
            stem = name[len(prefix):-len(SEGMENT_SUFFIX)]
            if stem.isdigit():
                out.append((int(stem), p))
    return [p for _, p in sorted(out)]


def _encode(seq: int, op: int, edges: np.ndarray, weights: np.ndarray | None,
            cum_edges: int) -> bytes:
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    n = edges.shape[0]
    parts = [edges[:, 0].tobytes(), edges[:, 1].tobytes()]
    if op == OP_INSERT:
        if weights is None:
            weights = np.ones(n, dtype=np.float64)
        parts.append(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    payload = b"".join(parts)
    body = _HEADER.pack(0, seq, op, n, cum_edges, len(payload))[4:] + payload
    crc = zlib.crc32(body)
    return struct.pack("<I", crc) + body


def _decode_payload(op: int, n: int, payload: bytes, path: Path,
                    offset: int) -> tuple[np.ndarray, np.ndarray]:
    expect = n * (24 if op == OP_INSERT else 16)
    if len(payload) != expect:
        raise ServiceError(
            f"{path} @{offset}: payload length {len(payload)} does not match "
            f"op/count header (expected {expect})"
        )
    src = np.frombuffer(payload, dtype=np.int64, count=n, offset=0)
    dst = np.frombuffer(payload, dtype=np.int64, count=n, offset=8 * n)
    if op == OP_INSERT:
        weights = np.frombuffer(payload, dtype=np.float64, count=n, offset=16 * n)
    else:
        weights = np.ones(n, dtype=np.float64)
    return np.column_stack([src, dst]), weights.copy()


def scan_segment(path: str | Path, tolerate_torn_tail: bool = False,
                 ) -> tuple[list[WalRecord], int | None]:
    """Decode one segment; returns ``(records, torn_offset)``.

    ``torn_offset`` is the byte offset of a torn final record (``None``
    when the segment ends cleanly).  Only the *final* record may be torn,
    and only when ``tolerate_torn_tail`` is set — any other irregularity
    raises :class:`ServiceError`.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(SEGMENT_MAGIC) or not data.startswith(SEGMENT_MAGIC):
        if tolerate_torn_tail and SEGMENT_MAGIC.startswith(data):
            return [], 0  # died inside the magic write of a fresh segment
        raise ServiceError(f"{path}: not a WAL segment (bad magic)")
    records: list[WalRecord] = []
    offset = len(SEGMENT_MAGIC)

    def torn(reason: str) -> tuple[list[WalRecord], int | None]:
        if not tolerate_torn_tail:
            raise ServiceError(f"{path} @{offset}: {reason}")
        return records, offset

    while offset < len(data):
        header = data[offset:offset + _HEADER.size]
        if len(header) < _HEADER.size:
            return torn("torn record header")
        crc, seq, op, n, cum, plen = _HEADER.unpack(header)
        end = offset + _HEADER.size + plen
        if end > len(data):
            return torn("torn record payload")
        body = data[offset + 4:end]
        if zlib.crc32(body) != crc:
            if end == len(data):
                # A final record can be "complete-length but wrong bytes"
                # when the tail of a larger intended write landed; same
                # torn-tail treatment.
                return torn("CRC mismatch in final record")
            raise ServiceError(
                f"{path} @{offset}: CRC mismatch mid-segment (stored "
                f"{crc:#010x}) — WAL is corrupt, refusing to replay past it"
            )
        if op not in (OP_INSERT, OP_DELETE):
            raise ServiceError(f"{path} @{offset}: unknown WAL op {op}")
        edges, weights = _decode_payload(op, n, data[offset + _HEADER.size:end],
                                         path, offset)
        records.append(WalRecord(seq=seq, op=op, edges=edges, weights=weights,
                                 cum_edges=cum))
        offset = end
    return records, None


def iter_records(directory: str | Path, tolerate_torn_tail: bool = True,
                 prefix: str = SEGMENT_PREFIX) -> Iterator[WalRecord]:
    """Yield every record across all segments in sequence order.

    Enforces contiguous sequence numbering across records; a gap raises
    :class:`ServiceError`.  A torn tail in the **last** segment is
    dropped (when tolerated); torn data anywhere else is corruption.
    """
    segments = list_segments(directory, prefix=prefix)
    last_seq: int | None = None
    for i, path in enumerate(segments):
        is_last = i == len(segments) - 1
        records, _ = scan_segment(path, tolerate_torn_tail=tolerate_torn_tail
                                  and is_last)
        for rec in records:
            if last_seq is not None and rec.seq != last_seq + 1:
                raise ServiceError(
                    f"{path}: WAL sequence gap ({last_seq} -> {rec.seq}); "
                    f"a segment is missing or was pruned incorrectly"
                )
            last_seq = rec.seq
            yield rec


def truncate_torn_tail(directory: str | Path,
                       prefix: str = SEGMENT_PREFIX) -> int | None:
    """Physically drop a torn final record from the last segment.

    Returns the truncation byte offset, or ``None`` if the tail was
    clean.  Makes recovery idempotent on disk: a second scan sees a
    clean log.
    """
    segments = list_segments(directory, prefix=prefix)
    if not segments:
        return None
    last = segments[-1]
    records, torn_offset = scan_segment(last, tolerate_torn_tail=True)
    if torn_offset is None:
        return None
    if torn_offset == 0 and not records:
        # Died before even the magic was durable: drop the file.
        last.unlink()
        return 0
    with open(last, "r+b") as f:
        f.truncate(torn_offset)
        f.flush()
        os.fsync(f.fileno())
    return torn_offset


class WriteAheadLog:
    """Appender over a WAL directory (single writer).

    Opening an existing directory resumes sequence numbering after the
    last durable record (scanning drops a torn tail, exactly as recovery
    would).
    """

    def __init__(self, directory: str | Path, *,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 sync: str = "batch",
                 min_last_seq: int = 0,
                 min_cum_edges: int = 0,
                 prefix: str = SEGMENT_PREFIX):
        if sync not in SYNC_POLICIES:
            raise ServiceError(
                f"unknown WAL sync policy {sync!r} (choose from {SYNC_POLICIES})")
        if segment_bytes < _HEADER.size + len(SEGMENT_MAGIC):
            raise ServiceError("segment_bytes is smaller than one record header")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.sync_policy = sync
        self.prefix = prefix
        self._file = None
        self._segment_size = 0
        self.last_seq = 0
        self.cum_edges = 0
        self.n_rotations = 0
        # A writer must not leave torn bytes mid-log: once we append a new
        # segment after them, the tear would no longer be "the tail" and
        # readers would (rightly) call it corruption.
        truncate_torn_tail(self.directory, prefix=prefix)
        for rec in iter_records(self.directory, prefix=prefix):
            self.last_seq = rec.seq
            self.cum_edges = rec.cum_edges
        # A checkpoint may have pruned the whole log away; the cursor the
        # caller recovered (checkpoint header) still rules numbering.
        if min_last_seq > self.last_seq:
            self.last_seq = min_last_seq
            self.cum_edges = max(min_cum_edges, self.cum_edges)

    # ------------------------------------------------------------------ #
    @property
    def next_seq(self) -> int:
        return self.last_seq + 1

    def _registry(self):
        from repro.obs import hooks
        if not hooks.enabled:
            return None
        from repro.obs.metrics import get_registry
        return get_registry()

    def _open_segment(self) -> None:
        path = segment_path(self.directory, self.next_seq, prefix=self.prefix)
        self._file = open(path, "ab")
        if self._file.tell() == 0:
            self._file.write(SEGMENT_MAGIC)
            self._file.flush()
        self._segment_size = self._file.tell()

    def append(self, op: int, edges: np.ndarray,
               weights: np.ndarray | None = None) -> int:
        """Append one record; returns its sequence number.

        The record is flushed to the OS before returning (fsynced too
        under the ``"always"`` policy), so a killed process never loses
        an append that returned.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ServiceError("WAL records hold (n, 2) edge arrays")
        if self._file is None:
            self._open_segment()
        seq = self.next_seq
        cum = self.cum_edges + edges.shape[0]
        blob = _encode(seq, op, edges, weights, cum)
        start = self._file.tell()
        try:
            self._write_blob(blob)
        except OSError:
            # A transient I/O error may have landed part of the record;
            # truncate back to the boundary so the log stays record-
            # aligned and the append can simply be retried.  (Simulated
            # *crashes* are not OSErrors and keep their torn bytes — a
            # dead process cannot clean up after itself.)
            self._rollback(start)
            raise
        self.last_seq = seq
        self.cum_edges = cum
        self._segment_size += len(blob)
        registry = self._registry()
        if registry is not None:
            registry.counter("service.wal.appends").inc()
            registry.counter("service.wal.bytes").inc(len(blob))
            if self.sync_policy == "always":
                registry.counter("service.wal.syncs").inc()
        if self._segment_size >= self.segment_bytes:
            self._rotate()
        return seq

    def _write_blob(self, blob: bytes) -> None:
        """Write one encoded record (the fault-injection seam)."""
        self._file.write(blob)
        self._file.flush()
        if self.sync_policy == "always":
            os.fsync(self._file.fileno())

    def _rollback(self, offset: int) -> None:
        """Erase a partially written record after a failed append."""
        try:
            self._file.truncate(offset)
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError:
            # The segment is unusable right now; recovery's torn-tail
            # truncation still covers the partial record on disk.
            pass

    def sync(self) -> None:
        """fsync the active segment (the ``"batch"`` policy's commit point)."""
        if self._file is not None:
            registry = self._registry()
            self._file.flush()
            t0 = time.perf_counter() if registry is not None else 0.0
            os.fsync(self._file.fileno())
            if registry is not None:
                registry.counter("service.wal.syncs").inc()
                registry.quantile(
                    "service.wal.fsync_ms", "WAL fsync wall latency (ms)"
                ).record((time.perf_counter() - t0) * 1e3)

    def _rotate(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None
        self.n_rotations += 1
        registry = self._registry()
        if registry is not None:
            registry.counter("service.wal.rotations").inc()

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def prune_segments(directory: str | Path, upto_seq: int,
                   prefix: str = SEGMENT_PREFIX) -> list[Path]:
    """Delete segments made obsolete by a checkpoint at ``upto_seq``.

    A segment is obsolete when every record in it has ``seq <= upto_seq``
    — equivalently, when the *next* segment's first sequence is
    ``<= upto_seq + 1``.  The last segment is always kept (it is the
    active append target).  Returns the deleted paths.
    """
    segments = list_segments(directory, prefix=prefix)
    deleted: list[Path] = []
    for path, nxt in zip(segments, segments[1:]):
        first_of_next = int(nxt.name[len(prefix):-len(SEGMENT_SUFFIX)])
        if first_of_next <= upto_seq + 1:
            path.unlink()
            deleted.append(path)
        else:
            break
    return deleted


class ShardedWriteAheadLog:
    """K independent per-shard WALs behind the single-writer interface.

    A sharded service routes every edge row to the shard its ``src``
    hashes to (:func:`repro.core.hashing.partition_of_array`, the same
    router :class:`repro.core.sharded.ShardedStore` uses), and logs each
    shard's rows in that shard's own segment chain
    (``wal-shard<k>-<seq>.seg``).  Each inner log keeps its own
    contiguous sequence space, so on recovery the K chains replay
    independently — and, because interval partitioning makes their key
    spaces disjoint, in parallel.

    The cursor the service tracks stays a single scalar: the *global*
    sequence is ``base_seq + sum_k shard_last_seq_k``, where ``base_seq``
    covers any plain-prefix (unsharded) history the directory carried
    before sharding — every append advances exactly one inner sequence
    per shard it touches, so the sum is monotonic and crash-recoverable
    from the segment chains alone.  ``cum_edges`` sums the same way and
    keeps its stream-resume meaning (rows are partitioned disjointly).

    :meth:`checkpoint_meta` exposes the per-shard cursors; the checkpoint
    manager embeds them so recovery can skip each shard's already-
    snapshotted records independently and pruning can drop each shard's
    obsolete segments.
    """

    def __init__(self, directory: str | Path, n_shards: int, *,
                 seed: int = 0,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 sync: str = "batch",
                 min_last_seq: int = 0,
                 min_cum_edges: int = 0):
        if n_shards < 1:
            raise ServiceError("n_shards must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.seed = seed
        self.sync_policy = sync
        # Plain-prefix history: a directory that started life unsharded
        # keeps its old records under the plain prefix (nothing appends
        # there once sharded, and pruning always retains the last
        # segment, so the base cursor is recoverable from disk).
        truncate_torn_tail(self.directory)
        self.base_seq = 0
        self.base_cum = 0
        for rec in iter_records(self.directory):
            self.base_seq = rec.seq
            self.base_cum = rec.cum_edges
        self.shards = [
            WriteAheadLog(self.directory, segment_bytes=segment_bytes,
                          sync=sync, prefix=shard_prefix(k))
            for k in range(n_shards)
        ]
        # A checkpoint may have pruned everything; the recovered cursor
        # still rules numbering (same contract as the plain log).
        if min_last_seq > self.last_seq:
            self.base_seq += min_last_seq - self.last_seq
            self.base_cum = max(min_cum_edges, self.cum_edges) - sum(
                log.cum_edges for log in self.shards)
        # Retry bookkeeping: which shards already landed the record that
        # a transient OSError interrupted (see append()).
        self._resume: tuple[tuple, set[int]] | None = None

    # ------------------------------------------------------------------ #
    @property
    def last_seq(self) -> int:
        return self.base_seq + sum(log.last_seq for log in self.shards)

    @property
    def cum_edges(self) -> int:
        return self.base_cum + sum(log.cum_edges for log in self.shards)

    @property
    def n_rotations(self) -> int:
        return sum(log.n_rotations for log in self.shards)

    def checkpoint_meta(self) -> dict:
        """Per-shard cursors for embedding in a checkpoint header."""
        return {
            "n_shards": self.n_shards,
            "shard_seed": self.seed,
            "shard_seqs": [log.last_seq for log in self.shards],
            "shard_cum": [log.cum_edges for log in self.shards],
            "base_seq": self.base_seq,
            "base_cum": self.base_cum,
        }

    def append(self, op: int, edges: np.ndarray,
               weights: np.ndarray | None = None) -> int:
        """Route one record's rows to their shards; append per shard.

        Returns the global sequence after the append (the durability
        cursor a ticket resolves with).  Each owning shard gets exactly
        one record holding its rows in stream order; shards that own no
        rows are untouched.

        A transient ``OSError`` can interrupt the loop after some shards
        already landed their sub-record; those records are durable and
        cannot be rolled back.  The log remembers which shards succeeded
        and a *retry of the identical append* (the service's per-append
        retry loop) skips them, so retries never duplicate rows.  A batch
        abandoned mid-append (no retry, e.g. breaker trip) stays
        partially logged — replay then applies only the landed shards'
        rows, which is the documented cross-shard non-atomicity
        (``docs/sharding.md``); the ticket never resolved, so no
        durability promise is broken.
        """
        from repro.core.hashing import partition_of_array

        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ServiceError("WAL records hold (n, 2) edge arrays")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
        token = (op, edges.shape[0], zlib.crc32(edges.tobytes()))
        done: set[int] = set()
        if self._resume is not None and self._resume[0] == token:
            done = self._resume[1]
        shard_ids = partition_of_array(edges[:, 0], self.n_shards, self.seed)
        try:
            for k in range(self.n_shards):
                if k in done:
                    continue
                mask = shard_ids == k
                if not mask.any():
                    continue
                self.shards[k].append(
                    op, edges[mask],
                    weights[mask] if weights is not None else None)
                done.add(k)
        except OSError:
            self._resume = (token, done)
            raise
        self._resume = None
        return self.last_seq

    def sync(self) -> None:
        for log in self.shards:
            log.sync()

    def close(self) -> None:
        for log in self.shards:
            log.close()

    def __enter__(self) -> "ShardedWriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
