"""STINGER baseline: the adjacency-list dynamic graph store the paper
compares against (Ediger et al., HPEC 2012; configured per Sec. V.A with
an edgeblock size of 16).
"""

from repro.stinger.stinger import Stinger

__all__ = ["Stinger"]
