"""A faithful STINGER-style baseline (paper Sec. II.A and [6]).

STINGER keeps a *Logical Vertex Array* (one entry per source vertex) whose
entries point into an *Edge Block Array*: fixed-size edgeblocks chained
per vertex.  Edges inside a block are unsorted and not hashed, so an
insert must traverse the vertex's entire chain to rule out a duplicate,
and a delete must traverse until the edge is found — the long probe
distances GraphTinker attacks.  Deleted slots are flagged and reused.

The block pool is one flat structured NumPy array (same idiom as
GraphTinker's pools) so the two systems differ only in *algorithm*, not in
implementation technology; the instrumentation counts the same events so
the cost model compares like with like:

* every edgeblock visited during update traversal is one
  ``random_block_reads`` (chained blocks are non-contiguous in memory);
* analytics retrieval charges one random block read per chain hop.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.config import StingerConfig
from repro.core.pool import STINGER_CELL_DTYPE, BlockPool
from repro.core.stats import AccessStats
from repro.obs import hooks as obs_hooks
from repro.errors import VertexNotFoundError

#: Slot-state sentinels in the ``dst`` field.
_EMPTY = np.int64(-1)
_DELETED = np.int64(-2)


def _blank_stinger_cells(shape: tuple[int, ...] | int) -> np.ndarray:
    arr = np.zeros(shape, dtype=STINGER_CELL_DTYPE)
    arr["dst"] = _EMPTY
    return arr


class Stinger:
    """Shared-memory adjacency-list dynamic graph store.

    The public API mirrors :class:`~repro.core.graphtinker.GraphTinker`
    so benchmarks and the engine can drive either store interchangeably.

    Examples
    --------
    >>> st = Stinger()
    >>> st.insert_edge(1, 2)
    True
    >>> st.insert_edge(1, 2)   # duplicate: weight update, not a new edge
    False
    """

    def __init__(self, config: StingerConfig | None = None):
        self.config = config if config is not None else StingerConfig()
        self.stats = AccessStats()
        self.pool = BlockPool(
            self.config.edgeblock_size,
            STINGER_CELL_DTYPE,
            _blank_stinger_cells,
            4,
        )
        # Logical Vertex Array: head block per vertex, grown on demand.
        self._head = np.full(self.config.initial_vertices, -1, dtype=np.int64)
        self._degree = np.zeros(self.config.initial_vertices, dtype=np.int64)
        self._next = np.full(8, -1, dtype=np.int64)  # per-block chain link
        self._n_vertices = 0
        self._n_edges = 0
        self._analytics_snapshot = None
        if self.config.snapshot:
            self.enable_snapshot()

    # ------------------------------------------------------------------ #
    # analytics snapshot (engine acceleration; see repro.engine.snapshot)
    # ------------------------------------------------------------------ #
    def enable_snapshot(self):
        """Attach (and return) the incrementally-maintained CSR view.

        Same charge-mirror contract as on GraphTinker: bit-identical
        results and modeled AccessStats, wall-clock only.
        """
        if self._analytics_snapshot is None:
            from repro.engine.snapshot import AnalyticsSnapshot

            self._analytics_snapshot = AnalyticsSnapshot(self)
        return self._analytics_snapshot

    def disable_snapshot(self) -> None:
        """Detach the CSR view (subsequent loads use the chain walks)."""
        self._analytics_snapshot = None

    @property
    def analytics_snapshot(self):
        """The attached :class:`AnalyticsSnapshot`, or ``None``."""
        return self._analytics_snapshot

    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Vertices with an allocated Logical Vertex Array entry."""
        return self._n_vertices

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def _ensure_vertex(self, src: int) -> None:
        if src < self._n_vertices:
            return
        cap = self._head.shape[0]
        if src >= cap:
            new_cap = cap
            while new_cap <= src:
                new_cap *= 2
            head = np.full(new_cap, -1, dtype=np.int64)
            degree = np.zeros(new_cap, dtype=np.int64)
            head[:cap] = self._head
            degree[:cap] = self._degree
            self._head, self._degree = head, degree
        self._n_vertices = src + 1

    def _ensure_next(self, block: int) -> None:
        cap = self._next.shape[0]
        if block < cap:
            return
        new_cap = cap
        while new_cap <= block:
            new_cap *= 2
        nxt = np.full(new_cap, -1, dtype=np.int64)
        nxt[:cap] = self._next
        self._next = nxt

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        """Insert ``(src, dst)``; returns ``True`` if the edge is new.

        Traverses the whole chain (checking for a duplicate) and remembers
        the first reusable slot; allocates a new edgeblock at the tail
        only when the chain is full.
        """
        src, dst = int(src), int(dst)
        if src < 0 or dst < 0:
            # Negative ids collide with the -1/-2 slot-state sentinels.
            raise ValueError(f"vertex ids must be non-negative, got ({src}, {dst})")
        self._ensure_vertex(src)
        block = int(self._head[src])
        free_block, free_slot = -1, -1
        last_block = -1
        while block >= 0:
            self.stats.random_block_reads += 1
            row = self.pool.row(block)
            dsts = row["dst"]
            self.stats.cells_scanned += dsts.shape[0]
            hit = np.flatnonzero(dsts == dst)
            if hit.size:
                row["weight"][hit[0]] = weight
                if self._analytics_snapshot is not None:
                    self._analytics_snapshot.mark_dirty(src)
                return False
            if free_block < 0:
                vacant = np.flatnonzero(dsts < 0)
                if vacant.size:
                    free_block, free_slot = block, int(vacant[0])
            last_block = block
            block = int(self._next[block])
        if free_block < 0:
            free_block = self.pool.allocate()
            self._ensure_next(free_block)
            self._next[free_block] = -1
            free_slot = 0
            if last_block >= 0:
                self._next[last_block] = free_block
            else:
                self._head[src] = free_block
        row = self.pool.row(free_block)
        row["dst"][free_slot] = dst
        row["weight"][free_slot] = weight
        if self._analytics_snapshot is not None:
            self._analytics_snapshot.mark_dirty(src)
        self.stats.workblock_writebacks += 1
        self._degree[src] += 1
        self._n_edges += 1
        self.stats.edges_inserted += 1
        return True

    def insert_batch(self, edges: np.ndarray, weights: np.ndarray | None = None) -> int:
        """Insert an ``(n, 2)`` edge batch; returns the number of new edges."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (n, 2)")
        if edges.size and edges.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        if weights is None:
            weights = np.ones(edges.shape[0], dtype=np.float64)
        before = self.stats.snapshot() if obs_hooks.enabled else None
        new = 0
        for s, d, w in zip(edges[:, 0].tolist(), edges[:, 1].tolist(),
                           np.asarray(weights, dtype=np.float64).tolist()):
            if self.insert_edge(s, d, w):
                new += 1
        if before is not None:
            obs_hooks.publish_store_delta("stinger", self.stats.delta(before))
        return new

    def delete_edge(self, src: int, dst: int) -> bool:
        """Delete ``(src, dst)``; flags the slot for reuse."""
        src, dst = int(src), int(dst)
        if src < 0 or src >= self._n_vertices or dst < 0:
            return False  # negative dst would match the EMPTY/DELETED flags
        block = int(self._head[src])
        while block >= 0:
            self.stats.random_block_reads += 1
            row = self.pool.row(block)
            dsts = row["dst"]
            self.stats.cells_scanned += dsts.shape[0]
            hit = np.flatnonzero(dsts == dst)
            if hit.size:
                row["dst"][hit[0]] = _DELETED
                if self._analytics_snapshot is not None:
                    self._analytics_snapshot.mark_dirty(src)
                self.stats.workblock_writebacks += 1
                self.stats.tombstones_set += 1
                self._degree[src] -= 1
                self._n_edges -= 1
                self.stats.edges_deleted += 1
                return True
            block = int(self._next[block])
        return False

    def delete_batch(self, edges: np.ndarray) -> int:
        """Delete a batch of edges; returns how many existed."""
        edges = np.asarray(edges, dtype=np.int64)
        before = self.stats.snapshot() if obs_hooks.enabled else None
        deleted = 0
        for s, d in zip(edges[:, 0].tolist(), edges[:, 1].tolist()):
            if self.delete_edge(s, d):
                deleted += 1
        if before is not None:
            obs_hooks.publish_store_delta("stinger", self.stats.delta(before))
        return deleted

    def delete_vertex(self, src: int) -> int:
        """Delete every out-edge of ``src``; return how many existed.

        Flags every live slot along the vertex's chain in one sweep —
        cheaper than per-edge deletes, since no per-edge chain traversal
        is needed.
        """
        src = int(src)
        if src >= self._n_vertices:
            return 0
        deleted = 0
        block = int(self._head[src])
        while block >= 0:
            self.stats.random_block_reads += 1
            row = self.pool.row(block)
            live = row["dst"] >= 0
            n = int(live.sum())
            if n:
                row["dst"][live] = _DELETED
                self.stats.workblock_writebacks += 1
                self.stats.tombstones_set += n
                deleted += n
            block = int(self._next[block])
        if deleted and self._analytics_snapshot is not None:
            self._analytics_snapshot.mark_dirty(src)
        self._degree[src] -= deleted
        self._n_edges -= deleted
        self.stats.edges_deleted += deleted
        return deleted

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def has_edge(self, src: int, dst: int) -> bool:
        return self.edge_weight(src, dst) is not None

    def edge_weight(self, src: int, dst: int) -> float | None:
        src, dst = int(src), int(dst)
        if src < 0 or src >= self._n_vertices or dst < 0:
            return None  # negative dst would match the EMPTY/DELETED flags
        block = int(self._head[src])
        while block >= 0:
            self.stats.random_block_reads += 1
            row = self.pool.row(block)
            hit = np.flatnonzero(row["dst"] == dst)
            self.stats.cells_scanned += row["dst"].shape[0]
            if hit.size:
                self.stats.edges_found += 1
                return float(row["weight"][hit[0]])
            block = int(self._next[block])
        return None

    def degree(self, src: int) -> int:
        return int(self._degree[src]) if 0 <= src < self._n_vertices else 0

    def neighbors(self, src: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-neighbours of ``src`` as ``(dst, weight)`` arrays."""
        src = int(src)
        if src < 0 or src >= self._n_vertices:
            raise VertexNotFoundError(src)
        dsts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        block = int(self._head[src])
        while block >= 0:
            self.stats.random_block_reads += 1
            self.stats.cells_scanned += self.config.edgeblock_size
            row = self.pool.row(block)
            mask = row["dst"] >= 0
            if mask.any():
                dsts.append(row["dst"][mask].copy())
                weights.append(row["weight"][mask].copy())
            block = int(self._next[block])
        if not dsts:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        return np.concatenate(dsts), np.concatenate(weights)

    def neighbors_many(
        self, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched frontier gather: ``(src, dst, weight)`` for many sources.

        ``active`` is sanitized first (sorted unique, negatives dropped),
        so duplicate frontier ids never double-gather.  With the
        analytics snapshot attached this is one vectorized CSR gather;
        otherwise it falls back to the per-vertex loop.  Modeled
        AccessStats charges are bit-identical either way: STINGER's
        ``degree`` probe is free, and each vertex with out-edges pays
        its chain walk (one random block read + an edgeblock of cells
        scanned per block).
        """
        from repro.engine.snapshot import gather_active_scalar, sanitize_active

        if self._analytics_snapshot is not None:
            return self._analytics_snapshot.gather_active(active)
        return gather_active_scalar(self, sanitize_active(active))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield every live edge as ``(src, dst, weight)``."""
        for src in range(self._n_vertices):
            if self._degree[src] == 0 and self._head[src] < 0:
                continue
            dsts, weights = self.neighbors(src)
            for d, w in zip(dsts.tolist(), weights.tolist()):
                yield src, int(d), float(w)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All live edges as arrays — STINGER's analytics load path.

        Unlike GraphTinker's CAL streaming, this sweeps every vertex's
        chain (random block reads), including vertices that turn out to
        be empty; that access pattern is the 10x analytics gap of
        Figs. 11-13.
        """
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for src in range(self._n_vertices):
            block = int(self._head[src])
            while block >= 0:
                self.stats.random_block_reads += 1
                self.stats.cells_scanned += self.config.edgeblock_size
                row = self.pool.row(block)
                mask = row["dst"] >= 0
                if mask.any():
                    n = int(mask.sum())
                    srcs.append(np.full(n, src, dtype=np.int64))
                    dsts.append(row["dst"][mask].copy())
                    weights.append(row["weight"][mask].copy())
                block = int(self._next[block])
        if not srcs:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(weights)

    def analytics_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Engine load path; STINGER ids are already original ids."""
        return self.edge_arrays()

    # ------------------------------------------------------------------ #
    # snapshot row surface (repro.core.store protocol)
    # ------------------------------------------------------------------ #
    def original_ids(self, dense: np.ndarray) -> np.ndarray:
        """STINGER rows are original ids — the identity translation."""
        return np.asarray(dense, dtype=np.int64)

    def dense_row_count(self) -> int:
        return self._n_vertices

    def row_neighbors(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Charged native walk of row ``row`` (the edgeblock chain walk)."""
        return self.neighbors(row)

    @property
    def id_translator(self):
        """No original<->dense indirection (rows are original ids)."""
        return None

    @property
    def full_load_is_row_sweep(self) -> bool:
        """STINGER's full load *is* the per-vertex chain sweep."""
        return True

    def fsck(self, level: str = "full", repair: bool = False):
        """Audit the chains against the degree counters.

        Delegates to the generic protocol audit
        (:func:`repro.core.store.verify_store_generic`): per-row degree
        agreement, duplicate-freedom, and the global edge count.
        ``repair`` recounts the degree array and edge total from the
        live chains (the only shadow state STINGER keeps) and returns a
        :class:`~repro.core.verify.RepairReport`.
        """
        from repro.core.store import verify_store_generic
        from repro.core.verify import RepairReport

        report = verify_store_generic(self, level=level)
        if not repair:
            return report
        backup = self.stats.snapshot()
        recounted: list[int] = []
        total = 0
        for src in range(self._n_vertices):
            dsts, _ = self.neighbors(src)
            deg = int(dsts.shape[0])
            if deg != int(self._degree[src]):
                recounted.append(src)
                self._degree[src] = deg
            total += deg
        self._n_edges = total
        self.stats.reset()
        self.stats.merge(backup)
        if self._analytics_snapshot is not None:
            self._analytics_snapshot.invalidate()
        final = verify_store_generic(self, level=level)
        return RepairReport(initial=report, final=final,
                            recounted_vertices=recounted)

    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Audit degrees and duplicate-freedom (test-suite hook)."""
        backup = self.stats.snapshot()
        total = 0
        for src in range(self._n_vertices):
            dsts, _ = self.neighbors(src)
            if dsts.shape[0] != self.degree(src):
                raise AssertionError(f"degree mismatch for vertex {src}")
            if np.unique(dsts).shape[0] != dsts.shape[0]:
                raise AssertionError(f"duplicate edges for vertex {src}")
            total += dsts.shape[0]
        if total != self._n_edges:
            raise AssertionError("edge-count mismatch")
        self.stats.reset()
        self.stats.merge(backup)
