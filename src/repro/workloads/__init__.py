"""Workload generation: Graph500 RMAT, dataset registry, edge streams, I/O."""

from repro.workloads.rmat import rmat_edges
from repro.workloads.datasets import DATASETS, Dataset, load_dataset, scale_factor
from repro.workloads.streams import EdgeStream, batch_view, validate_edges

__all__ = [
    "DATASETS",
    "Dataset",
    "EdgeStream",
    "batch_view",
    "load_dataset",
    "rmat_edges",
    "scale_factor",
    "validate_edges",
]
