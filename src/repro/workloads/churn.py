"""Churn workloads: sustained interleaved insert/delete streams.

The paper's deletion protocol (Figs. 14-16) loads the graph fully and
then drains it.  Production dynamic graphs instead churn at a steady
state: a sliding window over an event stream inserts new edges while
expiring old ones, keeping the live size roughly constant.  These
generators produce that shape so the deletion mechanisms can be compared
where it matters most — equilibrium behaviour over unbounded streams
(``benchmarks/bench_churn_steady_state.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ChurnStep:
    """One step of a churn schedule: insert these, then delete those."""

    inserts: np.ndarray
    deletes: np.ndarray

    @property
    def n_inserts(self) -> int:
        return int(self.inserts.shape[0])

    @property
    def n_deletes(self) -> int:
        return int(self.deletes.shape[0])


def sliding_window(
    edges: np.ndarray,
    window: int,
    step: int,
) -> Iterator[ChurnStep]:
    """Slide a ``window``-edge window over a stream in ``step``-edge hops.

    Step *k* inserts edges ``[k*step, k*step + step)`` and deletes the
    edges that fall out of the window's trailing edge.  Until the window
    fills, nothing is deleted; afterwards the live edge count stays at
    ``window`` (modulo duplicates in the stream).  Iteration ends when
    the stream is exhausted; a final drain of the remaining window is
    NOT emitted (steady state is the object of study).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise WorkloadError("edges must have shape (n, 2)")
    if window <= 0 or step <= 0:
        raise WorkloadError("window and step must be positive")
    if step > window:
        raise WorkloadError("step cannot exceed window")
    empty = np.empty((0, 2), dtype=np.int64)
    for lo in range(0, edges.shape[0], step):
        inserts = edges[lo : lo + step]
        expire_hi = lo + inserts.shape[0] - window
        deletes = edges[max(0, expire_hi - step) : max(0, expire_hi)]
        yield ChurnStep(inserts=inserts, deletes=deletes)


def churn_mix(
    edges: np.ndarray,
    n_steps: int,
    step_size: int,
    delete_fraction: float = 0.5,
    seed: int = 0,
) -> Iterator[ChurnStep]:
    """Random churn: each step inserts fresh edges and deletes a random
    sample of currently-live ones.

    Unlike :func:`sliding_window` (FIFO expiry), deletions here are
    uniform over the live set — the adversarial case for compaction,
    since holes appear everywhere rather than in arrival order.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if step_size <= 0 or n_steps <= 0:
        raise WorkloadError("n_steps and step_size must be positive")
    if not (0.0 <= delete_fraction <= 1.0):
        raise WorkloadError("delete_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    live: list[tuple[int, int]] = []
    live_set: set[tuple[int, int]] = set()
    cursor = 0
    for _ in range(n_steps):
        if cursor >= edges.shape[0]:
            break
        batch = edges[cursor : cursor + step_size]
        cursor += batch.shape[0]
        fresh = [t for t in map(tuple, batch.tolist()) if t not in live_set]
        live.extend(fresh)
        live_set.update(fresh)
        n_del = min(int(len(fresh) * delete_fraction), len(live))
        if n_del:
            pick = rng.choice(len(live), size=n_del, replace=False)
            doomed = [live[i] for i in sorted(pick.tolist(), reverse=True)]
            for i in sorted(pick.tolist(), reverse=True):
                live_set.discard(live[i])
                live[i] = live[-1]
                live.pop()
            deletes = np.asarray(doomed, dtype=np.int64).reshape(-1, 2)
        else:
            deletes = np.empty((0, 2), dtype=np.int64)
        yield ChurnStep(inserts=batch, deletes=deletes)


def apply_churn(store, steps: Iterator[ChurnStep]) -> tuple[int, int]:
    """Drive a store through a churn schedule; returns (inserted, deleted)."""
    total_in = total_del = 0
    for step in steps:
        if step.n_inserts:
            total_in += store.insert_batch(step.inserts)
        if step.n_deletes:
            total_del += store.delete_batch(step.deletes)
    return total_in, total_del
