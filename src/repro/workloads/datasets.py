"""Dataset registry reproducing Table 1 of the paper.

The paper evaluates on four Graph500 RMAT synthetics and two real-world
graphs from the UF Sparse Matrix Collection (hollywood-2009 and
kron_g500-logn21).  With no network access, the real-world graphs are
substituted by synthetic stand-ins whose generator parameters match the
properties that drive the experiments — vertex count, edge count, heavy
skew and (for hollywood) very high average degree (~100):

* ``hollywood_like`` — RMAT with a denser edge budget and a higher `a`
  quadrant weight, giving hub-dominated degrees like a collaboration
  network.
* ``kron_like`` — stock Graph500 Kronecker parameters at logn21 shape.

Every dataset is *scaled* by ``REPRO_SCALE`` (default 0.01): vertex-space
scale drops by log2(1/f) and the edge budget is multiplied by f, keeping
average degree roughly constant — the property that governs probe
distances and therefore the paper's trends.  All compared systems consume
identical scaled streams.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.rmat import rmat_edges_unique

#: Default scale factor applied to the paper's dataset sizes.
DEFAULT_SCALE = 0.01


def scale_factor() -> float:
    """The active dataset scale factor (env var ``REPRO_SCALE``)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError as exc:
        raise WorkloadError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if not (0 < value <= 1):
        raise WorkloadError("REPRO_SCALE must lie in (0, 1]")
    return value


@dataclass(frozen=True)
class Dataset:
    """One evaluation dataset (paper Table 1 row).

    ``paper_vertices`` / ``paper_edges`` are the full-size figures from
    Table 1; ``scale``/``n_edges`` describe the generator invocation at
    the current scale factor.
    """

    name: str
    kind: str  # "synthetic" | "real-world (simulated)"
    paper_vertices: int
    paper_edges: int
    scale: int
    n_edges: int
    rmat_params: tuple[float, float, float, float]
    seed: int

    @property
    def n_vertices_space(self) -> int:
        """Size of the generator's vertex-id space (2**scale)."""
        return 1 << self.scale

    def generate(self) -> np.ndarray:
        """Materialise the scaled edge list (deterministic per dataset)."""
        a, b, c, d = self.rmat_params
        return rmat_edges_unique(
            self.scale, self.n_edges, a=a, b=b, c=c, d=d, seed=self.seed
        )


_G500 = (0.57, 0.19, 0.19, 0.05)
#: Denser hub structure for the hollywood-2009 stand-in.
_HOLLY = (0.65, 0.15, 0.15, 0.05)

#: Paper Table 1, in the paper's order.  (name, kind, |V|, |E|, params, seed)
_TABLE1 = [
    ("rmat_1m_10m", "synthetic", 1_000_192, 10_000_000, _G500, 11),
    ("rmat_500k_8m", "synthetic", 524_288, 8_380_000, _G500, 12),
    ("rmat_1m_16m", "synthetic", 1_048_576, 15_700_000, _G500, 13),
    ("rmat_2m_32m", "synthetic", 2_097_152, 31_770_000, _G500, 14),
    ("hollywood_like", "real-world (simulated)", 1_139_906, 113_891_327, _HOLLY, 15),
    ("kron_like", "real-world (simulated)", 2_097_153, 182_082_942, _G500, 16),
]


def _build_registry(factor: float) -> dict[str, Dataset]:
    registry: dict[str, Dataset] = {}
    for name, kind, pv, pe, params, seed in _TABLE1:
        # Keep average degree ~constant: shrink the vertex space by the
        # same factor as the edge budget.
        target_vertices = max(256, int(pv * factor))
        scale = max(8, math.ceil(math.log2(target_vertices)))
        n_edges = max(1024, int(pe * factor))
        # Cap density: the unique-edge draw must stay far from complete.
        max_edges = (1 << scale) * (1 << scale) // 8
        n_edges = min(n_edges, max_edges)
        registry[name] = Dataset(
            name=name,
            kind=kind,
            paper_vertices=pv,
            paper_edges=pe,
            scale=scale,
            n_edges=n_edges,
            rmat_params=params,
            seed=seed,
        )
    return registry


#: Registry at the import-time scale factor.  Call :func:`load_dataset`
#: with an explicit ``factor`` to override per call.
DATASETS: dict[str, Dataset] = _build_registry(scale_factor())

#: The paper's dataset display order.
DATASET_ORDER = [name for name, *_ in _TABLE1]


@lru_cache(maxsize=16)
def _cached_edges(name: str, factor: float) -> np.ndarray:
    ds = _build_registry(factor)[name]
    edges = ds.generate()
    edges.flags.writeable = False
    return edges


def load_dataset(name: str, factor: float | None = None) -> tuple[Dataset, np.ndarray]:
    """Return ``(dataset, edges)`` for a Table 1 dataset name.

    Edge arrays are cached per (name, factor) and returned read-only;
    copy before mutating.
    """
    factor = scale_factor() if factor is None else factor
    registry = _build_registry(factor)
    if name not in registry:
        raise WorkloadError(
            f"unknown dataset {name!r}; available: {sorted(registry)}"
        )
    return registry[name], _cached_edges(name, factor)


def dataset_properties(name: str, factor: float | None = None) -> dict[str, object]:
    """Measured properties of a dataset at the current scale (Table 1 row)."""
    ds, edges = load_dataset(name, factor)
    srcs = np.unique(edges[:, 0])
    verts = np.unique(edges)
    return {
        "name": ds.name,
        "type": ds.kind,
        "paper_vertices": ds.paper_vertices,
        "paper_edges": ds.paper_edges,
        "scaled_vertices": int(verts.shape[0]),
        "scaled_sources": int(srcs.shape[0]),
        "scaled_edges": int(edges.shape[0]),
        "avg_out_degree": float(edges.shape[0] / max(1, srcs.shape[0])),
    }
