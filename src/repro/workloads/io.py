"""Edge-list I/O: plain text and Matrix-Market-style readers/writers.

The paper's real-world inputs come from the UF Sparse Matrix Collection
(MatrixMarket ``.mtx`` files); this module provides the readers a user
would need to feed such files in, plus a simple whitespace edge-list
format for interchange with other tools.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.streams import validate_edges


def write_edge_list(path: str | Path, edges: np.ndarray, weights: np.ndarray | None = None) -> None:
    """Write ``src dst [weight]`` lines."""
    edges = np.asarray(edges, dtype=np.int64)
    if weights is None:
        np.savetxt(path, edges, fmt="%d")
    else:
        data = np.column_stack([edges.astype(np.float64), np.asarray(weights, dtype=np.float64)])
        np.savetxt(path, data, fmt=("%d", "%d", "%.10g"))


def read_edge_list(path: str | Path, *,
                   max_vertex: int | None = None,
                   ) -> tuple[np.ndarray, np.ndarray | None]:
    """Read ``src dst [weight]`` lines -> ``(edges, weights_or_None)``.

    Lines starting with ``#`` or ``%`` are comments; blank lines skipped.
    Vertex ids must be non-negative integers (``nan``, floats and
    negatives raise :class:`~repro.errors.WorkloadError` with the line
    number); ``max_vertex`` optionally bounds the id space.
    """
    rows: list[tuple[int, int]] = []
    weights: list[float] = []
    has_weights: bool | None = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise WorkloadError(f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}")
            if has_weights is None:
                has_weights = len(parts) == 3
            elif has_weights != (len(parts) == 3):
                raise WorkloadError(f"{path}:{lineno}: inconsistent field count")
            try:
                rows.append((int(parts[0]), int(parts[1])))
            except ValueError:
                raise WorkloadError(
                    f"{path}:{lineno}: vertex ids must be integers, got "
                    f"{parts[0]!r} {parts[1]!r}") from None
            if has_weights:
                weights.append(float(parts[2]))
    edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
    edges = validate_edges(edges, max_vertex=max_vertex, where=str(path))
    return edges, (np.asarray(weights, dtype=np.float64) if has_weights else None)


def read_mtx(path: str | Path) -> np.ndarray:
    """Read a MatrixMarket coordinate file into a 0-based edge array.

    Handles the ``%%MatrixMarket`` banner, ``%`` comments and the
    ``rows cols nnz`` size line; symmetric matrices are expanded to both
    directions (matching how graph frameworks ingest UF collection
    graphs).  Entry values, if present, are ignored (pattern semantics).
    """
    symmetric = False
    edges: list[tuple[int, int]] = []
    size_seen = False
    n_rows = n_cols = 0
    with open(path) as fh:
        first = fh.readline()
        if not first.startswith("%%MatrixMarket"):
            raise WorkloadError(f"{path}: missing MatrixMarket banner")
        symmetric = "symmetric" in first.lower()
        for lineno, line in enumerate(fh, 2):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if not size_seen:
                if len(parts) != 3:
                    raise WorkloadError(f"{path}:{lineno}: malformed size line")
                n_rows, n_cols = int(parts[0]), int(parts[1])
                size_seen = True
                continue
            if len(parts) < 2:
                raise WorkloadError(f"{path}:{lineno}: malformed entry")
            try:
                i, j = int(parts[0]) - 1, int(parts[1]) - 1
            except ValueError:
                raise WorkloadError(
                    f"{path}:{lineno}: coordinates must be integers, got "
                    f"{parts[0]!r} {parts[1]!r}") from None
            edges.append((i, j))
            if symmetric and i != j:
                edges.append((j, i))
    if not size_seen:
        raise WorkloadError(f"{path}: no size line found")
    out = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    # 1-based coordinates: 0 in the file lands at -1 here; entries past
    # the declared matrix size are equally malformed.
    return validate_edges(out, max_vertex=max(n_rows, n_cols) or None,
                          where=str(path))


def write_mtx(path: str | Path, edges: np.ndarray, n_vertices: int | None = None) -> None:
    """Write a (general, pattern) MatrixMarket coordinate file."""
    edges = np.asarray(edges, dtype=np.int64)
    if n_vertices is None:
        n_vertices = int(edges.max()) + 1 if edges.size else 0
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"{n_vertices} {n_vertices} {edges.shape[0]}\n")
        for s, d in edges + 1:
            fh.write(f"{s} {d}\n")
