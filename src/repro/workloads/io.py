"""Edge-list I/O: plain text and Matrix-Market-style readers/writers.

The paper's real-world inputs come from the UF Sparse Matrix Collection
(MatrixMarket ``.mtx`` files); this module provides the readers a user
would need to feed such files in, plus a simple whitespace edge-list
format for interchange with other tools.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import WorkloadError


def write_edge_list(path: str | Path, edges: np.ndarray, weights: np.ndarray | None = None) -> None:
    """Write ``src dst [weight]`` lines."""
    edges = np.asarray(edges, dtype=np.int64)
    if weights is None:
        np.savetxt(path, edges, fmt="%d")
    else:
        data = np.column_stack([edges.astype(np.float64), np.asarray(weights, dtype=np.float64)])
        np.savetxt(path, data, fmt=("%d", "%d", "%.10g"))


def read_edge_list(path: str | Path) -> tuple[np.ndarray, np.ndarray | None]:
    """Read ``src dst [weight]`` lines -> ``(edges, weights_or_None)``.

    Lines starting with ``#`` or ``%`` are comments; blank lines skipped.
    """
    rows: list[tuple[int, int]] = []
    weights: list[float] = []
    has_weights: bool | None = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise WorkloadError(f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}")
            if has_weights is None:
                has_weights = len(parts) == 3
            elif has_weights != (len(parts) == 3):
                raise WorkloadError(f"{path}:{lineno}: inconsistent field count")
            rows.append((int(parts[0]), int(parts[1])))
            if has_weights:
                weights.append(float(parts[2]))
    edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
    return edges, (np.asarray(weights, dtype=np.float64) if has_weights else None)


def read_mtx(path: str | Path) -> np.ndarray:
    """Read a MatrixMarket coordinate file into a 0-based edge array.

    Handles the ``%%MatrixMarket`` banner, ``%`` comments and the
    ``rows cols nnz`` size line; symmetric matrices are expanded to both
    directions (matching how graph frameworks ingest UF collection
    graphs).  Entry values, if present, are ignored (pattern semantics).
    """
    symmetric = False
    edges: list[tuple[int, int]] = []
    size_seen = False
    with open(path) as fh:
        first = fh.readline()
        if not first.startswith("%%MatrixMarket"):
            raise WorkloadError(f"{path}: missing MatrixMarket banner")
        symmetric = "symmetric" in first.lower()
        for lineno, line in enumerate(fh, 2):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if not size_seen:
                if len(parts) != 3:
                    raise WorkloadError(f"{path}:{lineno}: malformed size line")
                size_seen = True
                continue
            if len(parts) < 2:
                raise WorkloadError(f"{path}:{lineno}: malformed entry")
            i, j = int(parts[0]) - 1, int(parts[1]) - 1
            edges.append((i, j))
            if symmetric and i != j:
                edges.append((j, i))
    if not size_seen:
        raise WorkloadError(f"{path}: no size line found")
    return np.asarray(edges, dtype=np.int64).reshape(-1, 2)


def write_mtx(path: str | Path, edges: np.ndarray, n_vertices: int | None = None) -> None:
    """Write a (general, pattern) MatrixMarket coordinate file."""
    edges = np.asarray(edges, dtype=np.int64)
    if n_vertices is None:
        n_vertices = int(edges.max()) + 1 if edges.size else 0
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"{n_vertices} {n_vertices} {edges.shape[0]}\n")
        for s, d in edges + 1:
            fh.write(f"{s} {d}\n")
