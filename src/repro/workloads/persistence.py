"""Snapshot persistence: save/load a dynamic store's live graph.

A dynamic-graph deployment checkpoints its store between sessions.  The
portable representation is the live edge set (original ids + weights),
saved as a compressed ``.npz``; restoring replays it through the normal
insert path, so every structure (EBA, SGH, CAL, VPA) is rebuilt
consistent with the configuration of the *receiving* store — which may
legitimately differ from the writer's (e.g. restore a delete-only
snapshot into a delete-and-compact store).

Format history
--------------
* **v1** — edges + weights only (read-compatible forever).
* **v2** — adds a versioned header: the writer's config (``GTConfig`` /
  ``StingerConfig`` as JSON), the writing ``repro`` version, and an
  optional free-form ``meta`` dict.  The service-layer checkpoint
  manager (:mod:`repro.service.checkpoint`) rides on ``meta`` to embed
  the last-applied WAL sequence.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import (
    GTConfig,
    ShardedConfig,
    StingerConfig,
    TieredConfig,
)
from repro.core.graphtinker import GraphTinker
from repro.errors import WorkloadError

#: Format markers stored inside every snapshot.
_FORMAT_V1 = "repro-graph-snapshot-v1"
_FORMAT_V2 = "repro-graph-snapshot-v2"
_FORMAT = _FORMAT_V2  # what save_snapshot writes

_CONFIG_CLASSES = {"GTConfig": GTConfig, "StingerConfig": StingerConfig,
                   "TieredConfig": TieredConfig,
                   "ShardedConfig": ShardedConfig}


@dataclass
class Snapshot:
    """A parsed snapshot: edges plus the v2 header (when present)."""

    edges: np.ndarray
    weights: np.ndarray
    version: int
    repro_version: str | None = None
    writer_config: GTConfig | StingerConfig | TieredConfig | None = None
    meta: dict | None = None

    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])


def _writer_config_json(store) -> str:
    config = getattr(store, "config", None)
    if not dataclasses.is_dataclass(config):
        return ""
    return json.dumps({"class": type(config).__name__,
                       "fields": dataclasses.asdict(config)})


def save_snapshot(store, path: str | Path, meta: dict | None = None) -> int:
    """Write the store's live edges to ``path`` (.npz v2); returns the count.

    Works for any store exposing ``analytics_edges()`` (GraphTinker and
    STINGER alike).  ``meta`` is an optional JSON-serialisable dict
    embedded verbatim (the checkpoint manager stores WAL positions here).
    """
    from repro import __version__

    src, dst, weight = store.analytics_edges()
    np.savez_compressed(
        path,
        format=np.array(_FORMAT),
        repro_version=np.array(__version__),
        config_json=np.array(_writer_config_json(store)),
        meta_json=np.array(json.dumps(meta) if meta is not None else ""),
        src=src.astype(np.int64),
        dst=dst.astype(np.int64),
        weight=weight.astype(np.float64),
    )
    return int(src.shape[0])


def _parse_config(config_json: str) -> GTConfig | StingerConfig | TieredConfig | None:
    if not config_json:
        return None
    payload = json.loads(config_json)
    cls = _CONFIG_CLASSES.get(payload.get("class"))
    if cls is None:
        return None
    return cls(**payload["fields"])


def read_snapshot(path: str | Path) -> Snapshot:
    """Read a snapshot (v1 or v2) with its header fields."""
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data:
            raise WorkloadError(f"{path}: not a repro graph snapshot")
        fmt = str(data["format"])
        if fmt == _FORMAT_V1:
            version = 1
        elif fmt == _FORMAT_V2:
            version = 2
        else:
            raise WorkloadError(
                f"{path}: unknown snapshot format {fmt!r} (this build reads "
                f"{_FORMAT_V1} and {_FORMAT_V2}; upgrade repro to load it)"
            )
        edges = np.column_stack([data["src"], data["dst"]]).astype(np.int64)
        weights = data["weight"].astype(np.float64)
        repro_version = str(data["repro_version"]) if version >= 2 else None
        config = _parse_config(str(data["config_json"])) if version >= 2 else None
        meta_json = str(data["meta_json"]) if version >= 2 else ""
    if edges.shape[0] != weights.shape[0]:
        raise WorkloadError(f"{path}: corrupt snapshot (length mismatch)")
    return Snapshot(
        edges=edges,
        weights=weights,
        version=version,
        repro_version=repro_version,
        writer_config=config,
        meta=json.loads(meta_json) if meta_json else None,
    )


def load_snapshot(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read a snapshot; returns ``(edges, weights)`` (v1-era interface)."""
    snap = read_snapshot(path)
    return snap.edges, snap.weights


def restore_graphtinker(path: str | Path, config: GTConfig | None = None,
                        use_writer_config: bool = False) -> GraphTinker:
    """Build a fresh GraphTinker from a snapshot.

    The replayed inserts arrive in the writer's CAL-stream order, which
    groups edges by source — so the restored structure starts life
    well-packed regardless of the original arrival order.

    ``use_writer_config`` restores under the writer's embedded
    :class:`GTConfig` (v2 snapshots written by a GraphTinker) when no
    explicit ``config`` is given; the default keeps the receiving-store
    semantics (fresh defaults).
    """
    snap = read_snapshot(path)
    if config is None and use_writer_config and isinstance(snap.writer_config, GTConfig):
        config = snap.writer_config
    gt = GraphTinker(config if config is not None else GTConfig())
    gt.insert_batch(snap.edges, snap.weights)
    return gt


def restore_store(path: str | Path, config=None, use_writer_config: bool = True):
    """Build a fresh store of the *writer's* kind from a snapshot.

    The backend-generic sibling of :func:`restore_graphtinker`: a v2
    snapshot embeds the writing store's config, and
    :func:`repro.core.store.store_from_config` maps that config back to
    its backend class — so a TieredStore checkpoint restores into a
    TieredStore, a STINGER one into a STINGER, and so on.  An explicit
    ``config`` (or a v1 snapshot, which carries no header) restores into
    whatever backend that config selects — GraphTinker defaults when
    ``None``.
    """
    from repro.core.store import store_from_config

    snap = read_snapshot(path)
    if config is None and use_writer_config and snap.writer_config is not None:
        config = snap.writer_config
    store = store_from_config(config)
    store.insert_batch(snap.edges, snap.weights)
    return store
