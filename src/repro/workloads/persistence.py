"""Snapshot persistence: save/load a dynamic store's live graph.

A dynamic-graph deployment checkpoints its store between sessions.  The
portable representation is the live edge set (original ids + weights),
saved as a compressed ``.npz``; restoring replays it through the normal
insert path, so every structure (EBA, SGH, CAL, VPA) is rebuilt
consistent with the configuration of the *receiving* store — which may
legitimately differ from the writer's (e.g. restore a delete-only
snapshot into a delete-and-compact store).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.config import GTConfig
from repro.core.graphtinker import GraphTinker
from repro.errors import WorkloadError

#: Format marker stored inside every snapshot.
_FORMAT = "repro-graph-snapshot-v1"


def save_snapshot(store, path: str | Path) -> int:
    """Write the store's live edges to ``path`` (.npz); returns the count.

    Works for any store exposing ``analytics_edges()`` (GraphTinker and
    STINGER alike).
    """
    src, dst, weight = store.analytics_edges()
    np.savez_compressed(
        path,
        format=np.array(_FORMAT),
        src=src.astype(np.int64),
        dst=dst.astype(np.int64),
        weight=weight.astype(np.float64),
    )
    return int(src.shape[0])


def load_snapshot(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read a snapshot; returns ``(edges, weights)``."""
    with np.load(path, allow_pickle=False) as data:
        if "format" not in data or str(data["format"]) != _FORMAT:
            raise WorkloadError(f"{path}: not a {_FORMAT} file")
        edges = np.column_stack([data["src"], data["dst"]])
        weights = data["weight"]
    if edges.shape[0] != weights.shape[0]:
        raise WorkloadError(f"{path}: corrupt snapshot (length mismatch)")
    return edges, weights


def restore_graphtinker(path: str | Path, config: GTConfig | None = None) -> GraphTinker:
    """Build a fresh GraphTinker from a snapshot.

    The replayed inserts arrive in the writer's CAL-stream order, which
    groups edges by source — so the restored structure starts life
    well-packed regardless of the original arrival order.
    """
    edges, weights = load_snapshot(path)
    gt = GraphTinker(config if config is not None else GTConfig())
    gt.insert_batch(edges, weights)
    return gt
